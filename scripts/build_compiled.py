"""Build the optional mypyc-compiled core (``REPRO_BACKEND=compiled``).

Compiles the hot modules — the event kernel, the protocol message class, and
the cache models — into C extensions with mypyc, placing the shared objects
next to their sources so Python's import machinery prefers them
transparently.  The pure-Python tree stays byte-identical and remains the
default backend; both backends expose the same API and produce the same
golden hashes (CI's ``compiled-backend`` job re-runs the tier-1 suite and
the golden matrix against the extensions).

Usage::

    python scripts/build_compiled.py            # build in place (skips
                                                # with status 0 if mypyc is
                                                # not installed)
    python scripts/build_compiled.py --require  # exit 2 when mypyc missing
    python scripts/build_compiled.py --clean    # remove built extensions
    python scripts/build_compiled.py --check    # report backend status
    python scripts/build_compiled.py --wheel dist/
                                                # also package the built
                                                # extensions as a wheel
                                                # (requires the ``wheel``
                                                # package; CI uploads it)

mypyc needs the ``mypy`` package (``pip install 'repro[compiled]'`` pulls
it in); no other dependency is added.  The two refcount-proof recycling
layers (``repro.sim.engine`` event pools, ``repro.protocol.messages``
free-list) detect the compiled environment via ``__file__`` and disable
themselves — CPython ``getrefcount`` semantics do not hold for mypyc
objects — so correctness never depends on the interpreter.
"""

from __future__ import annotations

import argparse
import glob
import os
import shutil
import subprocess
import sys
import tempfile
from typing import Optional

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

#: Sources compiled into extensions, relative to ``src/`` — keep in sync
#: with ``repro.harness.envopts.COMPILED_MODULES``.
TARGETS = [
    os.path.join("repro", "sim", "engine.py"),
    os.path.join("repro", "protocol", "messages.py"),
    os.path.join("repro", "caches", "setassoc.py"),
    os.path.join("repro", "caches", "mshr.py"),
]

_SETUP_TEMPLATE = """\
from setuptools import setup
from mypyc.build import mypycify

setup(
    name="repro-compiled-core",
    ext_modules=mypycify(
        {targets!r},
        opt_level="3",
        # The tree type-checks under mypy's default (non-strict) settings;
        # anything mypyc cannot type stays interpreted via the C API, which
        # is still far faster than CPython bytecode for the hot loops.
        strip_asserts=False,
    ),
)
"""


def built_extensions() -> list:
    """Extension files previously produced for the target modules."""
    found = []
    for target in TARGETS:
        stem = os.path.join(SRC, target[:-3])
        found.extend(glob.glob(stem + ".*.so") + glob.glob(stem + ".*.pyd"))
    return sorted(found)


def clean() -> int:
    removed = built_extensions()
    for path in removed:
        os.remove(path)
        print(f"removed {os.path.relpath(path, REPO)}")
    # mypyc support shims land alongside the package as <hash>__mypyc.*.
    for shim in glob.glob(os.path.join(SRC, "*__mypyc*.so")) + \
            glob.glob(os.path.join(SRC, "repro", "*__mypyc*.so")):
        os.remove(shim)
        print(f"removed {os.path.relpath(shim, REPO)}")
    if not removed:
        print("nothing to clean")
    return 0


def check() -> int:
    """Report which target modules would import compiled right now."""
    sys.path.insert(0, SRC)
    import importlib

    status = 0
    for target in TARGETS:
        name = target[:-3].replace(os.sep, ".")
        module = importlib.import_module(name)
        source = getattr(module, "__file__", "") or ""
        compiled = not source.endswith(".py")
        print(f"{'compiled' if compiled else 'python  '}  {name}")
        if not compiled:
            status = 1
    return status


def build(require: bool, wheel_dir: Optional[str] = None) -> int:
    try:
        import mypyc  # noqa: F401  (presence check only)
    except ImportError:
        print("mypyc is not installed; skipping compiled-backend build "
              "(pip install 'repro[compiled]' to enable)")
        return 2 if require else 0
    setup_src = _SETUP_TEMPLATE.format(targets=TARGETS)
    workdir = tempfile.mkdtemp(prefix="repro-mypyc-")
    setup_path = os.path.join(workdir, "setup_mypyc.py")
    with open(setup_path, "w") as fh:
        fh.write(setup_src)
    commands = [["build_ext", "--inplace"]]
    if wheel_dir is not None:
        commands.append(
            ["bdist_wheel", "--dist-dir", os.path.abspath(wheel_dir)])
    try:
        # Run from src/ so the extension paths mirror the package layout and
        # --inplace drops each .so next to its .py source.
        for command in commands:
            proc = subprocess.run([sys.executable, setup_path] + command,
                                  cwd=SRC)
            if proc.returncode != 0:
                print(f"mypyc {command[0]} failed", file=sys.stderr)
                return proc.returncode
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    for path in built_extensions():
        print(f"built {os.path.relpath(path, REPO)}")
    if wheel_dir is not None:
        for name in sorted(os.listdir(wheel_dir)):
            if name.endswith(".whl"):
                print(f"wheel {os.path.join(wheel_dir, name)}")
    print("verify with: REPRO_BACKEND=compiled PYTHONPATH=src "
          "python -m pytest -x -q")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--require", action="store_true",
                        help="exit 2 instead of skipping when mypyc is "
                             "not installed")
    parser.add_argument("--clean", action="store_true",
                        help="remove previously built extensions")
    parser.add_argument("--check", action="store_true",
                        help="report compiled/python status per module")
    parser.add_argument("--wheel", metavar="DIR", default=None,
                        help="additionally package the extensions as a"
                             " wheel into DIR")
    args = parser.parse_args()
    if args.clean:
        return clean()
    if args.check:
        return check()
    return build(args.require, args.wheel)


if __name__ == "__main__":
    raise SystemExit(main())
