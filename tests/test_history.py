"""Tests for the perf-history ledger and its regression gate.

``benchmarks/`` is not a package and sits outside the tier-1 testpaths, so
import ``history`` by path the same way ``perf_smoke`` does.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks"))

import history  # noqa: E402


def record(sha="a" * 40, **metrics):
    base = {"sha": sha, "utc": "2026-01-01T00:00:00Z", "python": "3.12.0"}
    base.update(metrics)
    return base


class TestRegressionCheck:
    def test_empty_history_never_flags(self):
        assert history.check_regressions(
            [], record(kernel_events_per_sec=1000)) == []

    def test_throughput_drop_flags(self):
        prior = [record(kernel_events_per_sec=1000)]
        new = record(sha="b" * 40, kernel_events_per_sec=850)
        flags = history.check_regressions(prior, new)
        assert len(flags) == 1
        assert "kernel_events_per_sec" in flags[0]
        assert "aaaaaaaaaaaa" in flags[0]  # baseline sha[:12] named

    def test_latency_rise_flags(self):
        prior = [record(e2e_fft1k_seconds=10.0)]
        new = record(e2e_fft1k_seconds=11.5)
        flags = history.check_regressions(prior, new)
        assert len(flags) == 1 and "e2e_fft1k_seconds" in flags[0]

    def test_improvements_never_flag(self):
        prior = [record(kernel_events_per_sec=1000, e2e_fft1k_seconds=10.0)]
        new = record(kernel_events_per_sec=2000, e2e_fft1k_seconds=1.0)
        assert history.check_regressions(prior, new) == []

    def test_within_threshold_passes(self):
        prior = [record(kernel_events_per_sec=1000)]
        new = record(kernel_events_per_sec=950)  # 5% < 10%
        assert history.check_regressions(prior, new) == []

    def test_custom_threshold(self):
        prior = [record(kernel_events_per_sec=1000)]
        new = record(kernel_events_per_sec=950)
        assert history.check_regressions(prior, new, threshold=0.01)

    def test_baseline_is_most_recent_carrier(self):
        prior = [
            record(sha="1" * 40, sweep_seconds=100.0),
            record(sha="2" * 40, kernel_events_per_sec=1000),
            record(sha="3" * 40, sweep_seconds=50.0),
        ]
        # vs the most recent sweep (50s) this is a regression, even though
        # it beats the older 100s entry; the kernel-only entry is skipped.
        flags = history.check_regressions(prior, record(sweep_seconds=60.0))
        assert len(flags) == 1
        assert "333333333333" in flags[0]

    def test_missing_metric_skipped(self):
        prior = [record(kernel_events_per_sec=1000)]
        assert history.check_regressions(prior, record(sweep_seconds=9)) == []


class TestLedgerIO:
    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        first = record(kernel_events_per_sec=1000)
        second = record(sha="b" * 40, kernel_events_per_sec=1100)
        history.append_record(first, path)
        history.append_record(second, path)
        assert history.load_history(path) == [first, second]

    def test_torn_lines_skipped(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        history.append_record(record(sweep_seconds=10.0), path)
        with open(path, "a") as fh:
            fh.write('{"sha": "torn...\n')
        history.append_record(record(sweep_seconds=11.0), path)
        records = history.load_history(path)
        assert [r["sweep_seconds"] for r in records] == [10.0, 11.0]

    def test_load_missing_file(self, tmp_path):
        assert history.load_history(str(tmp_path / "absent.jsonl")) == []

    def test_latest_record(self, tmp_path):
        path = tmp_path / "bench.json"
        assert history.latest_record(str(path)) is None
        path.write_text(json.dumps([{"a": 1}, {"a": 2}]))
        assert history.latest_record(str(path)) == {"a": 2}
        path.write_text("not json")
        assert history.latest_record(str(path)) is None

    def test_build_record_stamps_and_filters(self, monkeypatch, tmp_path):
        kernel = tmp_path / "BENCH_kernel.json"
        e2e = tmp_path / "BENCH_e2e.json"
        kernel.write_text(json.dumps([{
            "kernel_events_per_sec": 123456, "e2e_fft1k_seconds": 2.5,
            "machine": "x86_64"}]))
        e2e.write_text(json.dumps([{
            "sweep_seconds": 60.0, "references_per_sec": 42,
            "per_app_seconds": {"fft/flash": 1.0}}]))
        monkeypatch.setattr(history, "KERNEL_FILE", str(kernel))
        monkeypatch.setattr(history, "E2E_FILE", str(e2e))
        built = history.build_record(sha="c" * 40)
        assert built["sha"] == "c" * 40
        assert built["kernel_events_per_sec"] == 123456
        assert built["e2e_fft1k_seconds"] == 2.5
        assert built["sweep_seconds"] == 60.0
        assert built["references_per_sec"] == 42
        # Only tracked metrics are folded in, not the raw extras.
        assert "per_app_seconds" not in built
        assert "machine" not in built
        assert set(built) >= {"sha", "utc", "python"}


class TestFloors:
    def test_clear_floor_passes(self):
        assert history.check_floors(
            record(references_per_sec=600_000,
                   kernel_events_per_sec=1_500_000)) == []

    def test_breach_names_metric_and_floor(self):
        breaches = history.check_floors(record(references_per_sec=100_000))
        assert len(breaches) == 1
        assert "references_per_sec" in breaches[0]
        assert str(int(history.ABS_FLOORS["references_per_sec"])) in breaches[0]

    def test_missing_metric_skipped(self):
        # A kernel-only record carries no sweep metric; only the metrics
        # the record has are held to their floors.
        assert history.check_floors(record(sweep_seconds=30.0)) == []

    def test_custom_floors(self):
        assert history.check_floors(record(sweep_seconds=30.0),
                                    floors={"sweep_seconds": 60.0})

    def test_main_floor_breach_exits_2(self, monkeypatch, tmp_path, capsys):
        kernel = tmp_path / "BENCH_kernel.json"
        kernel.write_text(json.dumps([{"kernel_events_per_sec": 1000}]))
        monkeypatch.setattr(history, "KERNEL_FILE", str(kernel))
        monkeypatch.setattr(history, "E2E_FILE",
                            str(tmp_path / "absent.json"))
        ledger = str(tmp_path / "hist.jsonl")
        assert history.main(["--history", ledger]) == 2
        assert "FLOOR" in capsys.readouterr().err
        # --no-floors downgrades it to a clean pass (slow local hardware).
        assert history.main(["--history", ledger, "--no-floors"]) == 0


class TestAppFloors:
    def test_missing_record_or_map_skipped(self):
        # No e2e record yet, or a record from before the per-app census.
        assert history.check_app_floors(None) == []
        assert history.check_app_floors({"references_per_sec": 1}) == []

    def test_breach_names_app_and_floor(self):
        rec = {"per_app_refs_per_sec": {"fft/flash": 10, "lu/flash": 500}}
        breaches = history.check_app_floors(
            rec, floors={"fft/flash": 100, "lu/flash": 100,
                         "mp3d/flash": 100})
        assert len(breaches) == 1
        assert "fft/flash" in breaches[0]
        assert "100" in breaches[0]

    def test_clear_passes(self):
        rec = {"per_app_refs_per_sec": {"fft/flash": 1_000_000}}
        assert history.check_app_floors(
            rec, floors={"fft/flash": 100}) == []

    def test_default_floors_cover_full_matrix(self):
        # Every per-app floor key is an app/kind pair of the sweep.
        for key in history.PER_APP_FLOORS:
            app, kind = key.split("/")
            assert kind in ("flash", "ideal")

    def test_main_app_floor_breach_exits_2(self, monkeypatch, tmp_path,
                                           capsys):
        kernel = tmp_path / "BENCH_kernel.json"
        kernel.write_text(json.dumps(
            [{"kernel_events_per_sec": 2_000_000}]))
        e2e = tmp_path / "BENCH_e2e.json"
        e2e.write_text(json.dumps([{
            "references_per_sec": 1_000_000,
            "per_app_refs_per_sec": {"mp3d/flash": 1}}]))
        monkeypatch.setattr(history, "KERNEL_FILE", str(kernel))
        monkeypatch.setattr(history, "E2E_FILE", str(e2e))
        ledger = str(tmp_path / "hist.jsonl")
        assert history.main(["--history", ledger]) == 2
        assert "mp3d/flash" in capsys.readouterr().err


class TestJsonReport:
    def test_json_mode_emits_report(self, monkeypatch, tmp_path, capsys):
        kernel = tmp_path / "BENCH_kernel.json"
        kernel.write_text(json.dumps(
            [{"kernel_events_per_sec": 2_000_000}]))
        monkeypatch.setattr(history, "KERNEL_FILE", str(kernel))
        monkeypatch.setattr(history, "E2E_FILE",
                            str(tmp_path / "absent.json"))
        ledger = str(tmp_path / "hist.jsonl")
        assert history.main(["--history", ledger, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == 0
        assert report["appended"] is True
        assert report["record"]["kernel_events_per_sec"] == 2_000_000
        assert report["floor_breaches"] == []
        assert "per_app_floors" in report

    def test_json_mode_reports_breach_status(self, monkeypatch, tmp_path,
                                             capsys):
        kernel = tmp_path / "BENCH_kernel.json"
        kernel.write_text(json.dumps([{"kernel_events_per_sec": 1000}]))
        monkeypatch.setattr(history, "KERNEL_FILE", str(kernel))
        monkeypatch.setattr(history, "E2E_FILE",
                            str(tmp_path / "absent.json"))
        ledger = str(tmp_path / "hist.jsonl")
        assert history.main(
            ["--history", ledger, "--check-only", "--json"]) == 2
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == 2
        assert report["appended"] is False
        assert len(report["floor_breaches"]) == 1


class TestMainEntry:
    def test_main_appends_and_gates(self, monkeypatch, tmp_path, capsys):
        kernel = tmp_path / "BENCH_kernel.json"
        kernel.write_text(json.dumps([{"kernel_events_per_sec": 1000}]))
        monkeypatch.setattr(history, "KERNEL_FILE", str(kernel))
        monkeypatch.setattr(history, "E2E_FILE",
                            str(tmp_path / "absent.json"))
        ledger = str(tmp_path / "hist.jsonl")
        assert history.main(["--history", ledger, "--no-floors"]) == 0
        assert len(history.load_history(ledger)) == 1
        # A faster second run appends cleanly.
        kernel.write_text(json.dumps([{"kernel_events_per_sec": 1200}]))
        assert history.main(["--history", ledger, "--no-floors"]) == 0
        # A >10% slowdown exits nonzero and names the metric.
        kernel.write_text(json.dumps([{"kernel_events_per_sec": 800}]))
        capsys.readouterr()
        assert history.main(["--history", ledger, "--no-floors"]) == 1
        assert "REGRESSION" in capsys.readouterr().err
        assert len(history.load_history(ledger)) == 3
        # --soft-regressions reports without failing (floors stay hard).
        kernel.write_text(json.dumps([{"kernel_events_per_sec": 640}]))
        capsys.readouterr()
        assert history.main(["--history", ledger, "--no-floors",
                             "--soft-regressions"]) == 0
        assert "REGRESSION" in capsys.readouterr().err

    def test_check_only_does_not_append(self, monkeypatch, tmp_path):
        kernel = tmp_path / "BENCH_kernel.json"
        kernel.write_text(json.dumps([{"kernel_events_per_sec": 1000}]))
        monkeypatch.setattr(history, "KERNEL_FILE", str(kernel))
        monkeypatch.setattr(history, "E2E_FILE",
                            str(tmp_path / "absent.json"))
        ledger = str(tmp_path / "hist.jsonl")
        assert history.main(["--history", ledger, "--check-only",
                             "--no-floors"]) == 0
        assert history.load_history(ledger) == []

    def test_no_records_is_a_noop(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(history, "KERNEL_FILE",
                            str(tmp_path / "nope.json"))
        monkeypatch.setattr(history, "E2E_FILE",
                            str(tmp_path / "nada.json"))
        assert history.main(
            ["--history", str(tmp_path / "hist.jsonl")]) == 0
        assert "nothing to do" in capsys.readouterr().err
