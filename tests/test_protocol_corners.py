"""Corner-case tests: message helpers, grant races, queue semantics."""

import pytest

from repro.caches.setassoc import CacheState
from repro.common.params import MagicCacheConfig, flash_config, ideal_config
from repro.machine import Machine
from repro.protocol.messages import (
    DATA_BEARING, Message, MessageType as MT, TRANSFER_TYPES,
)

KB = 1024
LINE = 128


class TestMessageHelpers:
    def test_reply_targets_requester(self):
        msg = Message(MT.REMOTE_GET, 0x100, 3, 0, 3)
        reply = msg.reply(MT.PUT)
        assert reply.src == 0 and reply.dst == 3 and reply.requester == 3
        assert reply.line_addr == 0x100

    def test_reply_override_destination(self):
        msg = Message(MT.REMOTE_GET, 0x100, 3, 0, 3)
        forward = msg.reply(MT.FORWARD_GET, dst=2)
        assert forward.dst == 2

    def test_carries_data_classification(self):
        assert Message(MT.PUT, 0, 0, 1, 1).carries_data
        assert Message(MT.XFER_DATA, 0, 0, 1, 1).carries_data
        assert not Message(MT.INVAL, 0, 0, 1, 1).carries_data
        assert not Message(MT.GET, 0, 0, 0, 0).carries_data

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            Message(MT.GET, -8, 0, 0, 0)

    def test_uids_unique_by_default(self):
        a = Message(MT.GET, 0, 0, 0, 0)
        b = Message(MT.GET, 0, 0, 0, 0)
        assert a.uid != b.uid

    def test_explicit_uid_shared_for_transfers(self):
        a = Message(MT.XFER_DATA, 0, 0, 1, 0, uid=7)
        b = Message(MT.XFER_DATA, 128, 0, 1, 0, uid=7)
        assert a.uid == b.uid == 7

    def test_type_sets_disjoint(self):
        assert not (TRANSFER_TYPES - {MT.XFER_SEND, MT.XFER_DATA,
                                      MT.XFER_DONE})
        assert MT.XFER_SEND not in DATA_BEARING


class TestGrantRaceEndToEnd:
    """The home's CPU is being granted ownership while a remote request for
    the same line arrives: the request defers, then replays when the grant
    crosses the bus (the replay_stable path)."""

    @pytest.mark.parametrize("kind", ["flash", "ideal"])
    def test_remote_read_during_local_grant(self, kind):
        make = flash_config if kind == "flash" else ideal_config
        config = make(n_procs=2, cache_size=8 * KB).with_changes(
            magic_caches=MagicCacheConfig(enabled=False)
        )
        machine = Machine(config)
        # CPU 0 (home) writes line 0; CPU 1 reads it at nearly the same
        # time, repeatedly, to hit the in-flight-grant window.
        streams = [
            iter([("w", 0), ("c", 5), ("r", 0), ("b", "e")]),
            iter([("r", 0), ("r", 0), ("b", "e")]),
        ]
        machine.run(streams)
        machine.check_directory_invariants()
        entry = machine.nodes[0].directory.entry(0)
        # Whatever the interleaving, the final state is coherent: either
        # shared by both or still dirty at the last writer.
        if entry.dirty:
            assert entry.owner in (0, 1)
        else:
            assert 1 in machine.nodes[0].directory.sharers(0)


class TestIdealUnboundedness:
    def test_ideal_pi_queue_never_stalls_processor(self):
        config = ideal_config(n_procs=1, cache_size=8 * KB)
        machine = Machine(config)
        # Far more posted writes than any bounded PI queue would accept.
        ops = [("w", i * LINE) for i in range(64)] + [("c", 1)]
        result = machine.run([iter(ops)])
        times = machine.nodes[0].cpu.times
        # Stall comes only from MSHR pressure, never from queue space; with
        # 4 MSHRs and fast local misses this stays small.
        assert times.write_stall < result.execution_time

    def test_flash_pi_queue_is_bounded(self):
        config = flash_config(n_procs=1, cache_size=8 * KB)
        machine = Machine(config)
        assert machine.nodes[0].controller.pi_in_q.capacity == 16


class TestHomeOfMapping:
    def test_lines_map_to_consecutive_homes(self):
        config = flash_config(n_procs=4)
        machine = Machine(config)
        engine = machine.nodes[0].engine
        mem = config.memory_bytes_per_node
        assert engine.home_of(0) == 0
        assert engine.home_of(mem - LINE) == 0
        assert engine.home_of(mem) == 1
        assert engine.home_of(3 * mem + 5 * LINE) == 3


class TestTransferOpValidation:
    def test_transfer_counts_roll_up(self):
        config = flash_config(n_procs=2, cache_size=8 * KB).with_changes(
            magic_caches=MagicCacheConfig(enabled=False)
        )
        machine = Machine(config)
        machine.run([
            iter([("s", 1, 0, 300)]),  # 3 lines (rounded up)
            iter([("v", 0)]),
        ])
        assert machine.transfers.transfers_started == 1
        assert machine.transfers.transfers_completed == 1
        assert machine.transfers.lines_moved == 3
