"""Tests for the protocol performance monitor."""

import pytest

from repro.common.params import MagicCacheConfig, flash_config
from repro.common.units import PAGE_BYTES
from repro.machine import Machine
from repro.protocol.coherence import MissClass
from repro.stats.monitor import ProtocolMonitor, SharingPattern

LINE = 128


@pytest.fixture
def monitor():
    return ProtocolMonitor(node_id=0)


class TestCounting:
    def test_local_remote_split(self, monitor):
        monitor.note_miss(MissClass.LOCAL_CLEAN, 0, 0)
        monitor.note_miss(MissClass.REMOTE_CLEAN, 0, 3)
        monitor.note_miss(MissClass.REMOTE_DIRTY_REMOTE, 0, 2)
        assert monitor.page_local[0] == 1
        assert monitor.page_remote[0] == 2
        assert monitor.remote_fraction() == pytest.approx(2 / 3)

    def test_hot_pages_ranked_by_remote_traffic(self, monitor):
        for _ in range(5):
            monitor.note_miss(MissClass.REMOTE_CLEAN, 0 * PAGE_BYTES, 1)
        for _ in range(9):
            monitor.note_miss(MissClass.REMOTE_CLEAN, 3 * PAGE_BYTES, 2)
        hot = monitor.hot_pages(top=2)
        assert hot[0][0] == 3 and hot[0][1] == 9
        assert hot[1][0] == 0 and hot[1][1] == 5

    def test_dominant_requesters(self, monitor):
        for node, count in ((1, 7), (2, 3)):
            for _ in range(count):
                monitor.note_miss(MissClass.REMOTE_CLEAN, 0, node)
        assert monitor.dominant_requesters(1) == [(1, 7)]


class TestSharingClassification:
    def test_private(self, monitor):
        monitor.note_miss(MissClass.REMOTE_CLEAN, 0, 1)
        monitor.note_miss(MissClass.REMOTE_CLEAN, 0, 1)
        assert monitor.classify_line(0) == SharingPattern.PRIVATE

    def test_read_shared(self, monitor):
        for node in (1, 2, 3):
            monitor.note_miss(MissClass.REMOTE_CLEAN, 0, node)
        assert monitor.classify_line(0) == SharingPattern.READ_SHARED

    def test_producer_consumer(self, monitor):
        monitor.note_write(0, 1)
        for node in (2, 3):
            monitor.note_miss(MissClass.REMOTE_DIRTY_REMOTE, 0, node)
        assert monitor.classify_line(0) == SharingPattern.PRODUCER_CONSUMER

    def test_migratory(self, monitor):
        for node in (1, 2, 3):
            monitor.note_miss(MissClass.REMOTE_DIRTY_REMOTE, 0, node)
            monitor.note_write(0, node)
        assert monitor.classify_line(0) == SharingPattern.MIGRATORY

    def test_unobserved_line_private(self, monitor):
        assert monitor.classify_line(0x9999) == SharingPattern.PRIVATE

    def test_pattern_histogram(self, monitor):
        monitor.note_miss(MissClass.REMOTE_CLEAN, 0, 1)
        monitor.note_miss(MissClass.REMOTE_CLEAN, LINE, 1)
        monitor.note_miss(MissClass.REMOTE_CLEAN, LINE, 2)
        histogram = monitor.pattern_histogram()
        assert histogram[SharingPattern.PRIVATE] == 1
        assert histogram[SharingPattern.READ_SHARED] == 1


class TestMigrationAdvice:
    def test_single_dominant_remote_node(self, monitor):
        for i in range(12):
            monitor.note_miss(MissClass.REMOTE_CLEAN, i * LINE, 2)
        advice = monitor.migration_advice(threshold=8)
        assert advice == [(0, 2)]

    def test_balanced_traffic_gives_no_advice(self, monitor):
        for i in range(16):
            monitor.note_miss(MissClass.REMOTE_CLEAN, i * LINE, 1 + i % 3)
        assert monitor.migration_advice(threshold=8) == []

    def test_below_threshold_no_advice(self, monitor):
        for i in range(3):
            monitor.note_miss(MissClass.REMOTE_CLEAN, i * LINE, 2)
        assert monitor.migration_advice(threshold=8) == []


class TestMachineIntegration:
    def test_monitor_attached_to_engine_observes_run(self):
        config = flash_config(n_procs=4, cache_size=64 * 1024).with_changes(
            magic_caches=MagicCacheConfig(enabled=False)
        )
        machine = Machine(config)
        monitors = []
        for node in machine.nodes:
            monitor = ProtocolMonitor(node.node_id)
            node.engine.monitor = monitor
            monitors.append(monitor)
        mem = config.memory_bytes_per_node
        streams = [
            [("r", 0)] + [("b", "e")],                                # local
            [("r", i * LINE) for i in range(8)]                       # remote
            + [("w", i * LINE) for i in range(8)] + [("b", "e")],
            [("w", mem + i * LINE) for i in range(4)] + [("b", "e")],
            [("c", 1), ("b", "e")],
        ]
        machine.run([iter(s) for s in streams])
        assert sum(monitors[0].class_counts.values()) > 0
        assert monitors[0].remote_fraction() > 0
        # Node 0's hottest page saw remote traffic from node 1.
        assert monitors[0].dominant_requesters(1)[0][0] == 1
