"""The parallel run farm: spec fan-out, determinism, memo seeding.

The core guarantee: a farmed sweep (worker processes + serialized results +
disk cache) is *byte-identical* to a serial in-process sweep.  The sweep here
is the Figure 4.1 shape (every app, FLASH and ideal) at tiny problem sizes so
the double run stays fast.
"""

import pytest

from repro.harness import experiments as exp, runfarm

#: Figure 4.1 sweep at tiny problem sizes (seconds, not minutes, per run).
TINY_SIZES = {
    "barnes": {"bodies": 64, "iterations": 1},
    "fft": {"points": 256},
    "lu": {"matrix": 32, "block": 8},
    "mp3d": {"particles": 200, "steps": 1},
    "ocean": {"grid": 10, "n_grids": 2, "sweeps": 1},
    "os": {"tasks_per_proc": 1},
    "radix": {"keys": 512, "radix": 16, "key_bits": 8},
}


def tiny_sweep_specs():
    return [
        exp.normalize_spec(app, kind=kind, regime="large", n_procs=4,
                           workload_overrides=TINY_SIZES[app])
        for app in exp.APP_ORDER
        for kind in ("flash", "ideal")
    ]


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    exp.clear_cache()
    yield
    exp.clear_cache()


class TestSweepSpecs:
    def test_full_large_sweep_shape(self):
        specs = runfarm.sweep_specs(regime="large")
        assert len(specs) == len(exp.APP_ORDER) * 2
        assert {s["kind"] for s in specs} == {"flash", "ideal"}

    def test_paper_na_cells_skipped(self):
        specs = runfarm.sweep_specs(regime="small")
        apps = {s["app"] for s in specs}
        # Barnes, LU and OS are not run at the small ("4 KB") regime.
        assert "barnes" not in apps and "lu" not in apps and "os" not in apps
        assert "fft" in apps and "ocean" in apps

    def test_default_jobs_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert runfarm.default_jobs() == 6
        monkeypatch.setenv("REPRO_JOBS", "garbage")
        assert runfarm.default_jobs() == 1


class TestDeterminism:
    def test_serial_and_jobs4_sweeps_are_byte_identical(self, monkeypatch):
        specs = tiny_sweep_specs()
        # Serial reference, all caching off: pure in-process simulation.
        monkeypatch.setenv("REPRO_CACHE", "off")
        serial = [r.to_json() for r in runfarm.run_specs(specs, jobs=1)]
        monkeypatch.delenv("REPRO_CACHE")
        exp.clear_cache()
        # Farmed run: fresh worker processes, results round-trip through
        # serialization and the (empty) disk cache.
        farmed = [r.to_json() for r in runfarm.run_specs(specs, jobs=4)]
        assert serial == farmed

    def test_farm_seeds_parent_memo(self, monkeypatch):
        specs = tiny_sweep_specs()[:2]  # fft flash+ideal equivalent pair
        runfarm.run_specs(specs, jobs=2)
        # Subsequent run_app calls in the parent must not re-simulate.
        monkeypatch.setattr(
            exp, "_execute",
            lambda _spec: pytest.fail("farm result missed the memo table"))
        for spec in specs:
            result = exp.run_app(
                spec["app"], kind=spec["kind"], regime=spec["regime"],
                n_procs=spec["n_procs"],
                workload_overrides=spec["workload_overrides"])
            assert result.execution_time > 0

    def test_cache_round_trip_after_farm_is_lossless(self):
        spec = tiny_sweep_specs()[0]
        (farmed,) = runfarm.run_specs([spec], jobs=1)
        exp.clear_cache()
        # Second invocation loads from disk; serialized forms must match.
        (reloaded,) = runfarm.run_specs([spec], jobs=1)
        assert reloaded.to_json() == farmed.to_json()
