"""The parallel run farm: spec fan-out, determinism, memo seeding, and the
crash-tolerance layer.

The core guarantee: a farmed sweep (worker processes + serialized results +
disk cache) is *byte-identical* to a serial in-process sweep.  The sweep here
is the Figure 4.1 shape (every app, FLASH and ideal) at tiny problem sizes so
the double run stays fast.

Crash tolerance is drilled with ``__selftest__`` specs (gated behind
``REPRO_FARM_SELFTEST=1``): workers that sleep past the timeout, die by
SIGKILL, raise, or fail exactly once — exercising retry, resubmission after a
broken pool, suspect serialization, and quarantine.
"""

import json

import pytest

from repro.harness import experiments as exp, runfarm
from repro.harness.runfarm import FarmError, FarmPolicy

#: Figure 4.1 sweep at tiny problem sizes (seconds, not minutes, per run).
TINY_SIZES = {
    "barnes": {"bodies": 64, "iterations": 1},
    "fft": {"points": 256},
    "lu": {"matrix": 32, "block": 8},
    "mp3d": {"particles": 200, "steps": 1},
    "ocean": {"grid": 10, "n_grids": 2, "sweeps": 1},
    "os": {"tasks_per_proc": 1},
    "radix": {"keys": 512, "radix": 16, "key_bits": 8},
}


def tiny_sweep_specs():
    return [
        exp.normalize_spec(app, kind=kind, regime="large", n_procs=4,
                           workload_overrides=TINY_SIZES[app])
        for app in exp.APP_ORDER
        for kind in ("flash", "ideal")
    ]


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    exp.clear_cache()
    runfarm.clear_quarantine()
    yield
    exp.clear_cache()
    runfarm.clear_quarantine()


class TestSweepSpecs:
    def test_full_large_sweep_shape(self):
        specs = runfarm.sweep_specs(regime="large")
        assert len(specs) == len(exp.APP_ORDER) * 2
        assert {s["kind"] for s in specs} == {"flash", "ideal"}

    def test_paper_na_cells_skipped(self):
        specs = runfarm.sweep_specs(regime="small")
        apps = {s["app"] for s in specs}
        # Barnes, LU and OS are not run at the small ("4 KB") regime.
        assert "barnes" not in apps and "lu" not in apps and "os" not in apps
        assert "fft" in apps and "ocean" in apps

    def test_default_jobs_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert runfarm.default_jobs() == 6
        monkeypatch.setenv("REPRO_JOBS", "garbage")
        assert runfarm.default_jobs() == 1


class TestDeterminism:
    def test_serial_and_jobs4_sweeps_are_byte_identical(self, monkeypatch):
        specs = tiny_sweep_specs()
        # Serial reference, all caching off: pure in-process simulation.
        monkeypatch.setenv("REPRO_CACHE", "off")
        serial = [r.to_json() for r in runfarm.run_specs(specs, jobs=1)]
        monkeypatch.delenv("REPRO_CACHE")
        exp.clear_cache()
        # Farmed run: fresh worker processes, results round-trip through
        # serialization and the (empty) disk cache.
        farmed = [r.to_json() for r in runfarm.run_specs(specs, jobs=4)]
        assert serial == farmed

    def test_farm_seeds_parent_memo(self, monkeypatch):
        specs = tiny_sweep_specs()[:2]  # fft flash+ideal equivalent pair
        runfarm.run_specs(specs, jobs=2)
        # Subsequent run_app calls in the parent must not re-simulate.
        monkeypatch.setattr(
            exp, "_execute",
            lambda _spec: pytest.fail("farm result missed the memo table"))
        for spec in specs:
            result = exp.run_app(
                spec["app"], kind=spec["kind"], regime=spec["regime"],
                n_procs=spec["n_procs"],
                workload_overrides=spec["workload_overrides"])
            assert result.execution_time > 0

    def test_cache_round_trip_after_farm_is_lossless(self):
        spec = tiny_sweep_specs()[0]
        (farmed,) = runfarm.run_specs([spec], jobs=1)
        exp.clear_cache()
        # Second invocation loads from disk; serialized forms must match.
        (reloaded,) = runfarm.run_specs([spec], jobs=1)
        assert reloaded.to_json() == farmed.to_json()


# -- crash tolerance ---------------------------------------------------------------------


def selftest_spec(tag, **behavior):
    """A farm drill spec; ``tag`` keeps canonical keys (and so quarantine
    entries) distinct between scenarios."""
    behavior["tag"] = tag
    return {
        "app": "__selftest__", "kind": "flash", "regime": "large",
        "n_procs": 1, "cache_bytes": 0, "workload_overrides": behavior,
        "config_overrides": {}, "pp_backend": None, "paper_scale": False,
        "faults": None,
    }


def ok_payload(result):
    return json.loads(result) == {"schema": "selftest", "ok": True}


@pytest.fixture(autouse=True)
def selftest_enabled(monkeypatch):
    monkeypatch.setenv("REPRO_FARM_SELFTEST", "1")
    monkeypatch.setenv("REPRO_START_METHOD", "fork")


FAST = dict(backoff=0.05, quarantine_after=3)


class TestResilientFarm:
    def test_selftest_specs_require_the_env_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_FARM_SELFTEST")
        report = runfarm.run_specs_resilient(
            [selftest_spec("gated")], jobs=1,
            policy=FarmPolicy(max_retries=0, **FAST))
        (failure,) = report.failures
        assert "REPRO_FARM_SELFTEST" in failure.error

    def test_timeout_kills_worker_and_keeps_partial_results(self):
        specs = [selftest_spec("sleeper", sleep=30), selftest_spec("quick")]
        report = runfarm.run_specs_resilient(
            specs, jobs=2, policy=FarmPolicy(timeout=1.0, max_retries=0, **FAST))
        assert report.results[0] is None
        assert ok_payload(report.results[1])   # graceful degradation
        (failure,) = report.failures
        assert failure.kind == "timeout"
        assert failure.spec["workload_overrides"]["tag"] == "sleeper"
        assert "wall-clock" in failure.error

    def test_sigkilled_worker_is_identified_and_innocents_rerun(self):
        specs = [
            selftest_spec("killer", die="sigkill"),
            selftest_spec("bystander-1"),
            selftest_spec("bystander-2"),
        ]
        report = runfarm.run_specs_resilient(
            specs, jobs=2, policy=FarmPolicy(max_retries=1, **FAST))
        # Both innocents complete despite sharing a pool with the killer.
        assert ok_payload(report.results[1])
        assert ok_payload(report.results[2])
        (failure,) = report.failures
        assert failure.kind == "crash"
        assert failure.spec["workload_overrides"]["tag"] == "killer"
        # The suspect-serialization rerun crashed alone: blame is certain.
        assert failure.killed_worker

    def test_flaky_spec_succeeds_on_retry(self, tmp_path):
        marker = tmp_path / "flaky-once"
        spec = selftest_spec("flaky", flaky_marker=str(marker))
        report = runfarm.run_specs_resilient(
            [spec], jobs=2, policy=FarmPolicy(max_retries=1, **FAST))
        assert report.ok
        assert ok_payload(report.results[0])
        assert marker.exists()   # the failing first attempt did run

    def test_flaky_sigkill_succeeds_on_resubmission(self, tmp_path):
        marker = tmp_path / "flaky-kill"
        spec = selftest_spec("flaky-kill", flaky_marker=str(marker),
                             flaky_mode="sigkill")
        report = runfarm.run_specs_resilient(
            [spec], jobs=2, policy=FarmPolicy(max_retries=1, **FAST))
        assert report.ok
        assert ok_payload(report.results[0])

    def test_worker_exception_is_surfaced(self):
        spec = selftest_spec("raiser", **{"raise": "controlled failure"})
        report = runfarm.run_specs_resilient(
            [spec], jobs=2, policy=FarmPolicy(max_retries=0, **FAST))
        (failure,) = report.failures
        assert failure.kind == "error"
        assert "RuntimeError" in failure.error
        assert "controlled failure" in failure.error
        assert failure.attempts == 1

    def test_repeat_failures_quarantine_the_spec(self):
        spec = selftest_spec("poison", **{"raise": "always fails"})
        policy = FarmPolicy(max_retries=0, backoff=0.01, quarantine_after=2)
        first = runfarm.run_specs_resilient([spec], jobs=1, policy=policy)
        second = runfarm.run_specs_resilient([spec], jobs=1, policy=policy)
        assert first.failures[0].kind == "error"
        assert not first.failures[0].quarantined
        assert second.failures[0].quarantined   # hit the threshold
        # Third sweep skips the spec without running it at all.
        third = runfarm.run_specs_resilient([spec], jobs=1, policy=policy)
        (failure,) = third.failures
        assert failure.kind == "quarantined" and failure.attempts == 0
        # The quarantine is keyed by spec: other work is unaffected.
        clean = runfarm.run_specs_resilient(
            [selftest_spec("innocent")], jobs=1, policy=policy)
        assert clean.ok

    def test_strict_run_specs_raises_naming_the_spec(self):
        spec = selftest_spec("strict", **{"raise": "boom"})
        with pytest.raises(FarmError, match="__selftest__/flash@large"):
            runfarm.run_specs([spec], jobs=2,
                              policy=FarmPolicy(max_retries=0, **FAST))

    def test_report_to_dict_is_machine_readable(self):
        specs = [selftest_spec("mixed-ok"),
                 selftest_spec("mixed-bad", **{"raise": "nope"})]
        report = runfarm.run_specs_resilient(
            specs, jobs=2, policy=FarmPolicy(max_retries=0, **FAST))
        summary = report.to_dict()
        assert summary["completed"] == 1
        assert summary["failed"] == 1
        assert "mixed" not in summary["failures"][0]  # describe() is app-level
        assert "__selftest__" in summary["failures"][0]
        assert report.failures[0].to_dict()["kind"] == "error"

    def test_real_specs_mix_with_failures(self):
        # One real simulation plus one failing drill: the simulation's
        # result must come back intact (graceful degradation end-to-end).
        real = tiny_sweep_specs()[0]
        bad = selftest_spec("mixed-real", **{"raise": "nope"})
        report = runfarm.run_specs_resilient(
            [real, bad], jobs=2, policy=FarmPolicy(max_retries=0, **FAST))
        assert report.results[0] is not None
        assert report.results[0].execution_time > 0
        assert len(report.failures) == 1
