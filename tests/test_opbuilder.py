"""Tests for the workload op-builder and PRNG helpers."""

import pytest

from repro.apps.base import OpBuilder, Workload, rng_stream


def drain(gen):
    return list(gen)


class TestOpBuilder:
    def test_read_emits_tuple(self):
        ops = OpBuilder()
        out = drain(ops.read(0x100))
        assert out == [("r", 0x100)]

    def test_multi_ref_form(self):
        ops = OpBuilder(refs_per_access=4)
        out = drain(ops.read(0x100))
        assert out == [("r", 0x100, 4)]

    def test_explicit_refs_override_default(self):
        ops = OpBuilder(refs_per_access=4)
        out = drain(ops.write(0x100, refs=16))
        assert out == [("w", 0x100, 16)]

    def test_work_accumulates_until_threshold(self):
        ops = OpBuilder(work_per_ref=5.0, threshold=16.0)
        first = drain(ops.read(0))        # 5 pending: below threshold
        second = drain(ops.read(128))     # 10 pending
        third = drain(ops.read(256))      # 15 pending
        fourth = drain(ops.read(384))     # 20 >= 16: flushes
        assert all(op[0] == "r" for op in first + second + third)
        assert fourth[0][0] == "c" and fourth[0][1] == 20.0
        assert fourth[1][0] == "r"

    def test_flush_emits_remainder(self):
        ops = OpBuilder(work_per_ref=3.0)
        drain(ops.read(0))
        out = drain(ops.flush())
        assert out == [("c", 3.0)]
        assert drain(ops.flush()) == []  # idempotent

    def test_compute_respects_threshold(self):
        ops = OpBuilder(threshold=10.0)
        assert drain(ops.compute(4)) == []
        out = drain(ops.compute(8))
        assert out == [("c", 12.0)]

    def test_refs_scale_pending_work(self):
        ops = OpBuilder(work_per_ref=1.0, threshold=100.0, refs_per_access=8)
        drain(ops.read(0))
        out = drain(ops.flush())
        assert out == [("c", 8.0)]


class TestRngStream:
    def test_deterministic(self):
        a, b = rng_stream(5), rng_stream(5)
        assert [a() for _ in range(20)] == [b() for _ in range(20)]

    def test_seed_sensitivity(self):
        a, b = rng_stream(5), rng_stream(6)
        assert [a() for _ in range(8)] != [b() for _ in range(8)]

    def test_range(self):
        rng = rng_stream(1)
        for _ in range(100):
            assert 0 <= rng() < 2**32

    def test_no_short_cycles(self):
        rng = rng_stream(9)
        seen = {rng() for _ in range(1000)}
        assert len(seen) == 1000


class TestWorkloadBase:
    def test_streams_abstract(self):
        from repro.common.params import flash_config
        with pytest.raises(NotImplementedError):
            Workload().build(flash_config(2))
