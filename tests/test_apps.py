"""Tests for the workload generators."""

import pytest

from repro.apps import (
    PAPER_APPS, BarnesWorkload, FFTWorkload, LUWorkload, MP3DWorkload,
    OceanWorkload, OSWorkload, RadixWorkload,
)
from repro.common.errors import ConfigError
from repro.common.params import flash_config
from repro.common.units import line_address

SMALL = {
    "barnes": dict(bodies=128, iterations=1),
    "fft": dict(points=1024),
    "lu": dict(matrix=64, block=16),
    "mp3d": dict(particles=512, steps=1),
    "ocean": dict(grid=34, n_grids=2, sweeps=1),
    "os": dict(tasks_per_proc=1, syscalls_per_task=5),
    "radix": dict(keys=2048, radix=32, key_bits=10),
}

VALID_OPS = {"r", "w", "c", "b", "l", "u"}


def build_streams(name, n_procs=None):
    cls = PAPER_APPS[name]
    n_procs = n_procs or (8 if name == "os" else 16)
    config = flash_config(n_procs=n_procs)
    return config, cls(**SMALL[name]).build(config)


@pytest.mark.parametrize("name", sorted(PAPER_APPS))
class TestAllApps:
    def test_one_stream_per_processor(self, name):
        config, streams = build_streams(name)
        assert len(streams) == config.n_procs

    def test_ops_well_formed(self, name):
        config, streams = build_streams(name)
        memory_limit = config.n_procs * config.memory_bytes_per_node
        lock_depth = 0
        for ops in streams:
            for op in ops:
                assert op[0] in VALID_OPS
                if op[0] in ("r", "w"):
                    assert 0 <= op[1] < memory_limit * 2  # data + protocol area
                elif op[0] == "c":
                    assert op[1] > 0
                elif op[0] == "l":
                    lock_depth += 1
                elif op[0] == "u":
                    lock_depth -= 1
        assert lock_depth == 0

    def test_barrier_participation_balanced(self, name):
        """Every barrier id is reached exactly once by every processor."""
        _, streams = build_streams(name)
        from collections import Counter
        counts = Counter()
        for ops in streams:
            for op in ops:
                if op[0] == "b":
                    counts[op[1]] += 1
        n = len(streams)
        assert counts and all(v == n for v in counts.values())

    def test_deterministic_builds(self, name):
        _, streams_a = build_streams(name)
        _, streams_b = build_streams(name)
        for a, b in zip(streams_a, streams_b):
            assert list(a) == list(b)


class TestFFT:
    def test_rejects_non_square(self):
        with pytest.raises(ConfigError):
            FFTWorkload(points=1000)

    def test_transpose_reads_are_remote(self):
        config = flash_config(n_procs=4)
        wl = FFTWorkload(points=1024)
        streams = wl.build(config)
        mem = config.memory_bytes_per_node
        # CPU 0's stream must read lines homed at every other node.
        homes = {
            op[1] // mem for op in streams[0] if op[0] == "r"
        }
        assert homes == {0, 1, 2, 3}

    def test_node0_placement(self):
        config = flash_config(n_procs=4)
        wl = FFTWorkload(points=1024, placement="node0")
        streams = wl.build(config)
        mem = config.memory_bytes_per_node
        homes = {
            op[1] // mem for ops in streams for op in ops if op[0] in "rw"
        }
        assert homes == {0}


class TestLU:
    def test_block_ownership_2d_scatter(self):
        wl = LUWorkload(matrix=64, block=16)
        owners = {wl.owner(i, j, 16) for i in range(4) for j in range(4)}
        assert len(owners) == 16  # a 4x4 grid of blocks covers all 16 procs

    def test_rejects_bad_blocking(self):
        with pytest.raises(ConfigError):
            LUWorkload(matrix=100, block=16)


class TestRadix:
    def test_plan_is_a_permutation(self):
        wl = RadixWorkload(**SMALL["radix"])
        plan = wl._plan(4)
        for per_pass in plan:
            dests = [d for proc in per_pass for (_s, d) in proc]
            assert sorted(dests) == list(range(wl.n_keys))

    def test_plan_actually_sorts(self):
        wl = RadixWorkload(keys=512, radix=16, key_bits=8, seed=3)
        from repro.apps.base import rng_stream
        rng = rng_stream(3)
        keys = [rng() & 0xFF for _ in range(512)]
        order = list(range(512))
        for per_pass in wl._plan(4):
            moves = {s: d for proc in per_pass for (s, d) in proc}
            new_order = [0] * 512
            for s, d in moves.items():
                new_order[d] = order[s]
            order = new_order
        values = [keys[kid] for kid in order]
        assert values == sorted(values)

    def test_rejects_non_power_of_two_radix(self):
        with pytest.raises(ConfigError):
            RadixWorkload(radix=100)


class TestBarnes:
    def test_tree_covers_all_bodies(self):
        wl = BarnesWorkload(bodies=128, iterations=1)
        frames = wl._positions()
        build, zone_of, force_reads = wl._iteration_trace(frames[0], 4)
        leaf_bodies = {c.body for c in build.cells if c.body is not None}
        assert leaf_bodies == set(range(128))

    def test_zones_balanced(self):
        wl = BarnesWorkload(bodies=128, iterations=1)
        frames = wl._positions()
        _, zone_of, _ = wl._iteration_trace(frames[0], 4)
        from collections import Counter
        counts = Counter(zone_of.values())
        assert all(abs(v - 32) <= 1 for v in counts.values())

    def test_walk_obeys_theta(self):
        """A larger theta opens fewer cells (shorter walks)."""
        tight = BarnesWorkload(bodies=128, iterations=1, theta=0.5)
        loose = BarnesWorkload(bodies=128, iterations=1, theta=2.0)
        f_tight = tight._iteration_trace(tight._positions()[0], 4)[2]
        f_loose = loose._iteration_trace(loose._positions()[0], 4)[2]
        total_tight = sum(len(v) for v in f_tight.values())
        total_loose = sum(len(v) for v in f_loose.values())
        assert total_loose < total_tight


class TestMP3D:
    def test_trajectories_stay_in_grid(self):
        wl = MP3DWorkload(particles=256, cells=128, steps=3)
        for frame in wl._trajectories(4):
            for cell, partner in frame:
                assert 0 <= cell < 128
                assert partner == -1 or 0 <= partner < 256

    def test_collisions_occur(self):
        wl = MP3DWorkload(particles=512, cells=64, steps=2,
                          collision_fraction=0.9)
        frames = wl._trajectories(4)
        assert any(partner >= 0 for frame in frames for _c, partner in frame)


class TestOS:
    def test_placement_validation(self):
        with pytest.raises(ConfigError):
            OSWorkload(placement="everywhere")

    def test_node0_placement_homes_kernel_data_on_node0(self):
        config = flash_config(n_procs=8)
        wl = OSWorkload(tasks_per_proc=1, syscalls_per_task=5,
                        placement="node0")
        streams = wl.build(config)
        mem = config.memory_bytes_per_node
        # Kernel regions are first-allocated: any access by CPU 3 that is not
        # to its private region must be homed at node 0.
        foreign = {
            op[1] // mem
            for op in streams[3]
            if op[0] in "rw" and op[1] // mem != 3
        }
        assert foreign == {0}


class TestOcean:
    def test_grid_divisibility_enforced(self):
        with pytest.raises(ConfigError):
            OceanWorkload(grid=35).build(flash_config(n_procs=16))

    def test_neighbour_reads_present(self):
        config = flash_config(n_procs=4)
        wl = OceanWorkload(grid=34, n_grids=2, sweeps=1)
        streams = wl.build(config)
        mem = config.memory_bytes_per_node
        homes = {op[1] // mem for op in streams[0] if op[0] == "r"}
        assert len(homes) >= 2  # own subgrid plus at least one neighbour
