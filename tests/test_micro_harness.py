"""Tests for the microbenchmark harness and experiment registry."""

import pytest

from repro.common.params import flash_config, ideal_config
from repro.harness import experiments
from repro.harness.micro import (
    PAPER_TABLE_3_3, measure_latencies, miss_latency_lookup,
)
from repro.harness.tables import render_table
from repro.protocol.coherence import MissClass


@pytest.fixture(scope="module")
def flash_latencies():
    return measure_latencies(flash_config(16))


@pytest.fixture(scope="module")
def ideal_latencies():
    return measure_latencies(ideal_config(16))


class TestTable33:
    def test_flash_latencies_close_to_paper(self, flash_latencies):
        for cls, measurement in flash_latencies.items():
            _ideal, paper_flash, _occ = PAPER_TABLE_3_3[cls]
            assert measurement.latency == pytest.approx(paper_flash, abs=8), cls

    def test_ideal_latencies_close_to_paper(self, ideal_latencies):
        for cls, measurement in ideal_latencies.items():
            paper_ideal, _flash, _occ = PAPER_TABLE_3_3[cls]
            assert measurement.latency == pytest.approx(paper_ideal, abs=6), cls

    def test_local_clean_exact(self, flash_latencies, ideal_latencies):
        assert flash_latencies[MissClass.LOCAL_CLEAN].latency == 27
        assert ideal_latencies[MissClass.LOCAL_CLEAN].latency == 24

    def test_flash_always_slower_than_ideal(self, flash_latencies,
                                            ideal_latencies):
        for cls in MissClass.ALL:
            assert flash_latencies[cls].latency > ideal_latencies[cls].latency

    def test_pp_occupancy_ordering(self, flash_latencies):
        """Dirty-remote misses occupy the PP far longer than clean ones."""
        occ = {cls: m.pp_occupancy for cls, m in flash_latencies.items()}
        assert occ[MissClass.LOCAL_CLEAN] < occ[MissClass.REMOTE_DIRTY_REMOTE]
        assert occ[MissClass.LOCAL_CLEAN] == pytest.approx(11, abs=2)

    def test_latency_lookup_shape(self):
        lookup = miss_latency_lookup(flash_config(4))
        assert set(lookup) == set(MissClass.ALL)
        assert all(v > 0 for v in lookup.values())


class TestExperimentRegistry:
    def test_regime_sizes(self):
        assert experiments.regime_cache_bytes("fft", "large") == 1024 * 1024
        assert experiments.regime_cache_bytes("ocean", "small") == 4096
        assert experiments.regime_cache_bytes("lu", "small") is None

    def test_run_app_memoized(self):
        experiments.clear_cache()
        a = experiments.run_app("lu", regime="large",
                                workload_overrides=dict(matrix=32, block=16))
        b = experiments.run_app("lu", regime="large",
                                workload_overrides=dict(matrix=32, block=16))
        assert a is b

    def test_na_regime_raises(self):
        with pytest.raises(ValueError):
            experiments.run_app("os", regime="small")

    def test_run_flash_ideal_pairs(self):
        experiments.clear_cache()
        flash, ideal = experiments.run_flash_ideal(
            "lu", workload_overrides=dict(matrix=32, block=16)
        )
        assert flash.kind == "flash" and ideal.kind == "ideal"
        assert flash.execution_time >= ideal.execution_time

    def test_workload_factory_names(self):
        for app in experiments.APP_ORDER:
            wl = experiments.app_workload(app)
            assert wl.name == app


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text and "0.12" in text
        assert len(lines) == 5


class TestPaperScale:
    def test_paper_scale_sizes(self):
        wl = experiments.app_workload("fft", paper_scale=True)
        assert wl.points == 65536
        wl = experiments.app_workload("lu", paper_scale=True)
        assert wl.matrix == 512
        wl = experiments.app_workload("radix", paper_scale=True)
        assert wl.n_keys == 262144 and wl.radix == 256

    def test_paper_scale_override_wins(self):
        wl = experiments.app_workload("fft", paper_scale=True, points=1024)
        assert wl.points == 1024

    def test_quick_scale_defaults(self):
        wl = experiments.app_workload("fft", paper_scale=False)
        assert wl.points == 16384
