"""Tests for the metrics registry, run diffing, envopts and the diff CLI.

The two load-bearing invariants:

* metrics OFF must be byte-identical to the seed (the golden matrix in
  ``test_integration.py`` enforces that directly), and
* metrics ON must not perturb the simulation — the core result of a
  metrics-on run, with the ``metrics`` block stripped, must hash to the
  same golden SHA-256 as the metrics-off run.
"""

import hashlib
import json

import pytest

from test_integration import TestGoldenHashes

from repro.harness import envopts, experiments, runfarm
from repro.harness.__main__ import main as harness_main
from repro.harness.diskcache import DiskCache
from repro.stats.metrics import (
    Family, Log2Histogram, MetricsRegistry, _log2_bucket, breaches,
    diff_rows, flatten_result, pp_reconciliation, render_diff,
)
from repro.stats.report import RunResult


@pytest.fixture(scope="module")
def fft_flash():
    """One fast FFT FLASH run with metrics on (uncached, module-shared)."""
    spec = experiments.normalize_spec(
        "fft", kind="flash", regime="large",
        workload_overrides=TestGoldenHashes.FAST_SIZES["fft"], metrics=True)
    return experiments._execute(spec)


class TestPrimitives:
    def test_log2_buckets(self):
        assert _log2_bucket(-1) == 0
        assert _log2_bucket(0) == 0
        assert _log2_bucket(0.5) == 1
        assert _log2_bucket(1) == 1
        assert _log2_bucket(1.5) == 2
        assert _log2_bucket(2) == 2
        assert _log2_bucket(3) == 4
        assert _log2_bucket(4) == 4
        assert _log2_bucket(5) == 8
        assert _log2_bucket(1024) == 1024
        assert _log2_bucket(1025) == 2048

    def test_histogram_observe(self):
        hist = Log2Histogram()
        for value in (0, 1, 3, 3, 100):
            hist.observe(value)
        state = hist.to_value()
        assert state["count"] == 5
        assert state["total"] == 107
        assert state["buckets"] == {"0": 1, "1": 1, "4": 2, "128": 1}

    def test_family_labels_get_or_create(self):
        family = Family("f", "counter")
        child = family.labels(0, "get")
        child.inc(3)
        assert family.labels(0, "get") is child
        family.labels(1, "put").inc()
        assert family.to_dict() == {
            "kind": "counter", "values": {"0/get": 3, "1/put": 1}}

    def test_family_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Family("f", "gauge")

    def test_registry_get_or_create_and_kind_clash(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.family("pp.handler_invocations", "counter") \
            is registry.handler_invocations
        with pytest.raises(ValueError):
            registry.family("pp.handler_invocations", "cycles")

    def test_registry_to_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.cycles("t").add(1.5)
        registry.histogram("h").observe(4)
        state = registry.to_dict()
        assert state["counters"]["c"] == 2
        assert state["cycles"]["t"] == 1.5
        assert state["histograms"]["h"]["count"] == 1
        assert set(state["families"]) >= {
            "pp.handler_invocations", "pp.handler_busy_cycles",
            "pp.handler_cost_cycles", "net.sent", "net.received"}


class TestGoldenEquivalence:
    """Metrics ON must not change the simulation: strip the ``metrics``
    block and the result hashes to the very same golden SHA-256 the
    metrics-off matrix records."""

    @pytest.mark.parametrize("combo", sorted(TestGoldenHashes.GOLDEN))
    def test_metrics_on_core_result_matches_golden(self, combo):
        app, kind = combo.split("/")
        spec = experiments.normalize_spec(
            app, kind=kind, regime="large",
            workload_overrides=TestGoldenHashes.FAST_SIZES[app], metrics=True)
        result = experiments._execute(spec)
        assert result.metrics is not None
        state = result.to_dict()
        state.pop("metrics")
        blob = json.dumps(state, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(blob.encode()).hexdigest()
        assert digest == TestGoldenHashes.GOLDEN[combo], (
            f"{combo}: enabling metrics perturbed the simulation")

    def test_metrics_deterministic_across_runs(self, fft_flash):
        spec = experiments.normalize_spec(
            "fft", kind="flash", regime="large",
            workload_overrides=TestGoldenHashes.FAST_SIZES["fft"],
            metrics=True)
        again = experiments._execute(spec)
        assert again.to_json() == fft_flash.to_json()


class TestRegistryContent:
    def test_handler_counts_reconcile_with_aggregate(self, fft_flash):
        fam = fft_flash.metrics["families"]["pp.handler_invocations"]["values"]
        total = sum(n for label, n in fam.items()
                    if not label.endswith("/xfer"))
        assert total == fft_flash.handler_invocations

    def test_pp_occupancy_reconciles(self, fft_flash):
        reconciliation = pp_reconciliation(fft_flash)
        assert reconciliation is not None
        assert abs(reconciliation["pp_occupancy_from_metrics"]
                   - reconciliation["avg_pp_occupancy"]) < 1e-9

    def test_busy_histogram_counts_every_invocation(self, fft_flash):
        fam = fft_flash.metrics["families"]["pp.handler_invocations"]["values"]
        hist = fft_flash.metrics["histograms"]["pp.busy_per_invocation"]
        assert hist["count"] == sum(fam.values())

    def test_message_matrix_totals(self, fft_flash):
        sent = fft_flash.metrics["families"]["net.sent"]["values"]
        received = fft_flash.metrics["families"]["net.received"]["values"]
        assert sum(sent.values()) == fft_flash.network_messages
        # Nothing dropped in a fault-free run.
        assert sum(received.values()) == sum(sent.values())

    def test_harvested_subsystem_counters_present(self, fft_flash):
        metrics = fft_flash.metrics
        families = metrics["families"]
        assert sum(families["dir.transitions"]["values"].values()) > 0
        assert sum(families["mshr"]["values"].values()) > 0
        assert any(label.startswith("pi.in")
                   for label in families["queue.total_puts"]["values"])
        counters = metrics["counters"]
        assert counters["net.messages"] == fft_flash.network_messages
        assert counters["mem.reads"] > 0
        assert counters["pp.invocations"] == fft_flash.handler_invocations

    def test_pointer_allocation_counters(self, fft_flash):
        links = fft_flash.metrics["families"]["dir.links"]["values"]
        allocated = sum(v for k, v in links.items()
                        if k.endswith("/allocated"))
        freed = sum(v for k, v in links.items() if k.endswith("/freed"))
        # Dynamic pointer allocation saw traffic, and frees never exceed
        # allocations.
        assert allocated > 0
        assert 0 <= freed <= allocated


class TestSerialization:
    def test_metrics_off_omits_key(self):
        spec = experiments.normalize_spec(
            "fft", kind="flash", regime="large",
            workload_overrides=TestGoldenHashes.FAST_SIZES["fft"])
        result = experiments._execute(spec)
        assert result.metrics is None
        assert "metrics" not in result.to_dict()

    def test_from_dict_round_trip(self, fft_flash):
        clone = RunResult.from_dict(json.loads(fft_flash.to_json()))
        assert clone.metrics == fft_flash.metrics
        assert clone.to_json() == fft_flash.to_json()

    def test_metrics_survive_disk_cache(self, fft_flash, tmp_path):
        cache = DiskCache(tmp_path)
        spec = experiments.normalize_spec(
            "fft", kind="flash", regime="large",
            workload_overrides=TestGoldenHashes.FAST_SIZES["fft"],
            metrics=True)
        cache.store(spec, fft_flash)
        loaded = cache.load(spec)
        assert loaded is not None
        assert loaded.metrics == fft_flash.metrics

    def test_metrics_survive_farm_wire(self, fft_flash):
        wired = runfarm._wire_result(fft_flash)
        unwired = runfarm._unwire_result(wired)
        assert unwired.metrics == fft_flash.metrics

    def test_metrics_specs_cache_under_distinct_key(self):
        fast = TestGoldenHashes.FAST_SIZES["fft"]
        off = experiments.normalize_spec(
            "fft", kind="flash", regime="large", workload_overrides=fast)
        on = experiments.normalize_spec(
            "fft", kind="flash", regime="large", workload_overrides=fast,
            metrics=True)
        assert off["metrics"] is None and on["metrics"] is True
        from repro.harness.diskcache import canonical_key
        assert canonical_key(off) != canonical_key(on)


class TestFlattenAndDiff:
    def test_flatten_aggregates_node_labels(self, fft_flash):
        machine_wide = flatten_result(fft_flash)
        per_node = flatten_result(fft_flash, per_node=True)
        name = "family/pp.handler_busy_cycles"
        aggregated = sum(v for k, v in machine_wide.items()
                         if k.startswith(name))
        expanded = sum(v for k, v in per_node.items() if k.startswith(name))
        assert aggregated == pytest.approx(expanded)
        assert len([k for k in per_node if k.startswith(name)]) \
            > len([k for k in machine_wide if k.startswith(name)])

    def test_diff_rows_and_breaches(self):
        a = {"x": 10.0, "y": 0.0, "z": 4.0}
        b = {"x": 11.0, "y": 0.0, "z": 4.0, "w": 5.0}
        rows = diff_rows(a, b)
        assert [r[0] for r in rows] == ["w", "x", "z"]  # both-zero y dropped
        by_name = {r[0]: r for r in rows}
        assert by_name["x"][4] == pytest.approx(0.1)
        assert by_name["w"][4] == float("inf")
        assert by_name["z"][3] == 0
        assert breaches(rows, None) == []
        assert {r[0] for r in breaches(rows, 0.05)} == {"w", "x"}
        assert {r[0] for r in breaches(rows, 0.5)} == {"w"}

    def test_render_diff(self):
        rows = diff_rows({"a/one": 1.0, "b/two": 2.0},
                         {"a/one": 3.0, "b/two": 2.0})
        text = render_diff(rows, "demo")
        assert "a/one" in text and "+200.0%" in text
        assert "(2 metric(s) shown)" in text
        changed = render_diff(rows, "demo", changed_only=True)
        assert "b/two" not in changed
        assert "(1 metric(s) shown)" in changed


class TestEnvOpts:
    def test_metrics_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        assert envopts.metrics_from_env() is None
        monkeypatch.setenv("REPRO_METRICS", "off")
        assert envopts.metrics_from_env() is None
        monkeypatch.setenv("REPRO_METRICS", "on")
        assert envopts.metrics_from_env() is True
        monkeypatch.setenv("REPRO_METRICS", "1")
        assert envopts.metrics_from_env() is True
        monkeypatch.setenv("REPRO_METRICS", "sometimes")
        with pytest.raises(ValueError):
            envopts.metrics_from_env()

    def test_watchdog_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WATCHDOG", raising=False)
        assert envopts.watchdog_from_env() is None
        monkeypatch.setenv("REPRO_WATCHDOG", "on")
        assert envopts.watchdog_from_env() is True
        monkeypatch.setenv("REPRO_WATCHDOG", "events=10,time=2.5")
        assert envopts.watchdog_from_env() == {
            "event_budget": 10, "time_budget": 2.5}
        monkeypatch.setenv("REPRO_WATCHDOG", "bogus=1")
        with pytest.raises(ValueError):
            envopts.watchdog_from_env()

    def test_cache_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert envopts.cache_enabled()
        monkeypatch.setenv("REPRO_CACHE", "")
        assert envopts.cache_enabled()  # empty string stays enabled
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert not envopts.cache_enabled()
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert not envopts.cache_enabled()

    def test_jobs_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert envopts.jobs_from_env() == 1
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert envopts.jobs_from_env() == 4
        monkeypatch.setenv("REPRO_JOBS", "-3")
        assert envopts.jobs_from_env() == 1
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert envopts.jobs_from_env() == 1

    def test_normalize_spec_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "on")
        spec = experiments.normalize_spec("fft")
        assert spec["metrics"] is True
        monkeypatch.delenv("REPRO_METRICS")
        assert experiments.normalize_spec("fft")["metrics"] is None

    def test_smoke_overrides(self):
        overrides = envopts.smoke_overrides("fft")
        assert overrides == experiments.SMOKE_SIZES["fft"]
        assert overrides is not experiments.SMOKE_SIZES["fft"]  # a copy
        assert envopts.smoke_overrides("fft", fast=False) is None


class TestDiffCLI:
    def _write(self, result_dict, path):
        with open(path, "w") as fh:
            json.dump(result_dict, fh)
        return str(path)

    def test_diff_identical_files_exit_zero(self, fft_flash, tmp_path,
                                            capsys):
        a = self._write(fft_flash.to_dict(), tmp_path / "a.json")
        b = self._write(fft_flash.to_dict(), tmp_path / "b.json")
        assert harness_main(["diff", a, b, "--threshold", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "run diff" in out and "rel" in out

    def test_diff_flags_synthetic_regression(self, fft_flash, tmp_path,
                                             capsys):
        a = self._write(fft_flash.to_dict(), tmp_path / "a.json")
        worse = fft_flash.to_dict()
        worse["execution_time"] = worse["execution_time"] * 1.5
        worse["metrics"]["counters"]["net.messages"] += 1000
        b = self._write(worse, tmp_path / "b.json")
        # No threshold: report only, exit 0.
        assert harness_main(["diff", a, b]) == 0
        capsys.readouterr()
        # 10% gate: the 50% execution-time regression breaches it.
        assert harness_main(["diff", a, b, "--threshold", "0.1"]) == 1
        captured = capsys.readouterr()
        assert "summary/execution_time" in captured.err
        assert "exceed" in captured.err

    def test_diff_rejects_unknown_token(self, tmp_path):
        with pytest.raises(SystemExit):
            harness_main(["diff", "nonsense", str(tmp_path / "nope.json")])

    def test_summary_json(self, capsys):
        assert harness_main(["summary", "fft", "--fast", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "flash"
        assert payload["execution_time"] > 0

    def test_compare_flash_vs_ideal(self, capsys):
        assert harness_main(["compare", "fft", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fft/flash" in out and "fft/ideal" in out
        assert "family/pp.handler_busy_cycles" in out
        assert "family/net.sent" in out
        assert "PP occupancy from per-handler busy cycles" in out
