"""Deterministic fault injection (``repro.faults``).

The two invariants everything rests on:

* off is free — a machine built without a plan is byte-identical to the
  pre-fault-layer machine (enforced globally by the golden SHA-256 matrix in
  ``tests/test_integration.py``);
* on is deterministic — the same plan + seed against the same workload gives
  byte-identical results, so fault-injected runs cache and farm like clean
  ones.
"""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import flash_config, ideal_config
from repro.faults import DROPPABLE_TYPES, FaultPlan
from repro.harness import diskcache, experiments as exp
from repro.machine import Machine
from repro.protocol.messages import MessageType as MT

TINY_FFT = {"points": 256}
TINY_MP3D = {"particles": 200, "steps": 1}


def tiny_spec(app="fft", faults=None, **kwargs):
    overrides = {"fft": TINY_FFT, "mp3d": TINY_MP3D}[app]
    return exp.normalize_spec(app, n_procs=4, workload_overrides=overrides,
                              faults=faults, **kwargs)


def run_machine(app="fft", faults=None, n_procs=4, **config_changes):
    spec = tiny_spec(app)
    config = flash_config(n_procs=n_procs, cache_size=spec["cache_bytes"],
                          **config_changes)
    workload = exp.app_workload(app, **spec["workload_overrides"])
    machine = Machine(config, faults=faults)
    result = machine.run(workload.build(config))
    return machine, result


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    exp.clear_cache()
    yield
    exp.clear_cache()


class TestFaultPlan:
    def test_round_trip(self):
        plan = FaultPlan(seed=3, delay_rate=0.1, drop_rate=0.05,
                         pp_slow_rate=0.2, squeeze_rate=0.1)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict({"drop_rate": 0.1, "typo_field": 1})

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(delay_rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(drop_rate=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(pp_slow_rate=0.1, pp_slow_factor=0.5)
        with pytest.raises(ConfigError):
            FaultPlan(delay_rate=0.1, delay_cycles=0)

    def test_uniform_and_any_enabled(self):
        plan = FaultPlan.uniform(0.05, seed=9)
        assert plan.any_enabled
        assert plan.delay_rate == plan.drop_rate == 0.05
        assert plan.seed == 9
        assert not FaultPlan().any_enabled

    def test_only_request_types_droppable(self):
        assert MT.REMOTE_GET in DROPPABLE_TYPES
        assert MT.PUT not in DROPPABLE_TYPES
        assert MT.INVAL not in DROPPABLE_TYPES


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        plan = FaultPlan.uniform(0.05, seed=11)
        first = exp._execute(tiny_spec(faults=plan))
        second = exp._execute(tiny_spec(faults=plan))
        assert first.to_json() == second.to_json()
        assert first.fault_counters == second.fault_counters

    def test_different_seed_diverges(self):
        a = exp._execute(tiny_spec(faults=FaultPlan.uniform(0.05, seed=1)))
        b = exp._execute(tiny_spec(faults=FaultPlan.uniform(0.05, seed=2)))
        assert a.to_json() != b.to_json()

    def test_faults_perturb_and_slow_the_run(self):
        clean = exp._execute(tiny_spec())
        faulted = exp._execute(tiny_spec(faults=FaultPlan.uniform(0.05)))
        assert faulted.to_json() != clean.to_json()
        assert faulted.execution_time > clean.execution_time
        counters = faulted.fault_counters
        assert counters["delays"] > 0
        assert counters["drops"] > 0
        assert counters["pp_slowdowns"] > 0
        # Clean runs carry no counters at all.
        assert clean.fault_counters is None


class TestFaultClasses:
    def test_directory_consistent_after_faulted_run(self):
        machine, _result = run_machine(
            "mp3d", faults=FaultPlan.uniform(0.1, seed=5))
        machine.check_directory_invariants()

    def test_certain_drop_completes_via_forced_delivery(self):
        # drop_rate=1 drops every droppable request max_retries times; the
        # bounded-retry rule must then force delivery so the run finishes.
        machine, result = run_machine(
            faults=FaultPlan(drop_rate=1.0, max_retries=2, retry_backoff=4.0))
        counters = machine.fault_injector.counters()
        assert counters["forced_deliveries"] > 0
        assert counters["drops"] > 0
        assert result.execution_time > 0

    def test_pp_slowdown_strictly_increases_execution_time(self):
        _machine, clean = run_machine()
        _machine, slowed = run_machine(
            faults=FaultPlan(pp_slow_rate=1.0, pp_slow_factor=4.0))
        assert slowed.execution_time > clean.execution_time

    def test_queue_squeeze_run_completes_and_restores_capacity(self):
        spec = tiny_spec()
        config = flash_config(n_procs=4, cache_size=spec["cache_bytes"])
        workload = exp.app_workload("fft", **spec["workload_overrides"])
        machine = Machine(config, faults=FaultPlan(
            squeeze_rate=1.0, squeeze_period=256.0, squeeze_duration=128.0))
        from repro.sim import BoundedQueue
        original = {id(q): q.capacity for q in machine.env._queues
                    if isinstance(q, BoundedQueue)}
        result = machine.run(workload.build(config))
        assert machine.fault_injector.counters()["squeezes"] > 0
        assert result.execution_time > 0
        # Every squeezed queue's capacity was restored by run end.
        restored = {id(q): q.capacity for q in machine.env._queues
                    if isinstance(q, BoundedQueue)}
        assert restored == original

    def test_delay_spikes_preserve_completion(self):
        machine, result = run_machine(
            faults=FaultPlan(delay_rate=0.5, delay_cycles=32))
        assert machine.fault_injector.counters()["delays"] > 0
        assert result.execution_time > 0


class TestGating:
    def test_ideal_machine_rejects_faults(self):
        config = ideal_config(n_procs=4, cache_size=64 * 1024)
        with pytest.raises(ConfigError):
            Machine(config, faults=FaultPlan(drop_rate=0.1))

    def test_emulator_backend_rejects_faults(self):
        config = flash_config(n_procs=4, cache_size=64 * 1024).with_changes(
            pp_backend="emulator")
        with pytest.raises(ConfigError):
            Machine(config, faults=FaultPlan(drop_rate=0.1))

    def test_all_zero_plan_attaches_nothing(self):
        config = flash_config(n_procs=4, cache_size=64 * 1024)
        machine = Machine(config, faults=FaultPlan())
        assert machine.fault_injector is None
        assert machine.network.faults is None


class TestHarnessIntegration:
    def test_fault_plan_is_part_of_the_cache_key(self):
        plan = FaultPlan.uniform(0.05)
        clean_key = diskcache.canonical_key(tiny_spec())
        fault_key = diskcache.canonical_key(tiny_spec(faults=plan))
        other_seed = diskcache.canonical_key(
            tiny_spec(faults=FaultPlan.uniform(0.05, seed=1)))
        assert len({clean_key, fault_key, other_seed}) == 3

    def test_faulted_run_caches_and_reloads(self, monkeypatch):
        plan = FaultPlan.uniform(0.05)
        first = exp.run_app("fft", n_procs=4, workload_overrides=TINY_FFT,
                            faults=plan)
        exp.clear_cache()
        monkeypatch.setattr(
            exp, "_execute",
            lambda _spec: pytest.fail("cached faulted run re-simulated"))
        reloaded = exp.run_app("fft", n_procs=4, workload_overrides=TINY_FFT,
                               faults=plan)
        assert reloaded.to_json() == first.to_json()
        # Counters are diagnostic-only: absent from the serialized form.
        assert "fault_counters" not in first.to_dict()

    def test_run_spec_round_trips_faults(self):
        plan = FaultPlan.uniform(0.05)
        spec = tiny_spec(faults=plan)
        result = exp.run_spec(spec)
        direct = exp.run_app("fft", n_procs=4, workload_overrides=TINY_FFT,
                             faults=plan)
        assert result.to_json() == direct.to_json()
