"""Transaction tracing, latency decomposition, and the trace CLI.

The tracer's contract has three legs, each asserted here:

* **Zero observable overhead.** A traced run's core result (minus the
  ``latency_decomposition`` block it alone serializes) is byte-identical to
  an untraced run's; the time-series sampler never perturbs event order.
* **Exact reconciliation.** The traced component totals equal the run's
  aggregate PP and memory occupancies — every ``pp_busy +=`` site and every
  served memory request is mirrored by exactly one charge.
* **Deterministic export.** Two traced runs of the same spec produce
  byte-identical Chrome ``trace_event`` JSON (no wall clock, no
  process-global uids leak into the export).
"""

import json

import pytest

from repro.harness import experiments as exp
from repro.harness.__main__ import main as harness_main
from repro.sim.engine import Environment
from repro.sim.watchdog import diagnose
from repro.stats import timeseries
from repro.stats.report import RunResult
from repro.stats.trace import (
    COMPONENTS, DEFAULT_BUFFER_SPANS, Tracer, parse_nodes, parse_trace_spec,
    render_decomposition, validate_trace_events,
)

TINY_FFT = {"points": 256}
TINY_MP3D = {"particles": 256, "steps": 1}


def tiny_spec(app="fft", kind="flash", **kwargs):
    overrides = dict(TINY_FFT if app == "fft" else TINY_MP3D)
    return exp.normalize_spec(app, kind=kind, n_procs=4,
                              workload_overrides=overrides, **kwargs)


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_WATCHDOG", raising=False)
    exp.clear_cache()
    yield
    exp.clear_cache()


class TestSpecParsing:
    @pytest.mark.parametrize("raw", [None, "", "0", "off", "no", "false"])
    def test_off_values_disable(self, raw):
        assert parse_trace_spec(raw) is None

    @pytest.mark.parametrize("raw", ["1", "on", "yes", "true", "default"])
    def test_on_values_use_defaults(self, raw):
        spec = parse_trace_spec(raw)
        assert spec == {"buf": DEFAULT_BUFFER_SPANS, "nodes": None,
                        "sample": None}

    def test_tuned_spec(self):
        spec = parse_trace_spec("buf=1000,nodes=0+2,sample=64")
        assert spec == {"buf": 1000, "nodes": [0, 2], "sample": 64.0}

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            parse_trace_spec("bogus=1")

    def test_parse_nodes_ranges_and_lists(self):
        assert parse_nodes("0+3+7") == [0, 3, 7]
        assert parse_nodes("0-3") == [0, 1, 2, 3]
        assert parse_nodes("0-2+5") == [0, 1, 2, 5]
        with pytest.raises(ValueError):
            parse_nodes("+")

    def test_env_var_feeds_normalize_spec(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "buf=500")
        spec = tiny_spec()
        assert spec["trace"]["buf"] == 500
        monkeypatch.setenv("REPRO_TRACE", "off")
        assert tiny_spec()["trace"] is None

    def test_trace_key_changes_cache_identity(self):
        from repro.harness.diskcache import canonical_key
        assert canonical_key(tiny_spec()) != \
            canonical_key(tiny_spec(trace=True))


class TestTraceOffInvariance:
    """With tracing off nothing changes; with it on only the decomposition
    block is added to the serialized result."""

    @pytest.mark.parametrize("kind", ["flash", "ideal"])
    def test_traced_core_result_is_byte_identical(self, kind):
        plain = exp._execute(tiny_spec(kind=kind))
        traced, tracer = exp.run_traced(tiny_spec(kind=kind, trace=True))
        assert tracer is not None
        assert plain.latency_decomposition is None
        assert traced.latency_decomposition is not None
        assert plain.critpath is None
        assert traced.critpath is not None
        stripped = traced.to_dict()
        del stripped["latency_decomposition"]
        del stripped["critpath"]
        assert stripped == plain.to_dict()

    def test_sampler_does_not_perturb_the_run(self):
        bare, _ = exp.run_traced(tiny_spec(trace=True))
        sampled, tracer = exp.run_traced(
            tiny_spec(trace=parse_trace_spec("sample=256")))
        assert tracer.timeseries  # the sampler actually ran
        assert sampled.to_json() == bare.to_json()


class TestReconciliation:
    """Traced component totals equal the aggregate occupancy counters."""

    @pytest.mark.parametrize("app,kind", [
        ("fft", "flash"), ("fft", "ideal"), ("mp3d", "flash"),
    ])
    def test_totals_match_aggregates(self, app, kind):
        result, tracer = exp.run_traced(tiny_spec(app=app, kind=kind,
                                                  trace=True))
        elapsed = result.execution_time
        agg_pp = sum(result.pp_occupancy) * elapsed
        agg_mem = sum(result.memory_occupancy) * elapsed
        decomp = result.latency_decomposition
        assert decomp["totals"]["pp"] == pytest.approx(agg_pp, rel=1e-9)
        assert decomp["totals"]["memory"] == pytest.approx(agg_mem, rel=1e-9)

    def test_tracked_untracked_in_flight_partition_totals(self):
        result, _ = exp.run_traced(tiny_spec(trace=True))
        decomp = result.latency_decomposition
        for comp in COMPONENTS:
            tracked = sum(entry["components"][comp]
                          for entry in decomp["classes"].values())
            parts = tracked + decomp["untracked"][comp] + \
                decomp["in_flight"][comp]
            assert parts == pytest.approx(decomp["totals"][comp], rel=1e-9)

    def test_every_transaction_retires_and_is_classified(self):
        result, _ = exp.run_traced(tiny_spec(trace=True))
        decomp = result.latency_decomposition
        txns = decomp["txns"]
        assert txns["started"] == txns["retired"] > 0
        assert txns["in_flight"] == 0
        assert "read_unclassified" not in decomp["classes"]
        retired = sum(e["count"] for e in decomp["classes"].values())
        assert retired == txns["retired"]
        # Histograms partition each class's retirements.
        for entry in decomp["classes"].values():
            assert sum(entry["latency_hist"].values()) == entry["count"]
            assert entry["count"] * 1 <= entry["latency_total"]


class TestDeterminism:
    def test_trace_export_is_byte_identical_across_runs(self):
        spec = tiny_spec(trace=parse_trace_spec("sample=512"))
        first_result, first = exp.run_traced(spec)
        second_result, second = exp.run_traced(spec)
        assert first_result.to_json() == second_result.to_json()
        assert json.dumps(first.to_trace_events(), sort_keys=True) == \
            json.dumps(second.to_trace_events(), sort_keys=True)

    def test_no_raw_uids_in_export(self):
        _, tracer = exp.run_traced(tiny_spec(trace=True))
        for event in tracer.to_trace_events()["traceEvents"]:
            assert "uid" not in event.get("args", {})


class TestRingBufferAndFilters:
    def test_ring_buffer_bounds_spans_but_not_aggregates(self):
        full_result, full = exp.run_traced(tiny_spec(trace=True))
        small_result, small = exp.run_traced(
            tiny_spec(trace=parse_trace_spec("buf=64")))
        assert len(small.spans) == 64
        assert small.spans_dropped > 0
        assert full.spans_dropped == 0
        # Aggregates are exact regardless of how many spans were kept.
        small_decomp = dict(small_result.latency_decomposition)
        full_decomp = dict(full_result.latency_decomposition)
        del small_decomp["spans"], full_decomp["spans"]
        assert small_decomp == full_decomp

    def test_node_filter_limits_spans_not_totals(self):
        all_result, _ = exp.run_traced(tiny_spec(trace=True))
        one_result, one = exp.run_traced(
            tiny_spec(trace=parse_trace_spec("nodes=0")))
        pids = {event["pid"]
                for event in one.to_trace_events()["traceEvents"]
                if event["ph"] == "X"}
        assert pids == {0}
        assert one_result.latency_decomposition["totals"] == \
            all_result.latency_decomposition["totals"]

    def test_export_category_and_node_filters(self):
        _, tracer = exp.run_traced(tiny_spec(trace=True))
        only_pp = tracer.to_trace_events(categories=["pp"], nodes=[1])
        x_events = [e for e in only_pp["traceEvents"] if e["ph"] == "X"]
        assert x_events
        assert {e["cat"] for e in x_events} == {"pp"}
        assert {e["pid"] for e in x_events} == {1}


class TestTimeseries:
    def test_rows_and_hot_windows(self):
        result, tracer = exp.run_traced(
            tiny_spec(trace=parse_trace_spec("sample=256")))
        n = len(result.pp_occupancy)
        assert tracer.timeseries
        for ts, pp_occ, mem_occ, depths in tracer.timeseries:
            assert 0 < ts <= result.execution_time + 256
            assert len(pp_occ) == len(mem_occ) == len(depths) == n
        hot = timeseries.hot_windows(tracer, top=2)
        assert set(hot) == {"pp_occupancy", "memory_occupancy", "queue_depth"}
        for rows in hot.values():
            assert len(rows) <= 2
            values = [row["value"] for row in rows]
            assert values == sorted(values, reverse=True)

    def test_counter_events_in_export(self):
        _, tracer = exp.run_traced(
            tiny_spec(trace=parse_trace_spec("sample=256")))
        counters = [e for e in tracer.to_trace_events()["traceEvents"]
                    if e["ph"] == "C"]
        assert counters
        assert {e["name"] for e in counters} == \
            {"pp_occupancy", "memory_occupancy", "queue_depth"}


class TestExportValidation:
    def test_real_export_validates(self):
        _, tracer = exp.run_traced(tiny_spec(trace=True))
        payload = tracer.to_trace_events()
        assert validate_trace_events(payload) == len(payload["traceEvents"])

    @pytest.mark.parametrize("payload,message", [
        ([], "traceEvents"),
        ({"traceEvents": {}}, "must be a list"),
        ({"traceEvents": [{"ph": "Z", "name": "x", "pid": 0, "tid": 0}]},
         "bad phase"),
        ({"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": "0",
                           "ts": 0, "dur": 1}]}, "non-integer tid"),
        ({"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0,
                           "ts": 0}]}, "dur"),
        ({"traceEvents": [{"ph": "C", "name": "x", "pid": 0, "tid": 0,
                           "ts": 0, "args": {"v": "high"}}]}, "numeric args"),
    ])
    def test_violations_rejected(self, payload, message):
        with pytest.raises(ValueError, match=message):
            validate_trace_events(payload)


class TestSerializationPaths:
    def test_decomposition_survives_json_round_trip(self):
        result, _ = exp.run_traced(tiny_spec(trace=True))
        restored = RunResult.from_json(result.to_json())
        assert restored.latency_decomposition == result.latency_decomposition
        assert restored.to_json() == result.to_json()

    def test_traced_run_caches_under_its_own_key(self, monkeypatch):
        from repro.harness import diskcache
        traced = exp.run_app("fft", n_procs=4, workload_overrides=TINY_FFT,
                             trace=True)
        assert traced.latency_decomposition is not None
        # A fresh "process" must serve the traced entry from disk intact.
        exp.clear_cache()
        monkeypatch.setattr(
            exp, "_execute",
            lambda _spec: pytest.fail("traced cache entry missed"))
        reloaded = exp.run_app("fft", n_procs=4, workload_overrides=TINY_FFT,
                               trace=True)
        assert reloaded.latency_decomposition == traced.latency_decomposition
        assert reloaded.cache_totals == traced.cache_totals

    def test_cache_totals_survive_disk_round_trip(self, monkeypatch):
        plain = exp.run_app("fft", n_procs=4, workload_overrides=TINY_FFT)
        assert plain.cache_totals is not None
        exp.clear_cache()
        monkeypatch.setattr(
            exp, "_execute", lambda _spec: pytest.fail("cache missed"))
        reloaded = exp.run_app("fft", n_procs=4, workload_overrides=TINY_FFT)
        assert reloaded.cache_totals == plain.cache_totals
        # ... without leaking into the canonical result (golden hashes).
        assert "cache_totals" not in reloaded.to_dict()

    def test_runfarm_wire_format_carries_cache_totals(self):
        from repro.harness.runfarm import _unwire_result, _wire_result
        result = exp.run_app("fft", n_procs=4, workload_overrides=TINY_FFT)
        restored = _unwire_result(_wire_result(result))
        assert restored.to_json() == result.to_json()
        assert restored.cache_totals == result.cache_totals
        # Legacy bare payloads (selftest echoes) still parse.
        bare = _unwire_result(result.to_json())
        assert bare.to_json() == result.to_json()


class TestWatchdogIntegration:
    def test_diagnosis_attaches_in_flight_tail(self):
        env = Environment()
        tracer = Tracer()
        tracer.env = env
        env._tracer = tracer
        tracer.txn_issue(2, 0x1980, False, 0.0)
        tracer.txn_issue(0, 0x2000, True, 10.0)
        diagnosis = diagnose(env, "unit test")
        assert [t["node"] for t in diagnosis.trace_tail] == [2, 0]
        oldest = diagnosis.trace_tail[0]
        assert oldest["line"] == "0x1980" and oldest["kind"] == "read"
        assert oldest["tail"] == ["t=0 issue@node2"]
        json.dumps(diagnosis.to_dict())   # artifact format stays JSON-able
        assert "traced txn: node 2 read 0x1980" in diagnosis.render()

    def test_untraced_diagnosis_has_no_tail(self):
        diagnosis = diagnose(Environment(), "unit test")
        assert diagnosis.trace_tail == []


class TestRenderDecomposition:
    def test_table_contents(self):
        result, _ = exp.run_traced(tiny_spec(trace=True))
        text = render_decomposition(result.latency_decomposition, result,
                                    title="tiny fft")
        assert "tiny fft" in text
        assert "remote_clean" in text
        for component in COMPONENTS:
            assert component in text
        assert "reconciliation:" in text
        # The reconciliation line shows identical traced/aggregate values.
        recon = next(line for line in text.splitlines()
                     if line.startswith("reconciliation:"))
        pp_traced = recon.split("PP ")[1].split(" traced")[0]
        pp_agg = recon.split("vs ")[1].split(" aggregate")[0]
        assert pp_traced == pp_agg


class TestTraceCLI:
    def test_summary_and_export(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert harness_main([
            "trace", "fft", "--fast", "--procs", "4", "--summary",
            "--sample", "512", "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "latency decomposition" in out
        assert "reconciliation:" in out
        assert "hottest sampling windows:" in out
        payload = json.loads(out_file.read_text())
        assert validate_trace_events(payload) > 0

    def test_filter_restricts_export(self, tmp_path, capsys):
        out_file = tmp_path / "pp.json"
        assert harness_main([
            "trace", "fft", "--fast", "--procs", "4",
            "--filter", "pp", "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        cats = {e["cat"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert cats == {"pp"}

    def test_profile_json(self, capsys):
        assert harness_main([
            "profile", "fft", "--fast", "--procs", "4", "--json",
            "--top", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["app"] == "fft"
        assert payload["subsystems"]
        assert payload["cache_totals"]["read_misses"] >= 0
        assert abs(sum(payload["subsystems"].values()) -
                   payload["total_seconds"]) < 1e-9
