"""Tests for configuration, the table cost model, stats and sync."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import (
    CacheConfig, HandlerCosts, MachineConfig, ResourceLimits,
    SuboperationLatencies, flash_config, ideal_config,
)
from repro.magic.costmodel import (
    DUAL_ISSUE_FACTOR, SPECIAL_INSTR_FACTOR, TableCostModel,
)
from repro.processor.sync import SyncDomain
from repro.protocol.coherence import Action, Handler, MissClass
from repro.protocol.messages import Message, MessageType as MT
from repro.sim.engine import Environment
from repro.stats.breakdown import CpuTimes, NodeStats, merge_cpu_times
from repro.stats.report import crmt


class TestConfig:
    def test_flash_defaults_match_paper(self):
        config = flash_config(16)
        lat = config.latencies
        assert lat.memory_access == 14
        assert lat.network_transit == 22
        assert lat.jump_table_lookup == 2
        assert lat.mdc_miss_penalty == 29
        assert config.limits.data_buffers == 16
        assert config.limits.memory_controller_queue == 1
        assert config.proc_cache.line_bytes == 128
        assert config.proc_cache.mshrs == 4

    def test_ideal_zeroes_controller_stages(self):
        config = ideal_config(16)
        lat = config.latencies
        assert lat.jump_table_lookup == 0
        assert lat.outbox == 0
        assert lat.pi_outbound == 2
        assert config.limits.incoming_network_queue is None
        assert config.limits.memory_controller_queue is None
        assert not config.magic_caches.enabled

    def test_kind_validation(self):
        with pytest.raises(ConfigError):
            MachineConfig(kind="quantum")

    def test_backend_validation(self):
        with pytest.raises(ConfigError):
            MachineConfig(pp_backend="punchcards")

    def test_with_changes_immutability(self):
        base = flash_config(16)
        variant = base.with_changes(speculative_reads=False)
        assert base.speculative_reads and not variant.speculative_reads

    def test_table_3_1_resource_limits(self):
        limits = ResourceLimits()
        assert limits.incoming_network_queue == 16
        assert limits.outgoing_network_queue == 16
        assert limits.inbox_to_pp_queue == 1
        assert limits.outgoing_pi_queue == 1
        assert limits.incoming_pi_queue == 16


class TestTableCostModel:
    def _action(self, handler, **kw):
        msg = Message(MT.GET, 0, 0, 0, 0)
        return Action(handler, msg, **kw)

    def test_table_3_4_values(self):
        model = TableCostModel(flash_config(16))
        assert model.cost(self._action(Handler.GET_HOME_CLEAN)) == 11
        assert model.cost(self._action(Handler.MISS_FORWARD)) == 3
        assert model.cost(self._action(Handler.GET_HOME_FORWARD)) == 18
        assert model.cost(self._action(Handler.GET_OWNER)) == 38
        assert model.cost(self._action(Handler.REPLY_TO_PROC)) == 2
        assert model.cost(self._action(Handler.WRITEBACK_LOCAL)) == 10
        assert model.cost(self._action(Handler.WRITEBACK_REMOTE)) == 8
        assert model.cost(self._action(Handler.HINT_LOCAL)) == 7

    def test_invalidation_scaling(self):
        model = TableCostModel(flash_config(16))
        base = model.cost(self._action(Handler.GETX_HOME_CLEAN, n_invals=0))
        five = model.cost(self._action(Handler.GETX_HOME_CLEAN, n_invals=5))
        costs = flash_config(16).handler_costs
        assert five - base == 5 * costs.per_invalidation

    def test_hint_position_scaling(self):
        model = TableCostModel(flash_config(16))
        assert model.cost(self._action(Handler.HINT_REMOTE, list_position=1)) == 17
        n = 4
        assert model.cost(
            self._action(Handler.HINT_REMOTE, list_position=n)
        ) == 23 + 14 * n

    def test_ablation_scaling(self):
        config = flash_config(16).with_changes(
            pp_dual_issue=False, pp_special_instructions=False
        )
        slow = TableCostModel(config)
        fast = TableCostModel(flash_config(16))
        a = self._action(Handler.GET_HOME_CLEAN)
        expected = round(11 * DUAL_ISSUE_FACTOR * SPECIAL_INSTR_FACTOR)
        assert slow.cost(a) == expected
        assert slow.cost(a) > fast.cost(a)

    def test_unknown_handler_rejected(self):
        model = TableCostModel(flash_config(16))
        with pytest.raises(KeyError):
            model.cost(self._action("mystery_handler"))


class TestStats:
    def test_cpu_times_total(self):
        t = CpuTimes()
        t.busy, t.read_stall, t.write_stall, t.sync, t.cont = 10, 5, 3, 2, 1
        assert t.total == 21

    def test_merge_cpu_times_averages(self):
        a, b = CpuTimes(), CpuTimes()
        a.busy, b.busy = 10, 30
        merged = merge_cpu_times([a, b])
        assert merged["busy"] == 20

    def test_node_stats_occupancy(self):
        stats = NodeStats()
        stats.pp_busy = 50
        assert stats.pp_occupancy(200) == 0.25

    def test_note_handler_aggregates(self):
        # Per-handler-name counts moved to the metrics registry; NodeStats
        # keeps only the aggregate invocation and cycle totals.
        stats = NodeStats()
        stats.note_handler("x", 5)
        stats.note_handler("x", 5)
        stats.note_handler("y", 2)
        assert stats.handler_invocations == 3
        assert stats.pp_handler_cycles == 12

    def test_crmt_weighting(self):
        distribution = {MissClass.LOCAL_CLEAN: 3, MissClass.REMOTE_CLEAN: 1}
        latencies = {MissClass.LOCAL_CLEAN: 20, MissClass.REMOTE_CLEAN: 100}
        assert crmt(distribution, latencies) == pytest.approx(40)

    def test_crmt_empty(self):
        assert crmt({}, {}) == 0.0


class TestSyncDomain:
    def test_barrier_reusable_ids(self):
        env = Environment()
        sync = SyncDomain(env, 2)
        log = []

        def proc(pid):
            for round_ in range(3):
                yield env.timeout(pid * 5)
                yield sync.barrier(("r", round_))
                log.append((round_, pid, env.now))

        env.process(proc(0))
        env.process(proc(1))
        env.run()
        assert sync.barrier_episodes == 3
        rounds = [r for r, _p, _t in log]
        assert rounds == sorted(rounds)

    def test_lock_fifo_fairness(self):
        env = Environment()
        sync = SyncDomain(env, 3)
        order = []

        def proc(pid):
            yield env.timeout(pid)  # staggered arrival
            yield sync.acquire("m")
            order.append(pid)
            yield env.timeout(10)
            sync.release("m")

        for pid in range(3):
            env.process(proc(pid))
        env.run()
        assert order == [0, 1, 2]

    def test_partial_barrier(self):
        env = Environment()
        sync = SyncDomain(env, 8)

        def proc():
            yield sync.barrier("half", participants=2)
            return env.now

        a = env.process(proc())
        b = env.process(proc())
        env.run()
        assert a.triggered and b.triggered
