"""Property-based tests: the dual-issue scheduler must preserve semantics
for arbitrary programs (random straight-line code and simple loops)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pp.assembler import assemble
from repro.pp.emulator import PPEmulator
from repro.pp.lowering import lower_text
from repro.pp.schedule import schedule_pairs

REGS = [f"r{i}" for i in range(1, 12)]

_alu = st.sampled_from(["add", "sub", "and", "or", "xor"])
_alu_imm = st.sampled_from(["addi", "andi", "ori", "xori", "slti"])
_shift = st.sampled_from(["sll", "srl"])


@st.composite
def straight_line_program(draw):
    """A random dependency-rich straight-line program ending in stores."""
    lines = []
    n = draw(st.integers(min_value=1, max_value=25))
    for _ in range(n):
        choice = draw(st.integers(min_value=0, max_value=4))
        rd = draw(st.sampled_from(REGS))
        rs = draw(st.sampled_from(REGS))
        if choice == 0:
            rt = draw(st.sampled_from(REGS))
            lines.append(f"{draw(_alu)} {rd}, {rs}, {rt}")
        elif choice == 1:
            imm = draw(st.integers(min_value=0, max_value=255))
            lines.append(f"{draw(_alu_imm)} {rd}, {rs}, {imm}")
        elif choice == 2:
            imm = draw(st.integers(min_value=0, max_value=7))
            lines.append(f"{draw(_shift)} {rd}, {rs}, {imm}")
        elif choice == 3:
            pos = draw(st.integers(min_value=0, max_value=12))
            length = draw(st.integers(min_value=1, max_value=8))
            lines.append(f"bfext {rd}, {rs}, {pos}, {length}")
        else:
            pos = draw(st.integers(min_value=0, max_value=12))
            length = draw(st.integers(min_value=1, max_value=8))
            lines.append(f"bfins {rd}, {rs}, {pos}, {length}")
    for i, reg in enumerate(REGS):
        lines.append(f"sw {reg}, {8 * i}(r0)")
    lines.append("done")
    return "\n".join(lines)


def _final_memory(text, dual_issue):
    instructions = assemble(text)
    schedule = schedule_pairs(instructions, dual_issue=dual_issue)
    emu = PPEmulator()
    registers = {i + 1: (i * 2654435761) & 0xFFFF for i in range(11)}
    emu.run(schedule, registers)
    return {addr: emu.peek(addr) for addr in range(0, 8 * len(REGS), 8)}


@given(program=straight_line_program())
@settings(max_examples=120, deadline=None)
def test_dual_issue_schedule_preserves_semantics(program):
    assert _final_memory(program, True) == _final_memory(program, False)


@given(program=straight_line_program())
@settings(max_examples=60, deadline=None)
def test_lowering_preserves_semantics(program):
    lowered = lower_text(program)
    assert _final_memory(program, True) == _final_memory(lowered, True)


@given(program=straight_line_program())
@settings(max_examples=60, deadline=None)
def test_dual_issue_never_slower(program):
    instructions = assemble(program)
    dual = schedule_pairs(instructions, dual_issue=True)
    single = schedule_pairs(instructions, dual_issue=False)
    assert dual.static_pairs <= single.static_pairs


@given(
    iterations=st.integers(min_value=1, max_value=10),
    increment=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=40, deadline=None)
def test_loop_semantics_under_scheduling(iterations, increment):
    program = f"""
        addi r1, r0, {iterations}
        addi r2, r0, 0
    loop:
        addi r2, r2, {increment}
        addi r1, r1, -1
        bne  r1, r0, loop
        sw   r2, 0(r0)
        done
    """
    for dual in (True, False):
        instructions = assemble(program)
        emu = PPEmulator()
        emu.run(schedule_pairs(instructions, dual_issue=dual), {})
        assert emu.peek(0) == iterations * increment
