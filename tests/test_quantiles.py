"""The streaming quantile sketch's documented contracts.

Three legs, each asserted here:

* **Exact small-n path.** Under ``exact_limit`` values, every quantile is
  the exact nearest-rank answer.
* **Bounded error once bucketed.** On adversarial distributions (heavy
  tails spanning many octaves, bimodal with a huge mode gap, constant),
  every reported quantile is within the documented ``relative_error``
  (= 1/subbuckets) of the exact percentile.
* **Merge associativity.** Farm shards combined in any order — including
  orders that cross the exact->bucket spill at different times — produce
  the identical bucket state, count, and extremes (and therefore identical
  quantile answers).  The ``total`` accumulator is the one order-sensitive
  field (float addition is not associative); it agrees to float tolerance.
"""

import json
import math

import pytest

from repro.stats.quantiles import (
    DEFAULT_EXACT_LIMIT, DEFAULT_SUBBUCKETS, QuantileSketch, exact_quantile,
)


def xorshift(seed):
    """Tiny deterministic uint32 stream (no random module in tests that
    assert byte-identity)."""
    state = (seed or 1) & 0xFFFFFFFF

    def next_u32():
        nonlocal state
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        return state

    return next_u32


def uniform01(rng):
    return (rng() + 1) / 4294967296.0


QS = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0)


def heavy_tailed(n, seed=7):
    """Pareto-ish: latencies spanning ~6 orders of magnitude."""
    rng = xorshift(seed)
    return [1.0 / (uniform01(rng) ** 2.5) for _ in range(n)]


def bimodal(n, seed=11):
    """A tight fast mode and a 1000x slower mode (cache hit vs saturation)."""
    rng = xorshift(seed)
    values = []
    for _ in range(n):
        if rng() % 10 < 8:
            values.append(50.0 + (rng() % 1000) / 100.0)
        else:
            values.append(50_000.0 + (rng() % 100000) / 10.0)
    return values


def constant(n, value=137.5):
    return [value] * n


class TestExactPath:
    def test_small_n_is_exact(self):
        sketch = QuantileSketch()
        values = heavy_tailed(DEFAULT_EXACT_LIMIT)
        for v in values:
            sketch.add(v)
        assert sketch.is_exact
        for q in QS:
            assert sketch.quantile(q) == exact_quantile(values, q)
        assert sketch.count == len(values)
        assert sketch.min == min(values)
        assert sketch.max == max(values)
        assert sketch.mean == pytest.approx(sum(values) / len(values))

    def test_exact_quantile_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert exact_quantile(values, 0.0) == 10.0
        assert exact_quantile(values, 0.25) == 10.0
        assert exact_quantile(values, 0.5) == 20.0
        assert exact_quantile(values, 0.51) == 30.0
        assert exact_quantile(values, 1.0) == 40.0
        assert exact_quantile([], 0.5) == 0.0

    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.quantile(0.99) == 0.0
        assert sketch.mean == 0.0
        summary = sketch.summary()
        assert summary["count"] == 0 and summary["max"] == 0.0


class TestBucketedAccuracy:
    @pytest.mark.parametrize("dataset", [
        heavy_tailed(5000),
        bimodal(5000),
        constant(5000),
    ], ids=["heavy_tailed", "bimodal", "constant"])
    def test_within_documented_relative_error(self, dataset):
        sketch = QuantileSketch()
        for v in dataset:
            sketch.add(v)
        assert not sketch.is_exact
        bound = sketch.relative_error
        assert bound == 1.0 / DEFAULT_SUBBUCKETS
        for q in QS:
            exact = exact_quantile(dataset, q)
            estimate = sketch.quantile(q)
            assert abs(estimate - exact) <= bound * exact, (
                f"q={q}: estimate {estimate} vs exact {exact} "
                f"(rel {abs(estimate - exact) / exact:.4f} > {bound})")

    def test_estimates_clamped_to_observed_range(self):
        sketch = QuantileSketch()
        for v in heavy_tailed(4000):
            sketch.add(v)
        for q in QS:
            assert sketch.min <= sketch.quantile(q) <= sketch.max

    def test_subbuckets_tighten_the_bound(self):
        data = heavy_tailed(4000, seed=23)
        coarse = QuantileSketch(subbuckets=8)
        fine = QuantileSketch(subbuckets=128)
        for v in data:
            coarse.add(v)
            fine.add(v)
        assert fine.relative_error < coarse.relative_error
        for q in (0.5, 0.9, 0.99):
            exact = exact_quantile(data, q)
            assert abs(fine.quantile(q) - exact) <= fine.relative_error * exact
            assert abs(coarse.quantile(q) - exact) \
                <= coarse.relative_error * exact

    def test_sub_unit_values_bucket_correctly(self):
        # Negative binary exponents: sub-cycle latencies still honor the
        # bound (frexp octaves go negative).
        rng = xorshift(3)
        data = [uniform01(rng) ** 3 for _ in range(3000)]
        sketch = QuantileSketch()
        for v in data:
            sketch.add(v)
        for q in (0.5, 0.99):
            exact = exact_quantile(data, q)
            assert abs(sketch.quantile(q) - exact) \
                <= sketch.relative_error * exact


class TestMerge:
    def shards(self, sizes, seed=31):
        rng = xorshift(seed)
        shards = []
        for size in sizes:
            sketch = QuantileSketch()
            for _ in range(size):
                sketch.add(1.0 / (uniform01(rng) ** 2))
            shards.append(sketch)
        return shards

    def merged(self, shards, order):
        acc = QuantileSketch()
        for i in order:
            acc.merge(QuantileSketch.from_dict(shards[i].to_dict()))
        return acc

    def test_associative_across_spill_orders(self):
        # Shard sizes chosen so some merge orders spill early and others
        # late; the final bucket state must not care.  ``total`` is float
        # summation (order-sensitive), so it is compared to tolerance and
        # the rest byte-exactly.
        shards = self.shards([300, 300, 200, 600, 50])
        orders = [(0, 1, 2, 3, 4), (4, 3, 2, 1, 0), (3, 0, 4, 1, 2)]
        states = [self.merged(shards, order).to_dict() for order in orders]
        totals = [state.pop("total") for state in states]
        serialized = {json.dumps(s, sort_keys=True) for s in states}
        assert len(serialized) == 1
        for total in totals[1:]:
            assert total == pytest.approx(totals[0], rel=1e-12)

    def test_merge_matches_single_stream(self):
        rng = xorshift(41)
        values = [1.0 / (uniform01(rng) ** 2) for _ in range(2000)]
        single = QuantileSketch()
        for v in values:
            single.add(v)
        left, right = QuantileSketch(), QuantileSketch()
        for v in values[:700]:
            left.add(v)
        for v in values[700:]:
            right.add(v)
        left.merge(right)
        assert left.count == single.count
        assert left.total == pytest.approx(single.total)
        assert left.min == single.min and left.max == single.max
        for q in QS:
            exact = exact_quantile(values, q)
            assert abs(left.quantile(q) - exact) \
                <= left.relative_error * exact

    def test_exact_merge_stays_exact_when_it_fits(self):
        a, b = QuantileSketch(), QuantileSketch()
        for i in range(100):
            a.add(float(i + 1))
            b.add(float(1000 + i))
        a.merge(b)
        assert a.is_exact and a.count == 200
        assert a.quantile(0.5) == 100.0

    def test_mismatched_subbuckets_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch(subbuckets=32).merge(QuantileSketch(subbuckets=64))

    def test_roundtrip_exact_and_bucketed(self):
        for n in (10, 3000):
            sketch = QuantileSketch()
            for v in heavy_tailed(n, seed=n):
                sketch.add(v)
            clone = QuantileSketch.from_dict(
                json.loads(json.dumps(sketch.to_dict())))
            assert clone.to_dict() == sketch.to_dict()
            for q in QS:
                assert clone.quantile(q) == sketch.quantile(q)

    def test_canonical_serialization_ignores_arrival_order(self):
        values = heavy_tailed(50)
        a, b = QuantileSketch(), QuantileSketch()
        for v in values:
            a.add(v)
        for v in reversed(values):
            b.add(v)
        state_a, state_b = a.to_dict(), b.to_dict()
        assert state_a.pop("total") == pytest.approx(state_b.pop("total"),
                                                     rel=1e-12)
        assert state_a == state_b


class TestValidation:
    def test_subbuckets_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            QuantileSketch(subbuckets=24)
        with pytest.raises(ValueError):
            QuantileSketch(subbuckets=0)

    def test_summary_keys(self):
        sketch = QuantileSketch()
        for v in (1.0, 2.0, 3.0):
            sketch.add(v)
        assert set(sketch.summary()) == {
            "count", "mean", "p50", "p90", "p99", "p999", "max"}
