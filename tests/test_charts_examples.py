"""Tests for the text charts and smoke tests for the examples."""

import runpy
import sys

import pytest

from repro.stats.charts import figure_4_1_chart, stacked_bar


class TestStackedBar:
    def test_bar_height_normalized(self):
        breakdown = {"busy": 50.0, "read": 25.0, "sync": 25.0}
        bar, height = stacked_bar(breakdown, scale=1.0, width=40)
        assert height == 100.0
        assert "#" in bar and "=" in bar and "." in bar

    def test_bar_proportions(self):
        breakdown = {"busy": 75.0, "read": 25.0}
        bar, _h = stacked_bar(breakdown, scale=1.0, width=40)
        assert bar.count("#") == 3 * bar.count("=")

    def test_empty_breakdown(self):
        bar, height = stacked_bar({}, scale=1.0)
        assert bar == "" and height == 0.0


class TestFigureChart:
    def test_flash_bar_is_100(self):
        rows = [
            ("fft", "FLASH", {"busy": 120.0, "read": 80.0}, 200.0),
            ("fft", "ideal", {"busy": 120.0, "read": 60.0}, 180.0),
        ]
        text = figure_4_1_chart(rows)
        lines = [l for l in text.splitlines() if l.startswith("fft")]
        assert lines[0].rstrip().endswith("100.0")
        assert lines[1].rstrip().endswith("90.0")

    def test_legend_present(self):
        text = figure_4_1_chart([])
        assert "busy" in text and "sync" in text


class TestExamplesSmoke:
    """Each example must at least import and expose main()."""

    @pytest.mark.parametrize("module", [
        "quickstart", "latency_anatomy", "hotspot_study",
        "protocol_playground", "monitoring", "figure_4_1",
        "message_passing",
    ])
    def test_example_importable(self, module):
        import importlib.util
        import os
        path = os.path.join(os.path.dirname(__file__), "..", "examples",
                            f"{module}.py")
        spec = importlib.util.spec_from_file_location(module, path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        assert callable(mod.main)

    def test_protocol_playground_runs(self, capsys):
        import importlib.util
        import os
        path = os.path.join(os.path.dirname(__file__), "..", "examples",
                            "protocol_playground.py")
        spec = importlib.util.spec_from_file_location("ppg", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        mod.main()
        out = capsys.readouterr().out
        assert "final sharer list" in out
        assert "handler=" in out
