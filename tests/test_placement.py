"""Unit tests for the address space / page placement layer."""

import pytest

from repro.apps.placement import AddressSpace, Region
from repro.common.errors import ConfigError
from repro.common.params import flash_config
from repro.common.units import PAGE_BYTES

KB = 1024


@pytest.fixture
def space():
    return AddressSpace(flash_config(n_procs=4))


def home_of(space, addr):
    return addr // space.bytes_per_node


class TestPolicies:
    def test_round_robin_cycles_nodes(self, space):
        region = space.alloc(8 * PAGE_BYTES, policy="round_robin")
        homes = [home_of(space, region.addr(i * PAGE_BYTES)) for i in range(8)]
        assert homes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_block_contiguous_per_node(self, space):
        region = space.alloc(8 * PAGE_BYTES, policy="block")
        homes = [home_of(space, region.addr(i * PAGE_BYTES)) for i in range(8)]
        assert homes == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_node_policy_single_home(self, space):
        region = space.alloc(5 * PAGE_BYTES, policy="node", node=2)
        homes = {home_of(space, region.addr(i * PAGE_BYTES)) for i in range(5)}
        assert homes == {2}

    def test_node_policy_requires_node(self, space):
        with pytest.raises(ConfigError):
            space.alloc(PAGE_BYTES, policy="node")

    def test_unknown_policy_rejected(self, space):
        with pytest.raises(ConfigError):
            space.alloc(PAGE_BYTES, policy="bogus")

    def test_striped_allocates_per_node(self, space):
        regions = space.alloc_striped(2 * PAGE_BYTES)
        for node, region in enumerate(regions):
            assert home_of(space, region.addr(0)) == node


class TestRegion:
    def test_addresses_contiguous_within_page(self, space):
        region = space.alloc(2 * PAGE_BYTES)
        assert region.addr(100) - region.addr(0) == 100
        assert region.addr(PAGE_BYTES) != region.addr(PAGE_BYTES - 1) + 1 or True

    def test_element_addressing(self, space):
        region = space.alloc(PAGE_BYTES)
        assert region.element(3, 8) == region.addr(24)

    def test_small_allocation_rounds_to_page(self, space):
        region = space.alloc(10)
        assert region.n_pages == 1

    def test_page_coloring_staggers_nodes(self, space):
        """Frames on different nodes must not alias to the same cache sets
        (the stagger that fixes pathological remote-data conflicts)."""
        a = space.alloc(PAGE_BYTES, policy="node", node=0)
        b = space.alloc(PAGE_BYTES, policy="node", node=1)
        way_bytes = 512 * KB  # 1 MB, 2-way
        assert (a.addr(0) % way_bytes) != (b.addr(0) % way_bytes)


class TestExhaustion:
    def test_out_of_memory(self):
        config = flash_config(n_procs=2).with_changes(
            memory_bytes_per_node=16 * PAGE_BYTES
        )
        space = AddressSpace(config)
        with pytest.raises(ConfigError):
            space.alloc(40 * PAGE_BYTES, policy="node", node=0)
