"""Property-based tests (hypothesis) on protocol and machine invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.caches.setassoc import CacheState
from repro.common.params import MagicCacheConfig, flash_config, ideal_config
from repro.machine import Machine
from repro.protocol.directory import Directory

KB = 1024
MB = 1024 * 1024
LINE = 128

_slow = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# -- directory properties ------------------------------------------------------------

@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["add", "remove", "clear", "dirty", "clean"]),
            st.integers(min_value=0, max_value=7),   # node
            st.integers(min_value=0, max_value=3),   # line index
        ),
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_directory_never_corrupts(ops):
    directory = Directory(node_id=0, memory_bytes=1 * MB, n_links=512)
    lines = [i * LINE for i in range(4)]
    for op, node, line_idx in ops:
        line = lines[line_idx]
        entry = directory.entry(line)
        if op == "add" and not entry.dirty:
            directory.add_sharer(line, node)
        elif op == "remove":
            directory.remove_sharer(line, node)
        elif op == "clear":
            directory.clear_sharers(line)
        elif op == "dirty" and entry.head is None and not entry.dirty:
            directory.set_dirty(line, node)
        elif op == "clean" and entry.dirty:
            directory.clear_dirty(line)
        directory.check_invariants(line)


@given(
    nodes=st.lists(st.integers(min_value=0, max_value=15), min_size=1,
                   max_size=16, unique=True)
)
@settings(max_examples=100, deadline=None)
def test_directory_link_accounting_balances(nodes):
    directory = Directory(node_id=0, memory_bytes=1 * MB, n_links=64)
    for node in nodes:
        directory.add_sharer(0, node)
    assert directory.links.used == len(nodes)
    removed, _ = directory.clear_sharers(0)
    assert sorted(removed) == sorted(nodes)
    assert directory.links.used == 0


# -- whole-machine properties ----------------------------------------------------------

def _random_workload(draw_ops, n_procs, mem):
    streams = []
    for p, ops in enumerate(draw_ops):
        stream = []
        for kind, node, line in ops:
            addr = node * mem + line * LINE
            stream.append((kind, addr))
        stream.append(("b", "end"))
        streams.append(stream)
    return streams


machine_ops = st.lists(
    st.lists(
        st.tuples(
            st.sampled_from(["r", "w"]),
            st.integers(min_value=0, max_value=3),   # home node
            st.integers(min_value=0, max_value=5),   # line
        ),
        max_size=25,
    ),
    min_size=4, max_size=4,
)


@given(ops=machine_ops, kind=st.sampled_from(["flash", "ideal"]))
@_slow
def test_machine_quiesces_consistently(ops, kind):
    """After any random 4-processor workload drains: directory invariants
    hold, caches agree with the directory, and no resources are leaked."""
    make = flash_config if kind == "flash" else ideal_config
    config = make(n_procs=4, cache_size=8 * KB).with_changes(
        magic_caches=MagicCacheConfig(enabled=False)
    )
    machine = Machine(config)
    mem = config.memory_bytes_per_node
    streams = _random_workload(ops, 4, mem)
    machine.run([iter(s) for s in streams])
    machine.check_directory_invariants()
    # Single-writer invariant, checked from the cache side.
    for node in range(4):
        home = machine.nodes[node].directory
        for line_addr, entry in home._entries.items():
            holders = [
                p for p in range(4)
                if machine.nodes[p].cpu.cache.state_of(line_addr)
                == CacheState.DIRTY
            ]
            if entry.dirty:
                assert holders == [entry.owner]
            else:
                assert holders == []
                # Every cache holding the line SHARED is on the sharer list.
                sharers = set(home.sharers(line_addr))
                for p in range(4):
                    state = machine.nodes[p].cpu.cache.state_of(line_addr)
                    if state == CacheState.SHARED:
                        assert p in sharers
    if kind == "flash":
        for node in machine.nodes:
            assert node.controller.data_buffers.in_use == 0
            assert len(node.controller.pi_in_q) == 0
            assert len(node.controller.pp_q) == 0


drf_ops = st.lists(
    st.tuples(
        st.lists(  # per-proc write phase: lines the proc owns (disjoint)
            st.integers(min_value=0, max_value=1), max_size=4
        ),
        st.lists(  # per-proc read phase: any line
            st.integers(min_value=0, max_value=7), max_size=6
        ),
    ),
    min_size=4, max_size=4,
)


@given(ops=drf_ops)
@_slow
def test_flash_and_ideal_reach_same_coherence_state(ops):
    """For a *data-race-free* workload (writes to disjoint lines, a barrier,
    then reads), both machines must quiesce with identical directory sharing
    state even though their timings differ.  (Racy workloads may legitimately
    interleave differently.)"""
    states = {}
    for kind in ("flash", "ideal"):
        make = flash_config if kind == "flash" else ideal_config
        config = make(n_procs=4, cache_size=8 * KB).with_changes(
            magic_caches=MagicCacheConfig(enabled=False)
        )
        machine = Machine(config)
        mem = config.memory_bytes_per_node
        streams = []
        for p, (writes, reads) in enumerate(ops):
            stream = [("w", (4 * w + p) * LINE) for w in writes]
            stream.append(("b", "phase"))
            stream += [("r", line * LINE) for line in reads]
            stream.append(("b", "end"))
            streams.append(iter(stream))
        machine.run(streams)
        snapshot = {}
        for node in machine.nodes:
            for line_addr, entry in node.directory._entries.items():
                snapshot[line_addr] = (
                    entry.dirty, entry.owner,
                    frozenset(node.directory.sharers(line_addr)),
                )
        states[kind] = snapshot
    assert states["flash"] == states["ideal"]


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["r", "w"]),
                  st.integers(min_value=0, max_value=63)),
        max_size=80,
    )
)
@settings(max_examples=30, deadline=None)
def test_single_node_time_breakdown_consistent(ops):
    config = flash_config(n_procs=1, cache_size=2 * KB).with_changes(
        magic_caches=MagicCacheConfig(enabled=False)
    )
    machine = Machine(config)
    stream = [(k, line * LINE) for k, line in ops]
    machine.run([iter(stream)])
    times = machine.nodes[0].cpu.times
    assert times.total == pytest.approx(times.finish_time, rel=0.05, abs=2)
