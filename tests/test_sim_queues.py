"""Unit tests for bounded queues and counting resources."""

import pytest

from repro.sim.engine import Environment, SimulationError
from repro.sim.queues import BoundedQueue, CountingResource


@pytest.fixture
def env():
    return Environment()


class TestBoundedQueue:
    def test_put_then_get(self, env):
        q = BoundedQueue(env, 4)

        def proc():
            yield q.put("x")
            item = yield q.get()
            return item

        assert env.run_process(proc()) == "x"

    def test_get_blocks_until_put(self, env):
        q = BoundedQueue(env, 4)

        def getter():
            item = yield q.get()
            return (env.now, item)

        def putter():
            yield env.timeout(5)
            yield q.put("late")

        proc = env.process(getter())
        env.process(putter())
        env.run()
        assert proc.value == (5, "late")

    def test_put_blocks_when_full(self, env):
        q = BoundedQueue(env, 1)

        def putter():
            yield q.put(1)
            yield q.put(2)  # blocks until the getter drains
            return env.now

        def getter():
            yield env.timeout(10)
            yield q.get()

        proc = env.process(putter())
        env.process(getter())
        env.run()
        assert proc.value == 10
        assert q.full_stalls == 1

    def test_unbounded_never_blocks(self, env):
        q = BoundedQueue(env, None)

        def proc():
            for i in range(1000):
                yield q.put(i)
            return env.now

        assert env.run_process(proc()) == 0
        assert len(q) == 1000

    def test_fifo_order(self, env):
        q = BoundedQueue(env, 10)

        def proc():
            for i in range(5):
                yield q.put(i)
            out = []
            for _ in range(5):
                out.append((yield q.get()))
            return out

        assert env.run_process(proc()) == [0, 1, 2, 3, 4]

    def test_fifo_among_blocked_putters(self, env):
        q = BoundedQueue(env, 1)

        def putter(tag):
            yield q.put(tag)

        def drainer():
            out = []
            for _ in range(4):
                yield env.timeout(1)
                out.append((yield q.get()))
            return out

        for tag in "abcd":
            env.process(putter(tag))
        proc = env.process(drainer())
        env.run()
        assert proc.value == ["a", "b", "c", "d"]

    def test_try_put(self, env):
        q = BoundedQueue(env, 1)
        assert q.try_put("a") is True
        assert q.try_put("b") is False
        assert len(q) == 1

    def test_capacity_validation(self, env):
        with pytest.raises(SimulationError):
            BoundedQueue(env, 0)

    def test_peak_depth_tracked(self, env):
        q = BoundedQueue(env, 8)

        def proc():
            for i in range(6):
                yield q.put(i)
            for _ in range(6):
                yield q.get()

        env.run_process(proc())
        assert q.peak_depth == 6

    def test_handoff_to_waiting_getter(self, env):
        """A put with a waiting getter bypasses the buffer entirely."""
        q = BoundedQueue(env, 1)

        def getter():
            return (yield q.get())

        proc = env.process(getter())
        env.run()

        def putter():
            yield q.put("direct")

        env.process(putter())
        env.run()
        assert proc.value == "direct"
        assert len(q) == 0


class TestCountingResource:
    def test_acquire_release(self, env):
        r = CountingResource(env, 2)

        def proc():
            yield r.acquire()
            yield r.acquire()
            assert r.available == 0
            r.release()
            return r.available

        assert env.run_process(proc()) == 1

    def test_acquire_blocks_when_exhausted(self, env):
        r = CountingResource(env, 1)

        def holder():
            yield r.acquire()
            yield env.timeout(20)
            r.release()

        def waiter():
            yield env.timeout(1)
            yield r.acquire()
            return env.now

        env.process(holder())
        proc = env.process(waiter())
        env.run()
        assert proc.value == 20
        assert r.acquire_stalls == 1

    def test_release_idle_rejected(self, env):
        r = CountingResource(env, 1)
        with pytest.raises(SimulationError):
            r.release()

    def test_unbounded_resource(self, env):
        r = CountingResource(env, None)

        def proc():
            for _ in range(100):
                yield r.acquire()
            return r.in_use

        assert env.run_process(proc()) == 100
        assert r.available is None

    def test_peak_tracking(self, env):
        r = CountingResource(env, 4)

        def proc():
            yield r.acquire()
            yield r.acquire()
            yield r.acquire()
            r.release()
            r.release()
            r.release()

        env.run_process(proc())
        assert r.peak_in_use == 3
