"""Round-trip tests for the benchmark output artifacts."""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmarks", "out")


@pytest.mark.skipif(not os.path.isdir(OUT_DIR),
                    reason="benchmarks have not been run yet")
class TestBenchArtifacts:
    def test_core_tables_exist(self):
        for name in ("table_3_2", "table_3_3", "table_3_4"):
            path = os.path.join(OUT_DIR, f"{name}.txt")
            assert os.path.isfile(path), name

    def test_table_3_3_contains_exact_local_clean(self):
        path = os.path.join(OUT_DIR, "table_3_3.txt")
        if not os.path.isfile(path):
            pytest.skip("table 3.3 not generated yet")
        text = open(path).read()
        assert "Local read, clean in memory" in text
        # The exactly-reproduced cells.
        assert "24.00" in text and "27.00" in text

    def test_saved_tables_are_nonempty(self):
        for name in os.listdir(OUT_DIR):
            path = os.path.join(OUT_DIR, name)
            assert os.path.getsize(path) > 50, name
