"""Tests for node/machine assembly and wiring."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import flash_config, ideal_config
from repro.ideal.controller import IdealController
from repro.machine import Machine
from repro.magic.chip import MagicChip
from repro.protocol.coherence import NodeProtocolEngine
from repro.protocol.migratory import MigratoryProtocolEngine

KB = 1024


class TestNodeAssembly:
    def test_flash_node_uses_magic(self):
        machine = Machine(flash_config(2))
        assert isinstance(machine.nodes[0].controller, MagicChip)
        assert machine.nodes[0].mdc is not None

    def test_ideal_node_uses_oracle(self):
        machine = Machine(ideal_config(2))
        assert isinstance(machine.nodes[0].controller, IdealController)
        assert machine.nodes[0].mdc is None

    def test_protocol_selection(self):
        base = Machine(flash_config(2))
        assert type(base.nodes[0].engine) is NodeProtocolEngine
        mig = Machine(flash_config(2).with_changes(protocol="migratory"))
        assert isinstance(mig.nodes[0].engine, MigratoryProtocolEngine)

    def test_transfers_attached_everywhere(self):
        machine = Machine(flash_config(2))
        for node in machine.nodes:
            assert node.controller.transfers is machine.transfers
            assert node.cpu.transfers is machine.transfers

    def test_engine_cache_callbacks_reach_cpu(self):
        machine = Machine(flash_config(2))
        node = machine.nodes[0]
        node.cpu.cache.fill(0, "M")
        assert node.engine._cache_state_of(0) == "M"
        node.engine._cache_downgrade(0)
        assert node.cpu.cache.state_of(0) == "S"
        node.engine._cache_invalidate(0)
        assert node.cpu.cache.state_of(0) == "I"

    def test_directories_partition_address_space(self):
        machine = Machine(flash_config(4))
        mem = machine.config.memory_bytes_per_node
        for node_id, node in enumerate(machine.nodes):
            entry = node.directory.entry(node_id * mem)  # first local line
            assert entry.is_uncached


class TestMachineValidation:
    def test_workload_length_mismatch_rejected(self):
        machine = Machine(flash_config(4))
        with pytest.raises(ConfigError):
            machine.run([iter([("c", 1)])] * 3)

    def test_classmethod_constructors(self):
        assert Machine.flash(2).config.kind == "flash"
        assert Machine.ideal(2).config.kind == "ideal"

    def test_empty_streams_complete_instantly(self):
        machine = Machine(flash_config(2, cache_size=8 * KB))
        result = machine.run([iter([]), iter([])])
        assert result.execution_time == 0
        assert result.references == 0
