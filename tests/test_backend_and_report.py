"""Tests for the emulator PP backend end-to-end, run results, and the
harness reference tables."""

import pytest

from repro.common.params import MagicCacheConfig, flash_config, ideal_config
from repro.harness.tables import (
    PAPER_FIG_4_1_SLOWDOWN, PAPER_TABLE_4_1, PAPER_TABLE_5_1,
)
from repro.machine import Machine, run_pair
from repro.pp.costmodel import EmulatedCostModel
from repro.protocol.coherence import MissClass

KB = 1024
LINE = 128


def sharing_workload(n_procs=4):
    """A small mixed workload touching local and remote lines."""
    def stream(cpu, mem):
        ops = []
        for i in range(12):
            target = (cpu + i) % n_procs
            ops.append(("r", target * mem + i * LINE))
            if i % 3 == 0:
                ops.append(("w", target * mem + i * LINE))
        ops.append(("b", "end"))
        return ops

    def factory(config):
        return [iter(stream(cpu, config.memory_bytes_per_node))
                for cpu in range(n_procs)]

    return factory


class TestEmulatorBackend:
    def test_machine_runs_with_emulated_handlers(self):
        config = flash_config(n_procs=4, cache_size=8 * KB).with_changes(
            pp_backend="emulator",
            magic_caches=MagicCacheConfig(enabled=False),
        )
        model = EmulatedCostModel(config)
        machine = Machine(config, cost_model=model)
        machine.run(sharing_workload()(config))
        machine.check_directory_invariants()
        totals = model.dynamic_totals()
        assert totals["invocations"] > 0
        assert totals["pairs"] > totals["invocations"]

    def test_emulator_and_table_backends_agree_on_protocol(self):
        """Timings differ; final coherence state must not."""
        snapshots = {}
        for backend in ("table", "emulator"):
            config = flash_config(n_procs=4, cache_size=8 * KB).with_changes(
                magic_caches=MagicCacheConfig(enabled=False),
            )
            model = EmulatedCostModel(config) if backend == "emulator" else None
            machine = Machine(config, cost_model=model)
            machine.run(sharing_workload()(config))
            state = {}
            for node in machine.nodes:
                for line, entry in node.directory._entries.items():
                    state[line] = (entry.dirty, entry.owner,
                                   frozenset(node.directory.sharers(line)))
            snapshots[backend] = state
        assert snapshots["table"] == snapshots["emulator"]

    def test_emulator_backend_close_to_table_backend_timing(self):
        times = {}
        for backend in ("table", "emulator"):
            config = flash_config(n_procs=4, cache_size=8 * KB).with_changes(
                magic_caches=MagicCacheConfig(enabled=False),
            )
            model = EmulatedCostModel(config) if backend == "emulator" else None
            machine = Machine(config, cost_model=model)
            result = machine.run(sharing_workload()(config))
            times[backend] = result.execution_time
        ratio = times["emulator"] / times["table"]
        # Independent handler implementations: within 50% of each other.
        assert 0.6 < ratio < 1.6


class TestRunPair:
    def test_run_pair_builds_fresh_machines(self):
        flash_cfg = flash_config(n_procs=4, cache_size=8 * KB)
        ideal_cfg = ideal_config(n_procs=4, cache_size=8 * KB)
        flash, ideal = run_pair(sharing_workload(), flash_cfg, ideal_cfg)
        assert flash.kind == "flash" and ideal.kind == "ideal"
        assert flash.references == ideal.references


class TestRunResultFields:
    @pytest.fixture(scope="class")
    def result(self):
        config = flash_config(n_procs=4, cache_size=8 * KB)
        machine = Machine(config)
        return machine.run(sharing_workload()(config))

    def test_reference_counts(self, result):
        assert result.total_reads == 4 * 12
        assert result.total_writes == 4 * 4

    def test_distribution_sums_to_one(self, result):
        dist = result.read_miss_distribution
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_occupancies_bounded(self, result):
        for occ in result.pp_occupancy + result.memory_occupancy:
            assert 0.0 <= occ <= 1.0

    def test_network_traffic_counted(self, result):
        assert result.network_messages > 0

    def test_summary_keys(self, result):
        summary = result.summary()
        assert summary["kind"] == "flash"
        assert summary["execution_time"] == result.execution_time

    def test_crmt_between_extremes(self, result):
        latencies = {cls: 100.0 for cls in MissClass.ALL}
        assert result.crmt(latencies) == pytest.approx(100.0)


class TestPaperReferenceData:
    def test_table_4_1_distributions_sum_to_100(self):
        # The paper's own rounding makes Barnes sum to 101.0.
        for app, row in PAPER_TABLE_4_1.items():
            assert sum(row[1:6]) == pytest.approx(100.0, abs=1.5), app

    def test_fig_4_1_band(self):
        optimized = [v for k, v in PAPER_FIG_4_1_SLOWDOWN.items()
                     if k != "mp3d"]
        assert all(0.0 < v <= 0.12 for v in optimized)
        assert PAPER_FIG_4_1_SLOWDOWN["mp3d"] == max(
            PAPER_FIG_4_1_SLOWDOWN.values()
        )

    def test_table_5_1_well_formed(self):
        for app, (large, small) in PAPER_TABLE_5_1.items():
            assert 0 <= large[0] <= 100
            if small is not None:
                assert 0 <= small[0] <= 100
