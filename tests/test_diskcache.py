"""Canonical hashing, RunResult serialization, and the on-disk result cache."""

import json

import pytest

from repro.harness import diskcache, experiments as exp
from repro.harness.diskcache import DiskCache, canonical_json, canonical_key
from repro.stats.report import RunResult

TINY_FFT = {"points": 256}


def tiny_run(**kwargs):
    return exp.run_app("fft", n_procs=4, workload_overrides=TINY_FFT, **kwargs)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Each test gets its own cache directory and a clean memo table."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    exp.clear_cache()
    yield
    exp.clear_cache()


class TestCanonicalKey:
    def test_stable_across_dict_ordering(self):
        a = {"x": 1, "y": {"b": 2, "a": [1, 2, {"k": 3}]}}
        b = {"y": {"a": [1, 2, {"k": 3}], "b": 2}, "x": 1}
        assert canonical_key(a) == canonical_key(b)

    def test_distinguishes_values(self):
        assert canonical_key({"x": 1}) != canonical_key({"x": 2})
        assert canonical_key({"x": 1}) != canonical_key({"y": 1})

    def test_handles_unhashable_nested_values(self):
        # Regression: the old memo key built tuple(sorted(overrides.items())),
        # which raised TypeError for dict- or list-valued overrides.
        spec = {"config_overrides": {"limits": {"inbox": 4}, "path": [1, 2]}}
        key = canonical_key(spec)
        assert isinstance(key, str) and len(key) == 64

    def test_tuples_normalize_to_lists(self):
        assert canonical_key({"v": (1, 2)}) == canonical_key({"v": [1, 2]})

    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestMemoKey:
    def test_reordered_overrides_hit_the_memo(self):
        first = exp.run_app(
            "lu", n_procs=4, workload_overrides={"matrix": 32, "block": 8})
        second = exp.run_app(
            "lu", n_procs=4, workload_overrides={"block": 8, "matrix": 32})
        assert first is second  # same memo entry, not a re-run

    def test_normalize_spec_rejects_paper_na_cells(self):
        with pytest.raises(ValueError):
            exp.normalize_spec("lu", regime="small")


class TestRunResultSerialization:
    def test_round_trip_is_lossless_and_byte_identical(self):
        result = tiny_run()
        text = result.to_json()
        restored = RunResult.from_json(text)
        assert restored.to_json() == text
        assert restored.execution_time == result.execution_time
        assert restored.breakdown == result.breakdown
        assert restored.miss_classes == result.miss_classes
        assert restored.summary() == result.summary()
        # Derived metrics recompute identically from restored state.
        assert restored.miss_rate == result.miss_rate
        assert restored.read_miss_distribution == result.read_miss_distribution
        assert [t.to_state() for t in restored.cpu_times] == \
               [t.to_state() for t in result.cpu_times]

    def test_schema_mismatch_rejected(self):
        state = tiny_run().to_dict()
        state["schema"] = 999
        with pytest.raises(ValueError):
            RunResult.from_dict(state)


class TestCacheStatsSnapshot:
    def test_to_dict_from_dict_merge_round_trip(self):
        from repro.caches.setassoc import CacheStats
        from repro.stats.breakdown import merge_cache_stats

        a = CacheStats()
        a.read_hits, a.read_misses = 10, 3
        a.write_hits, a.write_misses = 7, 2
        a.evictions_clean, a.evictions_dirty = 4, 1
        a.invalidations_received = 5
        # to_dict/from_dict is a lossless snapshot.
        restored = CacheStats.from_dict(a.to_dict())
        assert restored.to_dict() == a.to_dict()
        # merge accumulates counter-wise; merge_cache_stats folds many.
        b = CacheStats.from_dict(a.to_dict())
        total = merge_cache_stats([a, b, CacheStats()])
        assert total.to_dict() == {k: 2 * v for k, v in a.to_dict().items()}

    def test_fresh_result_carries_machine_wide_totals(self):
        result = tiny_run()
        totals = result.cache_totals
        assert totals["read_misses"] == result.read_misses
        assert totals["write_misses"] == result.write_misses
        cached_refs = totals["read_hits"] + totals["read_misses"] + \
            totals["write_hits"] + totals["write_misses"]
        # The CPU also counts synchronization references that bypass the
        # data cache, so the cache sees a (large) subset.
        assert 0 < cached_refs <= result.references
        # The snapshot is diagnostic-only: it must not leak into the
        # canonical serialized form (golden hashes depend on this).
        assert "cache_totals" not in result.to_dict()


class TestDiskCache:
    def test_run_app_populates_and_reuses_disk_cache(self, monkeypatch):
        result = tiny_run()
        spec = exp.normalize_spec("fft", n_procs=4, workload_overrides=TINY_FFT)
        assert diskcache.default_cache.entry_path(spec).exists()
        # A "new process" (cleared memo) must load from disk, not re-simulate.
        exp.clear_cache()
        monkeypatch.setattr(
            exp, "_execute",
            lambda _spec: pytest.fail("cache miss: simulation re-ran"))
        reloaded = tiny_run()
        assert reloaded.to_json() == result.to_json()

    def test_cache_off_bypasses_store_and_load(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        result = tiny_run()
        spec = exp.normalize_spec("fft", n_procs=4, workload_overrides=TINY_FFT)
        cache = DiskCache()
        assert not cache.entry_path(spec).exists()
        assert cache.store(spec, result) is None
        assert cache.load(spec) is None

    def test_corrupt_entry_is_a_miss_and_is_evicted(self):
        tiny_run()
        spec = exp.normalize_spec("fft", n_procs=4, workload_overrides=TINY_FFT)
        path = diskcache.default_cache.entry_path(spec)
        path.write_text("{not json")
        assert diskcache.default_cache.load(spec) is None
        # The unusable file is gone, not left to fail every future load.
        assert not path.exists()

    def test_schema_drift_is_a_miss_and_is_evicted(self):
        tiny_run()
        spec = exp.normalize_spec("fft", n_procs=4, workload_overrides=TINY_FFT)
        path = diskcache.default_cache.entry_path(spec)
        payload = json.loads(path.read_text())
        payload["result"]["schema"] = 999
        path.write_text(json.dumps(payload))
        assert diskcache.default_cache.load(spec) is None
        assert not path.exists()

    def test_checksum_tamper_detected_and_evicted(self):
        result = tiny_run()
        spec = exp.normalize_spec("fft", n_procs=4, workload_overrides=TINY_FFT)
        path = diskcache.default_cache.entry_path(spec)
        payload = json.loads(path.read_text())
        assert payload["checksum"] == \
            diskcache._result_checksum(payload["result"])
        # Flip one measured value without updating the checksum: the entry
        # still parses and matches the schema, but must not be served.
        payload["result"]["execution_time"] = result.execution_time + 1.0
        path.write_text(json.dumps(payload))
        assert diskcache.default_cache.load(spec) is None
        assert not path.exists()

    def test_truncated_entry_falls_through_to_live_run(self):
        first = tiny_run()
        spec = exp.normalize_spec("fft", n_procs=4, workload_overrides=TINY_FFT)
        path = diskcache.default_cache.entry_path(spec)
        # A torn write: the file ends mid-JSON.
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        exp.clear_cache()
        rerun = tiny_run()   # must re-simulate, not crash or serve garbage
        assert rerun.to_json() == first.to_json()
        # The live run repopulated the slot with a valid entry.
        assert diskcache.default_cache.load(spec) is not None

    def test_pre_checksum_entries_still_load(self):
        # Forward compatibility with entries written before the checksum
        # field existed: absent checksum means no integrity check, not a miss.
        tiny_run()
        spec = exp.normalize_spec("fft", n_procs=4, workload_overrides=TINY_FFT)
        path = diskcache.default_cache.entry_path(spec)
        payload = json.loads(path.read_text())
        del payload["checksum"]
        path.write_text(json.dumps(payload))
        assert diskcache.default_cache.load(spec) is not None

    def test_entry_path_depends_on_source_fingerprint(self, monkeypatch):
        spec = exp.normalize_spec("fft", n_procs=4, workload_overrides=TINY_FFT)
        before = diskcache.default_cache.entry_path(spec)
        monkeypatch.setattr(
            diskcache, "source_fingerprint", lambda refresh=False: "f" * 64)
        after = diskcache.default_cache.entry_path(spec)
        assert before != after  # a simulator edit invalidates old entries

    def test_clear_empties_the_cache(self):
        tiny_run()
        cache = diskcache.default_cache
        assert cache.size() == 1
        assert cache.clear() == 1
        assert cache.size() == 0
