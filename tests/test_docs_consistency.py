"""Documentation consistency checks: the numbers and names the docs cite
must match the code."""

import os
import re

import pytest

ROOT = os.path.join(os.path.dirname(__file__), "..")


def read(name):
    return open(os.path.join(ROOT, name)).read()


class TestReadme:
    def test_cited_benchmarks_exist(self):
        readme = read("README.md")
        for match in re.findall(r"benchmarks/(test_\w+\.py)", readme):
            assert os.path.isfile(os.path.join(ROOT, "benchmarks", match)), match

    def test_cited_examples_exist(self):
        readme = read("README.md")
        for match in re.findall(r"examples/(\w+\.py)", readme):
            assert os.path.isfile(os.path.join(ROOT, "examples", match)), match

    def test_quickstart_code_runs_conceptually(self):
        # The import line in the README quickstart must be valid.
        from repro import Machine, flash_config, ideal_config  # noqa: F401
        from repro.apps import FFTWorkload  # noqa: F401


class TestDesignDoc:
    def test_design_lists_every_experiment_bench(self):
        design = read("DESIGN.md")
        for name in os.listdir(os.path.join(ROOT, "benchmarks")):
            if name.startswith("test_") and ("table" in name or "fig" in name
                                             or "sec" in name):
                assert name in design or name.replace(".py", "") in design, name

    def test_paper_match_confirmed(self):
        design = read("DESIGN.md")
        assert "the provided text is the expected paper" in design


class TestDocsDir:
    def test_protocol_doc_handler_names_exist(self):
        from repro.protocol.coherence import Handler
        doc = read(os.path.join("docs", "PROTOCOL.md"))
        for token in ("SHARING_WRITEBACK", "OWNERSHIP_TRANSFER", "FORWARD_GET"):
            assert token in doc

    def test_pp_isa_doc_lists_real_opcodes(self):
        from repro.pp.isa import OPCODES
        doc = read(os.path.join("docs", "PP_ISA.md"))
        for opcode in ("bfext", "bfins", "bbs", "ffs", "send", "done"):
            assert opcode in OPCODES
            assert opcode in doc

    def test_workloads_doc_covers_all_apps(self):
        from repro.apps import PAPER_APPS
        doc = read(os.path.join("docs", "WORKLOADS.md"))
        for app in PAPER_APPS:
            assert f"**{app}**" in doc, app
