"""Unit tests for the compute processor model (run on a 1-2 node machine)."""

import pytest

from repro.caches.setassoc import CacheState
from repro.common.errors import WorkloadError
from repro.common.params import flash_config, ideal_config
from repro.machine import Machine

KB = 1024
LINE = 128


def run_single(ops_list, kind="flash", n_procs=1, cache=4 * KB, warm_mdc=True,
               **cfg):
    make = flash_config if kind == "flash" else ideal_config
    config = make(n_procs=n_procs, cache_size=cache, **cfg)
    if warm_mdc:
        # Latency-focused tests disable the MDC so cold protocol-cache misses
        # do not distort single-miss timings.
        from repro.common.params import MagicCacheConfig
        config = config.with_changes(magic_caches=MagicCacheConfig(enabled=False))
    machine = Machine(config)
    streams = [iter(ops_list if cpu == 0 else [("c", 1)])
               for cpu in range(n_procs)]
    result = machine.run(streams)
    return machine, result


class TestBasicExecution:
    def test_compute_only(self):
        machine, result = run_single([("c", 100)])
        times = machine.nodes[0].cpu.times
        assert times.busy == 100
        assert result.execution_time == 100

    def test_read_hit_costs_issue_slot(self):
        machine, _ = run_single([("r", 0), ("r", 0), ("r", 0), ("r", 0)])
        times = machine.nodes[0].cpu.times
        # 1 miss + 3 hits: busy is 4 quarter-cycle issue slots.
        assert times.busy == pytest.approx(1.0)
        assert machine.nodes[0].cpu.cache.stats.read_hits == 3

    def test_read_miss_blocks(self):
        machine, _ = run_single([("r", 0)])
        times = machine.nodes[0].cpu.times
        # Local clean read miss: 27 cycles on FLASH (Table 3.3).
        assert times.read_stall == pytest.approx(27, abs=2)

    def test_multi_ref_op_counts_hits(self):
        machine, _ = run_single([("r", 0, 16)])
        cpu = machine.nodes[0].cpu
        assert cpu.total_reads == 16
        assert cpu.cache.stats.read_misses == 1
        assert cpu.cache.stats.read_hits == 15

    def test_unknown_op_rejected(self):
        with pytest.raises(WorkloadError):
            run_single([("z", 0)])


class TestWrites:
    def test_write_miss_does_not_block(self):
        """Non-blocking writes: compute continues during the miss."""
        machine, result = run_single([("w", 0), ("c", 200)])
        times = machine.nodes[0].cpu.times
        assert times.write_stall < 10  # only miss-detect overheads
        assert times.busy == pytest.approx(200.25)

    def test_write_merge_same_line(self):
        machine, _ = run_single([("w", 0), ("w", 8), ("w", 16)])
        cpu = machine.nodes[0].cpu
        assert cpu.mshrs.total_merges == 2
        assert cpu.cache.stats.write_misses == 1

    def test_write_index_conflict_stalls(self):
        machine, _ = run_single([("w", 0)], cache=4 * KB)
        cache = machine.nodes[0].cpu.cache
        span = LINE * cache.n_sets
        machine2, _ = run_single([("w", 0), ("w", span)], cache=4 * KB)
        times = machine2.nodes[0].cpu.times
        # The second write maps to the same index with a different tag and
        # must stall until the first miss completes (Section 3.2).
        assert times.write_stall > 10

    def test_writes_to_different_lines_overlap(self):
        machine, _ = run_single([("w", 0), ("w", LINE), ("w", 2 * LINE)])
        times = machine.nodes[0].cpu.times
        # Three non-conflicting non-blocking writes overlap; total write
        # stall stays far below 3 serial misses.
        assert times.write_stall < 40

    def test_read_after_write_same_line_waits_for_fill(self):
        machine, _ = run_single([("w", 0), ("r", 8)])
        cpu = machine.nodes[0].cpu
        assert cpu.read_merges == 1
        assert cpu.cache.state_of(0) == CacheState.DIRTY

    def test_write_after_read_merge_upgrades(self):
        """A write merged into an outstanding read still gains ownership."""
        machine, _ = run_single([("r", 0), ("w", 8), ("c", 500)])
        cpu = machine.nodes[0].cpu
        assert cpu.cache.state_of(0) == CacheState.DIRTY


class TestEvictions:
    def test_dirty_eviction_writes_back(self):
        cache_lines = (4 * KB) // LINE
        span = LINE * (4 * KB) // (LINE * 2 * LINE)
        machine, _ = run_single(
            [("w", 0)]
            + [("r", (1 + i) * LINE * 16) for i in range(3)]  # same set
            + [("c", 2000)],
            cache=4 * KB,
        )
        node = machine.nodes[0]
        # The dirty line 0 was evicted; directory no longer shows an owner.
        entry = node.directory.entry(0)
        assert not entry.dirty

    def test_clean_eviction_sends_hint(self):
        machine, _ = run_single(
            [("r", 0)]
            + [("r", (1 + i) * LINE * 16) for i in range(3)]
            + [("c", 2000)],
            cache=4 * KB,
        )
        node = machine.nodes[0]
        assert 0 not in node.directory.sharers(0)


class TestSyncOps:
    def test_barrier_waits_for_all(self):
        config = flash_config(n_procs=2, cache_size=4 * KB)
        machine = Machine(config)
        streams = [
            iter([("b", "x"), ("c", 1)]),
            iter([("c", 500), ("b", "x")]),
        ]
        machine.run(streams)
        times0 = machine.nodes[0].cpu.times
        assert times0.sync == pytest.approx(500, abs=5)

    def test_lock_mutual_exclusion_cost(self):
        config = flash_config(n_procs=2, cache_size=4 * KB)
        machine = Machine(config)
        streams = [
            iter([("l", "m"), ("c", 300), ("u", "m")]),
            iter([("l", "m"), ("c", 10), ("u", "m")]),
        ]
        machine.run(streams)
        total_sync = sum(n.cpu.times.sync for n in machine.nodes)
        assert total_sync == pytest.approx(300, abs=5)


class TestBreakdownConsistency:
    def test_categories_sum_to_finish_time(self):
        ops = [("r", i * LINE) for i in range(20)] + [("c", 50)]
        machine, result = run_single(ops)
        times = machine.nodes[0].cpu.times
        assert times.total == pytest.approx(times.finish_time, rel=0.02)
