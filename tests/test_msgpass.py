"""Tests for block-transfer message passing."""

import pytest

from repro.common.params import MagicCacheConfig, flash_config, ideal_config
from repro.machine import Machine
from repro.msgpass.transfer import TransferDomain

KB = 1024
MB = 1024 * 1024


def build(kind="flash", n_procs=2):
    make = flash_config if kind == "flash" else ideal_config
    config = make(n_procs=n_procs, cache_size=64 * KB).with_changes(
        magic_caches=MagicCacheConfig(enabled=False)
    )
    return Machine(config)


class TestTransferDomain:
    def test_lines_for(self):
        assert TransferDomain.lines_for(1) == 1
        assert TransferDomain.lines_for(128) == 1
        assert TransferDomain.lines_for(129) == 2
        assert TransferDomain.lines_for(4096) == 32

    def test_receive_before_completion_blocks(self):
        from repro.sim.engine import Environment
        env = Environment()
        domain = TransferDomain(env)

        def receiver():
            yield domain.receive(0, 1)
            return env.now

        def completer():
            yield env.timeout(50)
            domain.complete(0, 1)

        proc = env.process(receiver())
        env.process(completer())
        env.run()
        assert proc.value == 50

    def test_completion_before_receive(self):
        from repro.sim.engine import Environment
        env = Environment()
        domain = TransferDomain(env)
        domain.complete(0, 1)

        def receiver():
            yield domain.receive(0, 1)
            return env.now

        assert env.run_process(receiver()) == 0


@pytest.mark.parametrize("kind", ["flash", "ideal"])
class TestEndToEnd:
    def test_send_receive(self, kind):
        machine = build(kind)
        mem = machine.config.memory_bytes_per_node
        streams = [
            iter([("s", 1, 0, 1024), ("c", 10)]),
            iter([("v", 0), ("c", 10)]),
        ]
        result = machine.run(streams)
        assert machine.transfers.transfers_completed == 1
        assert machine.transfers.lines_moved == 8

    def test_receiver_waits_for_payload(self, kind):
        machine = build(kind)
        streams = [
            iter([("c", 500), ("s", 1, 0, 2048)]),
            iter([("v", 0)]),
        ]
        machine.run(streams)
        times = machine.nodes[1].cpu.times
        assert times.sync > 500  # waited for the sender's compute + transfer

    def test_payload_consumes_both_memories(self, kind):
        machine = build(kind)
        streams = [
            iter([("s", 1, 0, 4096)]),
            iter([("c", 1)]),
        ]
        machine.run(streams)
        assert machine.nodes[0].memory.reads >= 32   # source lines
        assert machine.nodes[1].memory.writes >= 32  # destination lines

    def test_multiple_transfers_same_pair(self, kind):
        machine = build(kind)
        streams = [
            iter([("s", 1, 0, 256), ("s", 1, 4096, 256)]),
            iter([("v", 0), ("v", 0)]),
        ]
        machine.run(streams)
        assert machine.transfers.transfers_completed == 2

    def test_bidirectional(self, kind):
        machine = build(kind)
        streams = [
            iter([("s", 1, 0, 512), ("v", 1)]),
            iter([("s", 0, 8192, 512), ("v", 0)]),
        ]
        machine.run(streams)
        assert machine.transfers.transfers_completed == 2


class TestFlexibilityCost:
    def test_flash_transfer_occupies_pp(self):
        machine = build("flash")
        machine.run([iter([("s", 1, 0, 4096)]), iter([("c", 1)])])
        assert machine.nodes[0].stats.pp_busy > 0
        assert machine.nodes[1].stats.pp_busy > 0

    def test_ideal_transfer_zero_occupancy(self):
        machine = build("ideal")
        machine.run([iter([("s", 1, 0, 4096)]), iter([("c", 1)])])
        assert machine.nodes[0].stats.pp_busy == 0

    def test_flash_slower_but_same_payload(self):
        times = {}
        for kind in ("flash", "ideal"):
            machine = build(kind)
            result = machine.run([
                iter([("s", 1, 0, 8192)]),
                iter([("v", 0)]),
            ])
            times[kind] = result.execution_time
            assert machine.transfers.lines_moved == 64
        assert times["flash"] > times["ideal"]

    def test_block_transfer_beats_line_at_a_time(self):
        """Moving 4 KB by block transfer is far cheaper than pulling it
        through the coherence protocol line by line — the argument of
        [WSH94], which the paper builds on."""
        machine_xfer = build("flash")
        result_xfer = machine_xfer.run([
            iter([("s", 1, 0, 4096)]),
            iter([("v", 0)]),
        ])
        machine_lines = build("flash")
        # Node 1 reads 32 remote lines through the protocol.
        result_lines = machine_lines.run([
            iter([("c", 1)]),
            iter([("r", i * 128) for i in range(32)]),
        ])
        assert result_xfer.execution_time < result_lines.execution_time
