"""The open-loop observability layer end to end.

Four contracts:

* **Zero observable overhead.** An openloop run with the latency monitor
  attached is byte-identical (minus the ``load_latency`` block it alone
  serializes) to the same spec without it — the 'q'/'e' markers pace the
  stream either way, the monitor only observes.
* **Exact reconciliation.** The per-request component attributions plus
  the unattributed/open remainders equal the tracer's aggregate per-class
  decomposition, component by component.
* **Curves and knees.** A swept load ladder produces a monotone-in-load
  p99 curve with a detected saturation knee for FLASH and ideal.
* **Surfaces.** flatten_result latency rows, hot_windows series filters
  and percentile columns, the loadlat CLI verb, REPRO_LOADLAT parsing.
"""

import json

import pytest

from repro.harness import experiments as exp
from repro.harness import loadlat as ll
from repro.harness.__main__ import main as harness_main
from repro.harness.envopts import loadlat_from_env
from repro.stats import timeseries
from repro.stats.latency import (
    DEFAULT_EXEMPLARS, DEFAULT_WINDOW_CYCLES, LatencyMonitor,
    parse_loadlat_spec,
)
from repro.stats.metrics import flatten_result
from repro.stats.trace import COMPONENTS
from repro.apps.openloop import OpenLoopWorkload, PROFILES

TINY = dict(requests=32, lines=16, mean_gap=300.0, seed=1)


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_LOADLAT", raising=False)
    monkeypatch.delenv("REPRO_WATCHDOG", raising=False)
    exp.clear_cache()
    yield
    exp.clear_cache()


def openloop_spec(kind="flash", loadlat=None, trace=None, n_procs=8,
                  **workload):
    overrides = dict(TINY)
    overrides.update(workload)
    return exp.normalize_spec("openloop", kind=kind, n_procs=n_procs,
                              workload_overrides=overrides,
                              loadlat=loadlat, trace=trace)


# ---------------------------------------------------------------------------
# The workload itself
# ---------------------------------------------------------------------------


class TestOpenLoopWorkload:
    def test_streams_are_deterministic(self):
        from repro.common.params import flash_config

        config = flash_config(4, cache_size=1 << 20)
        a = [list(s) for s in OpenLoopWorkload(**TINY).build(config)]
        b = [list(s) for s in OpenLoopWorkload(**TINY).build(config)]
        assert a == b
        assert len(a) == 4

    def test_requests_are_bracketed(self):
        from repro.common.params import flash_config

        config = flash_config(2, cache_size=1 << 20)
        for stream in OpenLoopWorkload(**TINY).build(config):
            ops = list(stream)
            opens = [op for op in ops if op[0] == "q"]
            closes = [op for op in ops if op[0] == "e"]
            assert len(opens) == TINY["requests"]
            assert len(closes) == TINY["requests"]
            depth = 0
            for op in ops:
                if op[0] == "q":
                    depth += 1
                    assert op[1] in ("small", "large")
                    assert depth == 1          # no nesting
                elif op[0] == "e":
                    depth -= 1
            assert depth == 0
            assert ops[-1] == ("b", ("openloop", "end"))

    def test_poisson_arrivals_hit_the_offered_load(self):
        wl = OpenLoopWorkload(requests=4000, mean_gap=250.0, seed=3)
        from repro.apps.base import rng_stream
        times = wl._arrivals(rng_stream(99))
        gaps = [t1 - t0 for t0, t1 in zip([0.0] + times[:-1], times)]
        assert min(gaps) > 0
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(250.0, rel=0.1)

    def test_bursty_arrivals_keep_the_same_mean(self):
        wl = OpenLoopWorkload(requests=6000, mean_gap=250.0,
                              arrival="bursty", burst_len=8, burst_factor=8.0,
                              seed=3)
        from repro.apps.base import rng_stream
        times = wl._arrivals(rng_stream(99))
        mean = times[-1] / len(times)
        assert mean == pytest.approx(250.0, rel=0.1)
        # And the within-burst gaps really are much shorter than the mean.
        gaps = sorted(t1 - t0 for t0, t1 in zip(times[:-1], times[1:]))
        assert gaps[len(gaps) // 2] < 100.0

    def test_profiles_and_validation(self):
        assert set(PROFILES) == {"uniform", "fft", "mp3d"}
        assert OpenLoopWorkload(profile="mp3d").write_frac \
            > OpenLoopWorkload(profile="fft").write_frac
        # Explicit kwargs override the preset.
        assert OpenLoopWorkload(profile="mp3d", write_frac=0.0).write_frac == 0.0
        with pytest.raises(ValueError):
            OpenLoopWorkload(profile="nope")
        with pytest.raises(ValueError):
            OpenLoopWorkload(arrival="uniformly")
        with pytest.raises(ValueError):
            OpenLoopWorkload(mean_gap=0.0)


# ---------------------------------------------------------------------------
# Zero overhead + serialization
# ---------------------------------------------------------------------------


class TestZeroOverhead:
    def test_monitor_on_off_identical_modulo_block(self):
        on = exp._execute(openloop_spec(loadlat=True))
        off = exp._execute(openloop_spec())
        d_on, d_off = on.to_dict(), off.to_dict()
        block = d_on.pop("load_latency")
        assert "load_latency" not in d_off
        assert json.dumps(d_on, sort_keys=True) \
            == json.dumps(d_off, sort_keys=True)
        assert block["requests"]["completed"] > 0

    def test_roundtrip_carries_the_block(self):
        from repro.stats.report import RunResult

        result = exp._execute(openloop_spec(loadlat=True))
        clone = RunResult.from_json(result.to_json())
        assert clone.to_json() == result.to_json()
        assert clone.load_latency["overall"]["count"] \
            == result.load_latency["overall"]["count"]

    def test_deterministic_across_runs(self):
        a = exp._execute(openloop_spec(loadlat=True, trace=True))
        b = exp._execute(openloop_spec(loadlat=True, trace=True))
        assert a.to_json() == b.to_json()


# ---------------------------------------------------------------------------
# Reconciliation: exemplars vs the aggregate decomposition
# ---------------------------------------------------------------------------


class TestReconciliation:
    @pytest.fixture(scope="class")
    def traced(self):
        return exp._execute(openloop_spec(loadlat=True, trace=True))

    def test_request_components_reconcile_with_tracer(self, traced):
        snapshot = traced.load_latency
        agg = traced.latency_decomposition
        tracked = {c: 0.0 for c in COMPONENTS}
        for entry in agg["classes"].values():
            for c, v in entry["components"].items():
                tracked[c] += v
        attributed = {c: 0.0 for c in COMPONENTS}
        for entry in snapshot["classes"].values():
            for c, v in entry["components"].items():
                attributed[c] += v
        for c in COMPONENTS:
            attributed[c] += snapshot["unattributed"][c]
            attributed[c] += snapshot["open_components"][c]
        for c in COMPONENTS:
            assert attributed[c] == pytest.approx(tracked[c], rel=1e-9), c
        assert sum(tracked.values()) > 0

    def test_exemplars_decompose_the_tail(self, traced):
        snapshot = traced.load_latency
        assert snapshot["timeline"], "no percentile-timeline windows"
        for window in snapshot["timeline"]:
            exemplars = window["exemplars"]
            assert 1 <= len(exemplars) <= DEFAULT_EXEMPLARS
            # Slowest-first, and every exemplar carries a full component
            # decomposition keyed by the tracer's component set.
            latencies = [e["latency"] for e in exemplars]
            assert latencies == sorted(latencies, reverse=True)
            assert latencies[0] == pytest.approx(window["max"])
            for e in exemplars:
                assert set(e["components"]) == set(COMPONENTS)
                assert e["class"] in snapshot["classes"]

    def test_classes_partition_the_requests(self, traced):
        snapshot = traced.load_latency
        total = sum(entry["count"]
                    for entry in snapshot["classes"].values())
        assert total == snapshot["requests"]["completed"]
        assert snapshot["requests"]["completed"] \
            == snapshot["requests"]["generated"]
        assert snapshot["overall"]["count"] == total


# ---------------------------------------------------------------------------
# The latency monitor in isolation
# ---------------------------------------------------------------------------


class TestLatencyMonitor:
    def test_coordinated_omission_correction(self):
        # Latency counts from the *intended* arrival, not the actual issue.
        monitor = LatencyMonitor()
        monitor.request_begin(0, "small", intended=100.0, actual=150.0)
        monitor.request_end(0, 250.0)
        assert monitor.overall.quantile(0.5) == 150.0   # 250 - 100
        snapshot = monitor.to_dict(1000.0)
        assert snapshot["classes"]["small"]["client_delay"] == 50.0

    def test_unmatched_end_ignored(self):
        monitor = LatencyMonitor()
        monitor.request_end(3, 50.0)
        assert monitor.completed == 0

    def test_component_attribution_windows(self):
        monitor = LatencyMonitor(window=100.0, exemplars=2)
        monitor.txn_components(0, {"pp": 5.0})      # no open request
        assert monitor.unattributed["pp"] == 5.0
        monitor.request_begin(0, "small", 0.0, 0.0)
        monitor.txn_components(0, {"pp": 7.0, "memory": 2.0})
        monitor.request_end(0, 42.0)
        monitor.request_begin(1, "small", 10.0, 10.0)
        monitor.request_end(1, 250.0)
        snapshot = monitor.to_dict(300.0)
        assert snapshot["classes"]["small"]["components"]["pp"] == 7.0
        assert len(snapshot["timeline"]) == 2
        assert snapshot["timeline"][0]["t0"] == 0.0
        assert snapshot["timeline"][1]["t0"] == 200.0
        assert snapshot["throughput"] == pytest.approx(2 / 300.0)

    def test_from_spec(self):
        assert LatencyMonitor.from_spec(True).window == DEFAULT_WINDOW_CYCLES
        custom = LatencyMonitor.from_spec({"window": 5.0, "exemplars": 9})
        assert custom.window == 5.0
        assert custom.exemplars_per_window == 9


# ---------------------------------------------------------------------------
# Knee detection + the sweep
# ---------------------------------------------------------------------------


class TestKnee:
    def test_detect_knee_interpolates(self):
        loads = [1.0, 2.0, 4.0, 8.0]
        p99s = [100.0, 110.0, 300.0, 900.0]
        knee = ll.detect_knee(loads, p99s, factor=2.0)
        assert knee is not None
        assert knee["index"] == 2
        assert knee["threshold_p99"] == 200.0
        # Linear interpolation between (2.0, 110) and (4.0, 300).
        expect = 2.0 + (200.0 - 110.0) / (300.0 - 110.0) * 2.0
        assert knee["load"] == pytest.approx(expect)

    def test_detect_knee_none_under_saturation(self):
        assert ll.detect_knee([1.0, 2.0, 4.0], [100.0, 120.0, 150.0]) is None
        assert ll.detect_knee([1.0], [100.0]) is None
        assert ll.detect_knee([1.0, 2.0], [0.0, 50.0]) is None

    def test_gap_ladder_descends_geometrically(self):
        gaps = ll.gap_ladder(60.0, 960.0, 5)
        assert gaps[0] == 960.0
        assert gaps[-1] == pytest.approx(60.0)
        ratios = [g1 / g0 for g0, g1 in zip(gaps, gaps[1:])]
        for r in ratios[1:]:
            assert r == pytest.approx(ratios[0])

    def test_attribute_knee(self):
        points = [
            {"component_shares": {"queue": 0.1, "pp": 0.4,
                                  "memory": 0.3, "network": 0.2}},
            {"component_shares": {"queue": 0.4, "pp": 0.3,
                                  "memory": 0.2, "network": 0.1}},
        ]
        knee = {"index": 1}
        assert ll.attribute_knee(points, knee) == "queue"
        assert ll.attribute_knee(points, None) is None


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return ll.sweep_curves(
            "fft", ["flash", "ideal"], gaps=[800.0, 150.0, 45.0],
            requests=32, n_procs=8, seed=1, factor=2.0)

    def test_monotone_p99_with_knee_both_kinds(self, sweep):
        for kind in ("flash", "ideal"):
            curve = sweep["curves"][kind]
            points = curve["points"]
            assert len(points) == 3
            loads = [p["offered_per_node"] for p in points]
            p99s = [p["p99"] for p in points]
            assert loads == sorted(loads)
            assert p99s == sorted(p99s), f"{kind} p99 not monotone: {p99s}"
            assert curve["knee"] is not None, f"no {kind} knee"
            assert curve["knee"]["load"] <= loads[-1]
            assert curve["knee_component"] in COMPONENTS

    def test_flash_tail_is_heavier(self, sweep):
        # The flexibility cost: under heavy open load FLASH's occupancy
        # bends the tail harder than the ideal machine's.
        flash = sweep["curves"]["flash"]["points"][-1]["p99"]
        ideal = sweep["curves"]["ideal"]["points"][-1]["p99"]
        assert flash > ideal

    def test_render_curves(self, sweep):
        text = ll.render_curves(sweep)
        assert "saturation knee" in text
        assert "p99" in text
        assert "flash" in text and "ideal" in text

    def test_sweep_json_serializable(self, sweep):
        json.dumps(sweep)


# ---------------------------------------------------------------------------
# Surfaces: flatten_result, hot_windows, CLI, env knob
# ---------------------------------------------------------------------------


class TestSurfaces:
    def test_flatten_result_latency_rows(self):
        result = exp._execute(openloop_spec(loadlat=True))
        flat = flatten_result(result)
        assert flat["latency/overall/p99"] > flat["latency/overall/p50"] > 0
        assert flat["latency/completed"] == 256   # 32 reqs x 8 nodes
        assert flat["latency/throughput"] > 0
        assert any(key.startswith("latency/small/") for key in flat)

    def test_hot_windows_series_and_percentiles(self):
        class FakeTracer:
            timeseries = [
                (100.0, [0.1, 0.9, 0.5, 0.3], [0.2, 0.0, 0.1, 0.4], [1, 0, 2, 5]),
                (200.0, [0.0, 0.2, 0.8, 0.1], [0.6, 0.3, 0.0, 0.0], [0, 7, 1, 0]),
            ]

        tracer = FakeTracer()
        # Default call: unchanged shape (the test_trace contract).
        hot = timeseries.hot_windows(tracer)
        assert set(hot) == {"pp_occupancy", "memory_occupancy", "queue_depth"}
        # Series filter.
        only = timeseries.hot_windows(tracer, top=2, series="queue_depth")
        assert set(only) == {"queue_depth"}
        assert [r["value"] for r in only["queue_depth"]] == [7, 5]
        with pytest.raises(ValueError):
            timeseries.hot_windows(tracer, series="no_such_series")
        # Percentile columns: across-node quantiles within the row's window.
        ranked = timeseries.hot_windows(tracer, top=1,
                                        series=["pp_occupancy"],
                                        percentiles=(0.5, 0.99))
        row = ranked["pp_occupancy"][0]
        assert row["value"] == 0.9 and row["t"] == 100.0
        assert row["p50"] == 0.3          # nearest-rank of [0.1,0.9,0.5,0.3]
        assert row["p99"] == 0.9

    def test_cli_loadlat_json(self, capsys):
        rc = harness_main([
            "-j", "1", "loadlat", "fft", "--fast", "--points", "2",
            "--max-gap", "600", "--min-gap", "80",
            "--requests", "24", "--procs", "8", "--json"])
        assert rc == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["profile"] == "fft"
        assert set(payload["curves"]) == {"flash", "ideal"}
        for curve in payload["curves"].values():
            assert len(curve["points"]) == 2

    def test_cli_loadlat_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "curve.json"
        rc = harness_main([
            "-j", "1", "loadlat", "fft", "--fast", "--points", "2",
            "--max-gap", "600", "--min-gap", "80",
            "--requests", "24", "--procs", "8",
            "--no-trace", "--out", str(out_file)])
        assert rc == 0
        payload = json.loads(out_file.read_text())
        assert payload["curves"]["flash"]["points"]
        text = capsys.readouterr().out
        assert "p99" in text     # the table still prints

    def test_compare_openloop_shows_latency_rows(self, capsys):
        rc = harness_main(["-j", "1", "compare", "openloop",
                           "--vs", "ideal", "--fast", "--procs", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency/overall/p99" in out

    def test_parse_loadlat_spec(self):
        assert parse_loadlat_spec(None) is None
        assert parse_loadlat_spec("off") is None
        assert parse_loadlat_spec("on") \
            == {"window": DEFAULT_WINDOW_CYCLES,
                "exemplars": DEFAULT_EXEMPLARS}
        assert parse_loadlat_spec("window=1000,exemplars=5") \
            == {"window": 1000.0, "exemplars": 5}
        with pytest.raises(ValueError):
            parse_loadlat_spec("windows=1000")

    def test_loadlat_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOADLAT", raising=False)
        assert loadlat_from_env() is None
        monkeypatch.setenv("REPRO_LOADLAT", "on")
        assert loadlat_from_env() == {"window": DEFAULT_WINDOW_CYCLES,
                                      "exemplars": DEFAULT_EXEMPLARS}
        monkeypatch.setenv("REPRO_LOADLAT", "window=2e4")
        assert loadlat_from_env()["window"] == 2e4

    def test_normalize_spec_carries_loadlat(self):
        spec = openloop_spec(loadlat=True)
        assert spec["loadlat"] == {"window": DEFAULT_WINDOW_CYCLES,
                                   "exemplars": DEFAULT_EXEMPLARS}
        assert openloop_spec()["loadlat"] is None
        custom = exp.normalize_spec(
            "openloop", n_procs=4, workload_overrides=dict(TINY),
            loadlat={"window": 7.0, "exemplars": 1})
        assert custom["loadlat"]["window"] == 7.0
