"""Critical-path extraction, handler-cost scaling, and causal profiling.

Three contracts:

* **Exact reconciliation.** The extracted critical-path length equals
  execution time *exactly* (``==``, not approx) on every app/kind combo of
  the golden matrix — the walk tiles the run with contiguous pieces and
  terminates at exactly 0.0, so this is structural, not numeric luck.
* **Gated scaling hooks.** ``handler_scale`` unset leaves every cost and
  every serialized result byte-identical; set, it scales exactly the named
  handler and is rejected on the emulator backend.
* **Causal profiling.** ``run_whatif`` on the fast fft shape produces
  experiments whose measured speedup confirms the critical-path prediction
  (and the predicted lever ranking) within tolerance.
"""

import json

import pytest

from repro.common.errors import ConfigError
from repro.common.params import flash_config
from repro.harness import experiments as exp
from repro.harness.__main__ import main as harness_main
from repro.harness.whatif import render_whatif, run_whatif
from repro.magic.costmodel import TableCostModel
from repro.protocol.coherence import Action, Handler
from repro.stats.critpath import BUCKETS, render_critpath
from repro.stats.metrics import flatten_result
from repro.stats.report import RunResult

MATRIX = [(app, kind) for app in exp.APP_ORDER
          for kind in ("flash", "ideal")]


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_WATCHDOG", raising=False)
    exp.clear_cache()
    yield
    exp.clear_cache()


def traced(app, kind, **kwargs):
    return exp.run_app(app, kind=kind,
                       workload_overrides=exp.SMOKE_SIZES[app],
                       trace=True, **kwargs)


class TestExactReconciliation:
    """Critical-path length == execution time on the whole golden matrix."""

    @pytest.mark.parametrize("app,kind", MATRIX)
    def test_length_equals_execution_time_exactly(self, app, kind):
        result = traced(app, kind)
        cp = result.critpath
        assert cp is not None
        # Exact, by construction: the backward walk tiles (0, T].
        assert cp["length"] == result.execution_time
        # The float cross-check: summed pieces telescope back to T.
        assert cp["pieces_sum"] == pytest.approx(result.execution_time,
                                                 rel=1e-9)
        buckets_sum = sum(cp["buckets"][b] for b in BUCKETS)
        assert buckets_sum == pytest.approx(cp["pieces_sum"], rel=1e-9)
        assert all(v >= 0.0 for v in cp["buckets"].values())
        assert all(v >= 0.0 for v in cp["classes"].values())
        assert cp["pieces"] > 0

    def test_flash_has_causal_levers_ideal_does_not(self):
        flash = traced("fft", "flash")
        ideal = traced("fft", "ideal")
        assert flash.critpath["levers"]
        for handler in flash.critpath["levers"]:
            entry = flash.critpath["handlers"][handler]
            assert entry["critical_cycles"] > 0.0
            assert entry["critical_cycles"] <= entry["total_cycles"] + 1e-9
            assert 0.0 < entry["share"] <= 1.0
        # The ideal machine's handlers are zero-width: nothing to scale.
        assert ideal.critpath["levers"] == []
        assert ideal.critpath["handlers"] == {}

    def test_slack_histograms_cover_handler_transactions(self):
        cp = traced("fft", "flash").critpath
        assert cp["slack"]
        for handler, entry in cp["slack"].items():
            assert entry["count"] == sum(entry["hist"].values())
            assert entry["mean"] >= 0.0

    def test_critpath_survives_json_round_trip(self):
        result = traced("fft", "flash")
        clone = RunResult.from_json(result.to_json())
        assert clone.critpath == result.critpath


class TestFlattenedRows:
    def test_flatten_emits_critpath_rows(self):
        flat = flatten_result(traced("fft", "flash"))
        assert flat["critpath/length"] > 0.0
        assert "critpath/bucket/cpu" in flat
        assert any(key.startswith("critpath/class/") for key in flat)
        assert any(key.startswith("critpath/handler/")
                   and key.endswith("/critical_cycles") for key in flat)

    def test_untraced_result_has_no_critpath_rows(self):
        result = exp.run_app("fft",
                             workload_overrides=exp.SMOKE_SIZES["fft"])
        assert result.critpath is None
        flat = flatten_result(result)
        assert not any(key.startswith("critpath/") for key in flat)


class TestHandlerScale:
    """The causal-profiling knob: byte-identical off, exact scaling on."""

    def test_unset_and_empty_are_byte_identical(self):
        base = exp.run_app("fft", workload_overrides=exp.SMOKE_SIZES["fft"])
        empty = exp.run_app("fft", workload_overrides=exp.SMOKE_SIZES["fft"],
                            config_overrides={"handler_scale": {}})
        assert empty.to_json() == base.to_json()

    def test_scaling_changes_execution_time(self):
        base = exp.run_app("fft", workload_overrides=exp.SMOKE_SIZES["fft"])
        slowed = exp.run_app(
            "fft", workload_overrides=exp.SMOKE_SIZES["fft"],
            config_overrides={
                "handler_scale": {Handler.GET_HOME_CLEAN: 2.0}})
        assert slowed.execution_time > base.execution_time

    def test_table_model_scales_exactly_the_named_handler(self):
        config = flash_config(4)
        plain = TableCostModel(config)
        scaled = TableCostModel(config.with_changes(
            handler_scale={Handler.GET_HOME_CLEAN: 2.0}))
        action = Action(Handler.GET_HOME_CLEAN, None)
        assert scaled.cost(action) == 2 * plain.cost(action)
        other = Action(Handler.MISS_FORWARD, None)
        assert scaled.cost(other) == plain.cost(other)
        # Dynamic (non-flat) handlers scale too.
        upgrade = Action(Handler.UPGRADE_HOME, None, n_invals=3)
        scaled_up = TableCostModel(config.with_changes(
            handler_scale={Handler.UPGRADE_HOME: 2.0}))
        assert scaled_up.cost(upgrade) == 2 * plain.cost(upgrade)

    def test_emulator_backend_rejects_handler_scale(self):
        with pytest.raises(ConfigError, match="handler_scale"):
            flash_config(4, pp_backend="emulator",
                         handler_scale={Handler.GET_HOME_CLEAN: 2.0})

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            flash_config(4, handler_scale={Handler.GET_HOME_CLEAN: 0.0})

    def test_scale_is_part_of_the_cache_key(self):
        from repro.harness.diskcache import canonical_key
        plain = exp.normalize_spec(
            "fft", workload_overrides=exp.SMOKE_SIZES["fft"])
        scaled = exp.normalize_spec(
            "fft", workload_overrides=exp.SMOKE_SIZES["fft"],
            config_overrides={"handler_scale": {Handler.GET_OWNER: 2.0}})
        assert canonical_key(plain) != canonical_key(scaled)


class TestWhatif:
    """Measured vs predicted speedup on the fast fft shape."""

    def test_prediction_within_tolerance(self):
        report = run_whatif("fft",
                            workload_overrides=exp.SMOKE_SIZES["fft"],
                            top=2, scales=(2.0,))
        assert len(report["experiments"]) == 2
        assert report["confirmed"] >= 1
        # The top predicted lever's measured slowdown is real and its
        # measured ranking confirms the predicted slack ranking.
        top = report["predicted_ranking"][0]
        top_exp = next(e for e in report["experiments"]
                       if e["handler"] == top)
        assert top_exp["measured_delta"] < 0.0   # doubling costs slows it
        assert top_exp["predicted_delta"] < 0.0
        assert report["ranking_confirmed"]

    def test_prediction_beats_naive_occupancy_account(self):
        report = run_whatif("fft",
                            workload_overrides=exp.SMOKE_SIZES["fft"],
                            top=1, scales=(2.0,))
        exp_rec = report["experiments"][0]
        measured = exp_rec["measured_delta"]
        assert abs(exp_rec["predicted_delta"] - measured) < \
            abs(exp_rec["naive_delta"] - measured)

    def test_ideal_kind_rejected(self):
        with pytest.raises(ValueError, match="ideal"):
            run_whatif("fft", kind="ideal",
                       workload_overrides=exp.SMOKE_SIZES["fft"])

    def test_unknown_handler_rejected(self):
        with pytest.raises(ValueError, match="unknown handler"):
            run_whatif("fft", workload_overrides=exp.SMOKE_SIZES["fft"],
                       handlers=["no_such_handler"], scales=(2.0,))

    def test_render_whatif(self):
        report = run_whatif("fft",
                            workload_overrides=exp.SMOKE_SIZES["fft"],
                            top=1, scales=(2.0,))
        text = render_whatif(report)
        assert "causal profile: fft/flash" in text
        assert "predicted" in text and "measured" in text


class TestCli:
    def test_whatif_cli_json_out(self, tmp_path, capsys):
        out = tmp_path / "whatif.json"
        rc = harness_main(["whatif", "fft", "--fast", "--top", "1",
                           "--scales", "2.0", "--json", "--out", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["experiments"]
        assert payload["baseline_execution_time"] > 0
        printed = json.loads(capsys.readouterr().out)
        assert printed == payload

    def test_trace_summary_shows_criticality(self, capsys):
        rc = harness_main(["trace", "fft", "--fast", "--summary"])
        assert rc == 0
        output = capsys.readouterr().out
        assert "critical path" in output
        assert "causal levers" in output
        assert "crit share" in output

    def test_compare_shows_criticality_delta(self, capsys):
        rc = harness_main(["compare", "fft", "--vs", "ideal", "--fast"])
        assert rc == 0
        output = capsys.readouterr().out
        assert "critpath/length" in output

    def test_render_critpath_smoke(self):
        cp = traced("fft", "flash").critpath
        text = render_critpath(cp)
        assert "length" in text
        assert "top-" in text and "causal levers" in text
