"""Tests for the protocol handlers and the emulated cost model."""

import pytest

from repro.common.params import flash_config
from repro.pp.assembler import assemble
from repro.pp.costmodel import (
    CompiledHandlers, EmulatedCostModel, SyntheticState,
    _HEADER_ADDR, _LINK_BASE, _REQUESTER,
)
from repro.pp.emulator import PPEmulator
from repro.pp.handlers.library import HANDLER_SOURCE
from repro.protocol.coherence import Action, Handler
from repro.protocol.messages import Message, MessageType as MT


def emulate(name, state=None):
    handlers = CompiledHandlers()
    emu = PPEmulator()
    regs = (state or SyntheticState()).install(emu)
    stats = emu.run(handlers.schedules[name], regs)
    return emu, stats


def action(handler, **kw):
    msg = Message(MT.GET, 0x40000, _REQUESTER, 1, _REQUESTER)
    return Action(handler, msg, **kw)


class TestHandlerLibrary:
    def test_all_engine_handlers_have_code(self):
        engine_handlers = [
            v for k, v in vars(Handler).items()
            if not k.startswith("_") and isinstance(v, str)
        ]
        for name in engine_handlers:
            if name == Handler.DEFERRED:
                continue  # has code too, but keep the assertion uniform
            if name == Handler.RETRY_BOUNCE:
                # Fault-injection only (repro.faults): priced by the table
                # cost model; Machine rejects fault plans under the emulator
                # backend precisely because no PP assembly exists for it.
                continue
            assert name in HANDLER_SOURCE, f"missing handler {name}"

    def test_all_handlers_assemble_and_terminate(self):
        handlers = CompiledHandlers()
        for name, schedule in handlers.schedules.items():
            assert schedule.static_pairs > 0

    def test_static_code_size_reasonable(self):
        handlers = CompiledHandlers()
        # The paper's full protocol is 14.8 KB; our reduced handler set is
        # smaller but must be in the kilobyte range, not trivial.
        assert 1024 < handlers.static_bytes < 32 * 1024


class TestHandlerBehaviour:
    def test_get_home_clean_adds_sharer_and_replies(self):
        emu, stats = emulate("get_home_clean")
        header = emu.peek(_HEADER_ADDR)
        assert header >> 16 != 0  # a sharer link was attached
        assert len(stats.sends) == 1
        dest = stats.sends[0][0] & 0xFF
        assert dest == _REQUESTER

    def test_get_home_clean_reply_unit_local_vs_remote(self):
        # Remote requester (2 != node 1): reply goes to the NI (unit 2).
        _, stats = emulate("get_home_clean")
        assert stats.sends[0][1] == 2

    def test_getx_sends_one_inval_per_sharer(self):
        for n in (0, 1, 3, 6):
            emu, stats = emulate("getx_home_clean",
                                 SyntheticState(n_sharers=n))
            invals = [s for s in stats.sends if (s[0] >> 8) & 0xFF == 12]
            assert len(invals) == n
            # Header ends dirty with owner = requester.
            header = emu.peek(_HEADER_ADDR)
            assert header & 1
            assert (header >> 8) & 0xFF == _REQUESTER

    def test_getx_skips_requester_on_list(self):
        emu, stats = emulate(
            "getx_home_clean",
            SyntheticState(n_sharers=2, requester_on_list=True),
        )
        invals = [s for s in stats.sends if (s[0] >> 8) & 0xFF == 12]
        assert len(invals) == 2  # not 3

    def test_writeback_clears_dirty_and_writes_memory(self):
        emu, stats = emulate("writeback_local",
                             SyntheticState(dirty=True, owner=3))
        header = emu.peek(_HEADER_ADDR)
        assert header & 1 == 0
        assert (header >> 8) & 0xFF == 0
        assert any(unit == 3 for _h, unit in stats.sends)  # memory write

    def test_hint_unlinks_source_node(self):
        for position in (1, 2, 4):
            emu, _ = emulate("hint_remote",
                             SyntheticState(position=position))
            # Walk the final list: the source node (3) must be gone.
            header = emu.peek(_HEADER_ADDR)
            idx = header >> 16
            nodes = []
            while idx:
                word = emu.peek(_LINK_BASE + 8 * (idx - 1))
                nodes.append(word & 0xFF)
                idx = (word >> 8) & 0xFFFF
            assert 3 not in nodes
            assert len(nodes) == position - 1

    def test_sharing_wb_clears_pending_and_dirty(self):
        emu, stats = emulate("sharing_wb",
                             SyntheticState(dirty=True, owner=3))
        header = emu.peek(_HEADER_ADDR)
        assert header & 0b11 == 0

    def test_forward_sets_pending(self):
        emu, _ = emulate("get_home_forward",
                         SyntheticState(dirty=True, owner=3))
        assert emu.peek(_HEADER_ADDR) & 2

    def test_ack_receive_releases_on_last_ack(self):
        _, stats_last = emulate("ack_receive", SyntheticState(acks_left=1))
        assert len(stats_last.sends) == 1  # processor released
        _, stats_more = emulate("ack_receive", SyntheticState(acks_left=2))
        assert len(stats_more.sends) == 0


class TestEmulatedCostModel:
    def test_costs_scale_with_invalidations(self):
        model = EmulatedCostModel(flash_config(4))
        costs = [
            model.cost(action(Handler.GETX_HOME_CLEAN, n_invals=n))
            for n in (0, 1, 2, 4)
        ]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0] + 30

    def test_costs_scale_with_hint_position(self):
        model = EmulatedCostModel(flash_config(4))
        costs = [
            model.cost(action(Handler.HINT_REMOTE, list_position=p))
            for p in (1, 3, 6)
        ]
        assert costs == sorted(costs) and costs[-1] > costs[0]

    def test_caching_stable(self):
        model = EmulatedCostModel(flash_config(4))
        a = action(Handler.GET_HOME_CLEAN)
        assert model.cost(a) == model.cost(a)
        assert model._cache[(Handler.GET_HOME_CLEAN, 0, None)].hits == 2

    def test_single_issue_costs_more(self):
        fast = EmulatedCostModel(flash_config(4))
        slow = EmulatedCostModel(
            flash_config(4).with_changes(pp_dual_issue=False)
        )
        a = action(Handler.GET_HOME_CLEAN)
        assert slow.cost(a) > fast.cost(a)

    def test_no_special_instructions_costs_more(self):
        fast = EmulatedCostModel(flash_config(4))
        slow = EmulatedCostModel(
            flash_config(4).with_changes(pp_special_instructions=False)
        )
        a = action(Handler.GETX_HOME_CLEAN, n_invals=3)
        assert slow.cost(a) > fast.cost(a)

    def test_dynamic_totals_accumulate(self):
        model = EmulatedCostModel(flash_config(4))
        for _ in range(5):
            model.cost(action(Handler.GET_HOME_CLEAN))
        totals = model.dynamic_totals()
        assert totals["invocations"] == 5
        assert 1.0 < totals["dual_issue_efficiency"] <= 2.0
        assert 0.0 < totals["special_fraction"] < 1.0

    def test_table_3_4_correlation(self):
        """Emulated handler costs track the paper's Table 3.4 within a
        factor of two for every row (they are independent hand-written
        implementations of the same operations)."""
        paper = {
            Handler.GET_HOME_CLEAN: 11,
            Handler.MISS_FORWARD: 3,
            Handler.GET_HOME_FORWARD: 18,
            Handler.GET_OWNER: 38,
            Handler.REPLY_TO_PROC: 2,
            Handler.WRITEBACK_LOCAL: 10,
            Handler.WRITEBACK_REMOTE: 8,
            Handler.HINT_LOCAL: 7,
        }
        model = EmulatedCostModel(flash_config(4))
        for handler, expected in paper.items():
            measured = model.cost(action(handler, list_position=1))
            assert expected / 2.5 <= measured <= expected * 2.5, (
                f"{handler}: measured {measured}, paper {expected}"
            )


class TestTransferHandlers:
    """The block-transfer handlers ([HGD+94]) — the chip charges the
    XFER_*_COST constants; the PP assembly implementations measure within
    the same ballpark, validating those constants."""

    def _run(self, name, aux=0):
        handlers = CompiledHandlers()
        emu = PPEmulator()
        regs = SyntheticState().install(emu)
        regs[5] = aux
        return emu.run(handlers.schedules[name], regs)

    def test_setup_cost_ballpark(self):
        from repro.msgpass.transfer import XFER_SETUP_COST
        stats = self._run("xfer_setup", aux=(1 << 16) | 8)
        assert XFER_SETUP_COST / 2.5 <= stats.cycles <= XFER_SETUP_COST * 2.5

    def test_line_handler_sends_memory_and_network(self):
        from repro.msgpass.transfer import XFER_PER_LINE_COST
        stats = self._run("xfer_line", aux=0)
        units = sorted(unit for _h, unit in stats.sends)
        assert units == [2, 3]  # network + memory
        assert stats.cycles <= XFER_PER_LINE_COST * 3

    def test_receive_notifies_cpu_on_last_line(self):
        last = self._run("xfer_receive", aux=0)   # zero lines remaining
        more = self._run("xfer_receive", aux=3)   # still in flight
        cpu_sends_last = [u for _h, u in last.sends if u == 1]
        cpu_sends_more = [u for _h, u in more.sends if u == 1]
        assert len(cpu_sends_last) == 1
        assert len(cpu_sends_more) == 0
