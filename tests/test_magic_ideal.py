"""Tests for the MAGIC chip and the ideal controller timing models."""

import pytest

from repro.common.params import (
    MagicCacheConfig, flash_config, ideal_config,
)
from repro.machine import Machine

KB = 1024
MB = 1024 * 1024
LINE = 128


def machine_for(kind="flash", n_procs=2, mdc=False, metrics=None, **cfg):
    make = flash_config if kind == "flash" else ideal_config
    config = make(n_procs=n_procs, cache_size=1 * MB, **cfg)
    if not mdc:
        config = config.with_changes(magic_caches=MagicCacheConfig(enabled=False))
    return Machine(config, metrics=metrics)


def one_read(machine, addr):
    streams = [iter([("r", addr)])] + [
        iter([("c", 1)]) for _ in range(machine.config.n_procs - 1)
    ]
    machine.run(streams)
    return machine.nodes[0].cpu.times.read_stall


class TestLatencies:
    def test_flash_local_clean_matches_paper(self):
        assert one_read(machine_for("flash"), 0) == 27

    def test_ideal_local_clean_matches_paper(self):
        assert one_read(machine_for("ideal"), 0) == 24

    def test_flash_remote_clean_near_paper(self):
        machine = machine_for("flash", n_procs=16)
        addr = machine.config.memory_bytes_per_node  # homed at node 1
        assert one_read(machine, addr) == pytest.approx(111, abs=6)

    def test_ideal_remote_clean_matches_paper(self):
        machine = machine_for("ideal", n_procs=16)
        addr = machine.config.memory_bytes_per_node
        assert one_read(machine, addr) == pytest.approx(92, abs=3)


class TestSpeculation:
    def test_speculative_read_issued_for_local_get(self):
        machine = machine_for("flash")
        one_read(machine, 0)
        assert machine.nodes[0].stats.spec_issued == 1
        assert machine.nodes[0].stats.spec_useless == 0

    def test_disabling_speculation_slows_local_reads(self):
        fast = one_read(machine_for("flash"), 0)
        slow = one_read(machine_for("flash", speculative_reads=False), 0)
        assert slow > fast

    def test_useless_speculation_counted_for_dirty_lines(self):
        machine = machine_for("flash", n_procs=2)
        streams = [
            iter([("b", "w"), ("r", 0)]),
            iter([("r", 0), ("w", 0), ("c", 500), ("b", "w")]),
        ]
        machine.run(streams)
        node0 = machine.nodes[0]
        # Node 1 holds line 0 dirty: node 0's GET speculated uselessly.
        assert node0.stats.spec_useless >= 1

    def test_no_speculation_on_ideal_machine(self):
        machine = machine_for("ideal")
        one_read(machine, 0)
        assert machine.nodes[0].stats.spec_issued == 0


class TestOccupancy:
    def test_flash_pp_busy_nonzero(self):
        machine = machine_for("flash")
        one_read(machine, 0)
        assert machine.nodes[0].stats.pp_busy > 0

    def test_ideal_controller_zero_occupancy(self):
        machine = machine_for("ideal")
        one_read(machine, 0)
        assert machine.nodes[0].stats.pp_busy == 0

    def test_handler_counts_in_registry(self):
        machine = machine_for("flash", metrics=True)
        one_read(machine, 0)
        family = machine.metrics.handler_invocations
        assert family.labels(0, "get_home_clean").value == 1


class TestMDC:
    def test_cold_misses_counted(self):
        machine = machine_for("flash", mdc=True)
        one_read(machine, 0)
        node = machine.nodes[0]
        assert node.mdc.read_misses >= 1
        assert node.stats.pp_mdc_stall > 0

    def test_warm_mdc_hits(self):
        machine = machine_for("flash", mdc=True)
        streams = [
            iter([("r", 0), ("c", 500), ("r", LINE * machine.nodes[0].cpu.cache.n_sets * 2)]),
            iter([("c", 1)]),
        ]
        machine.run(streams)
        node = machine.nodes[0]
        assert node.mdc.accesses > node.mdc.read_misses

    def test_mdc_misses_consume_memory_bandwidth(self):
        machine = machine_for("flash", mdc=True)
        reads_before = machine.nodes[0].memory.reads
        one_read(machine, 0)
        # The data read plus at least one MDC fill.
        assert machine.nodes[0].memory.reads >= 2

    def test_ideal_machine_has_no_mdc(self):
        machine = machine_for("ideal")
        assert machine.nodes[0].mdc is None


class TestQueueLimits:
    def test_pi_in_queue_backpressure_tracked(self):
        machine = machine_for("flash")
        streams = [
            iter([("w", i * LINE) for i in range(40)] + [("c", 3000)]),
            iter([("c", 1)]),
        ]
        machine.run(streams)
        # With 4 MSHRs the CPU can't exceed the 16-entry PI queue here, but
        # the queue must have seen traffic.
        assert machine.nodes[0].controller.pi_in_q.total_puts >= 40

    def test_data_buffers_acquired_and_released(self):
        machine = machine_for("flash")
        one_read(machine, 0)
        bufs = machine.nodes[0].controller.data_buffers
        assert bufs.total_acquires >= 1
        assert bufs.in_use == 0  # all released at quiesce
