"""Kitchen-sink stress tests and the harness CLI."""

import pytest

from repro.apps.base import rng_stream
from repro.common.params import flash_config, ideal_config
from repro.harness.__main__ import main as harness_main
from repro.machine import Machine

KB = 1024
LINE = 128


def stress_streams(n_procs, mem, n_ops=120, seed=99):
    """Random mixed workload: reads/writes/locks/barriers over hot and cold
    lines across every node, with everything enabled."""
    streams = []
    for cpu in range(n_procs):
        rng = rng_stream(seed + cpu)
        ops = []
        for i in range(n_ops):
            roll = rng() % 100
            node = rng() % n_procs
            line = rng() % 24
            addr = node * mem + line * LINE
            if roll < 45:
                ops.append(("r", addr, 1 + rng() % 8))
            elif roll < 75:
                ops.append(("w", addr))
            elif roll < 85:
                ops.append(("c", 5 + rng() % 40))
            elif roll < 92:
                lock = rng() % 4
                ops.append(("l", ("stress", lock)))
                ops.append(("w", (rng() % n_procs) * mem + (24 + lock) * LINE))
                ops.append(("u", ("stress", lock)))
            else:
                ops.append(("b", ("phase", i // 40)))
        # Everyone meets at every phase barrier they individually reach —
        # normalize: append the full set at the end.
        for phase in range(n_ops // 40 + 1):
            ops.append(("b", ("phase", phase)))
        ops.append(("b", "final"))
        streams.append(ops)
    return streams


def dedupe_barriers(streams):
    """Keep only the first occurrence of each barrier id per stream so all
    processors arrive exactly once."""
    out = []
    for ops in streams:
        seen = set()
        kept = []
        for op in ops:
            if op[0] == "b":
                if op[1] in seen:
                    continue
                seen.add(op[1])
            kept.append(op)
        out.append(kept)
    return out


@pytest.mark.parametrize("kind,protocol", [
    ("flash", "base"), ("flash", "migratory"), ("ideal", "base"),
])
def test_stress_everything_enabled(kind, protocol):
    make = flash_config if kind == "flash" else ideal_config
    config = make(n_procs=4, cache_size=2 * KB)
    if kind == "flash":
        config = config.with_changes(protocol=protocol)
    machine = Machine(config)
    mem = config.memory_bytes_per_node
    streams = dedupe_barriers(stress_streams(4, mem))
    result = machine.run([iter(s) for s in streams])
    machine.check_directory_invariants()
    assert result.execution_time > 0
    if kind == "flash":
        for node in machine.nodes:
            assert node.controller.data_buffers.in_use == 0
            assert node.memory.occupancy(result.execution_time) <= 1.0


def test_stress_deterministic_across_runs():
    times = []
    for _ in range(2):
        config = flash_config(n_procs=4, cache_size=2 * KB)
        machine = Machine(config)
        mem = config.memory_bytes_per_node
        streams = dedupe_barriers(stress_streams(4, mem, n_ops=80))
        times.append(machine.run([iter(s) for s in streams]).execution_time)
    assert times[0] == times[1]


class TestHarnessCLI:
    def test_list(self, capsys):
        assert harness_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "barnes" in out and "large" in out

    def test_run_app(self, capsys):
        assert harness_main(["run", "lu", "--regime", "large"]) == 0
        out = capsys.readouterr().out
        assert "cost of flexibility" in out
        assert "flash" in out and "ideal" in out

    def test_latencies_table(self, capsys):
        assert harness_main(["latencies"]) == 0
        out = capsys.readouterr().out
        assert "local_clean" in out
        assert "27" in out  # the FLASH local clean latency
