"""Macro-op fusion (``REPRO_FUSION``): byte-identical timing, by construction.

The fusion layer in ``repro.magic.chip`` / ``repro.ideal.controller``
schedules a contention-free handler pipeline as a chain of analytic calendar
entries instead of ~14 stepwise dispatches, falling back to the stepwise
pipeline at the first busy resource.  Its contract is absolute: a fused run
is **byte-identical** to a stepwise run — same ``RunResult`` JSON, same
golden hashes — because fusion replicates every stepwise calendar instant
and ready-queue position exactly.  These tests pin that contract:

* every app/machine combo of the Figure 4.1 matrix, fused vs
  ``REPRO_FUSION=off``;
* seeded-random contention schedules (hot shared lines, random barriers)
  where fused chains and stepwise fallbacks interleave heavily;
* fault-injected runs, where fusion must disable itself entirely;
* watchdog+trace+metrics runs, where observability hooks must force the
  stepwise pipeline (observer callbacks fire per stepwise dispatch, so a
  fused chain would silently skip them).
"""

import random

import pytest

from repro.faults import FaultPlan
from repro.harness import experiments as exp
from repro.machine import Machine
from repro.common.params import flash_config, ideal_config

from test_integration import TestGoldenHashes as Golden

ALL_COMBOS = sorted(Golden.GOLDEN)


@pytest.fixture(autouse=True)
def clean_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "off")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for var in ("REPRO_FUSION", "REPRO_WATCHDOG", "REPRO_TRACE",
                "REPRO_METRICS", "REPRO_BACKEND"):
        monkeypatch.delenv(var, raising=False)


def small_spec(app, kind, **kwargs):
    return exp.normalize_spec(
        app, kind=kind, regime="large",
        workload_overrides=Golden.FAST_SIZES[app], **kwargs)


def run_spec(spec):
    """Uncached run returning ``(result_json, machine)`` so assertions can
    inspect the dispatch census after comparing results."""
    machine, ops, cost_model = exp.build_machine(spec)
    result = machine.run(ops)
    if cost_model is not None:
        result.pp_dynamic = cost_model.dynamic_totals()
    if machine.fault_injector is not None:
        result.fault_counters = machine.fault_injector.counters()
    return result.to_json(), machine


def census(machine):
    fused = {}
    stepwise = {}
    for node in machine.nodes:
        for mtype, count in node.controller.dispatch_fused.items():
            fused[mtype] = fused.get(mtype, 0) + count
        for mtype, count in node.controller.dispatch_stepwise.items():
            stepwise[mtype] = stepwise.get(mtype, 0) + count
    return fused, stepwise


class TestFusionParityMatrix:
    """Fused vs stepwise over the full app/machine matrix."""

    @pytest.mark.parametrize("combo", ALL_COMBOS)
    def test_byte_identical_and_nonvacuous(self, combo, monkeypatch):
        app, kind = combo.split("/")
        fused_json, machine = run_spec(small_spec(app, kind))
        fused, _ = census(machine)
        monkeypatch.setenv("REPRO_FUSION", "off")
        off_json, off_machine = run_spec(small_spec(app, kind))
        assert fused_json == off_json
        # Not vacuous: with fusion on, chains actually committed; with it
        # off, none did.
        assert sum(fused.values()) > 0
        off_fused, off_stepwise = census(off_machine)
        assert not off_fused
        assert sum(off_stepwise.values()) > 0


def contention_streams(rng, n_procs, n_ops=220, hot_lines=6):
    """Seeded-random op schedules that keep a few lines hot across all
    nodes: reads, writes, and upgrades collide constantly, so fused chains
    and stepwise fallbacks interleave in both directions."""
    hot = [rng.randrange(64) * 128 for _ in range(hot_lines)]
    streams = []
    for proc in range(n_procs):
        ops = []
        for step in range(n_ops):
            roll = rng.random()
            if roll < 0.45:
                ops.append(("r", rng.choice(hot)))
            elif roll < 0.80:
                ops.append(("w", rng.choice(hot)))
            elif roll < 0.92:
                # Private traffic drains through the caches without sharing.
                ops.append(("r", (4096 + proc * 64 + step % 64) * 128))
            else:
                ops.append(("c", rng.randrange(1, 40)))
            if step % 50 == 49:
                ops.append(("b", f"sync{step}"))
        streams.append(ops)
    return streams


class TestRandomContentionSchedules:
    """Fused vs stepwise on seeded-random contention: the checkpoint
    fallback (busy NI/PO, queued traffic) is exercised from both sides."""

    @pytest.mark.parametrize("kind", ["flash", "ideal"])
    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_byte_identical(self, kind, seed, monkeypatch):
        make = flash_config if kind == "flash" else ideal_config

        def one_run():
            config = make(n_procs=4, cache_size=16 * 1024)
            machine = Machine(config)
            streams = contention_streams(random.Random(seed), 4)
            result = machine.run([iter(s) for s in streams])
            machine.check_directory_invariants()
            return result.to_json(), machine

        fused_json, machine = one_run()
        fused, stepwise = census(machine)
        monkeypatch.setenv("REPRO_FUSION", "off")
        off_json, off_machine = one_run()
        assert fused_json == off_json
        assert not census(off_machine)[0]
        # The schedule must exercise both regimes, or it proves nothing.
        assert sum(fused.values()) > 0
        assert sum(stepwise.values()) > 0


class TestFusionUnderFaults:
    """Fault injection perturbs costs and drops messages per dispatch, so
    fusion must disable itself — and parity must still hold trivially."""

    @pytest.mark.parametrize("combo", ["fft/flash", "mp3d/flash"])
    def test_faults_force_stepwise_and_parity(self, combo, monkeypatch):
        app, kind = combo.split("/")
        plan = FaultPlan.uniform(0.05, seed=3)
        fused_json, machine = run_spec(small_spec(app, kind, faults=plan))
        fused, stepwise = census(machine)
        assert not fused
        assert sum(stepwise.values()) > 0
        monkeypatch.setenv("REPRO_FUSION", "off")
        off_json, _ = run_spec(small_spec(app, kind, faults=plan))
        assert fused_json == off_json


class TestFusionUnderObservability:
    """Watchdog + trace + metrics all ON: the observer hooks fire per
    stepwise dispatch, so every fused chain must be statically rejected —
    and the observed run must stay byte-identical to ``REPRO_FUSION=off``."""

    @pytest.mark.parametrize("combo", ["fft/flash", "barnes/ideal"])
    def test_observers_force_stepwise_and_parity(self, combo, monkeypatch):
        app, kind = combo.split("/")
        monkeypatch.setenv("REPRO_WATCHDOG", "on")
        monkeypatch.setenv("REPRO_TRACE", "on")
        monkeypatch.setenv("REPRO_METRICS", "on")
        fused_json, machine = run_spec(small_spec(app, kind))
        fused, stepwise = census(machine)
        assert not fused
        assert sum(stepwise.values()) > 0
        monkeypatch.setenv("REPRO_FUSION", "off")
        off_json, _ = run_spec(small_spec(app, kind))
        assert fused_json == off_json
