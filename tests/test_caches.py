"""Unit tests for the set-associative cache and MSHR file."""

import pytest

from repro.caches.mshr import MSHRFile
from repro.caches.setassoc import CacheState, SetAssocCache
from repro.common.params import CacheConfig
from repro.common.errors import ConfigError

KB = 1024
LINE = 128


def make_cache(size=4 * KB, assoc=2):
    return SetAssocCache(CacheConfig(size_bytes=size, associativity=assoc))


class TestGeometry:
    def test_set_count(self):
        cache = make_cache(size=4 * KB, assoc=2)
        assert cache.n_sets == 4 * KB // (LINE * 2)

    def test_line_address(self):
        cache = make_cache()
        assert cache.line_address(0) == 0
        assert cache.line_address(127) == 0
        assert cache.line_address(128) == 128
        assert cache.line_address(1000) == 896

    def test_misaligned_size_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, associativity=2)

    def test_non_power_of_two_line_rejected(self):
        # Shift/mask indexing requires power-of-two line size.
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=4 * KB, associativity=2, line_bytes=96)

    def test_non_power_of_two_set_count_rejected(self):
        # 3KB / (128B * 1 way) = 24 sets: not a power of two.
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=3 * KB, associativity=1)

    def test_power_of_two_geometry_accepted(self):
        config = CacheConfig(size_bytes=8 * KB, associativity=4)
        assert config.n_sets == 16

    def test_same_set_different_tags(self):
        cache = make_cache(size=4 * KB, assoc=2)
        span = LINE * cache.n_sets
        a, b = 0, span
        assert cache.set_index(a) == cache.set_index(b)
        assert cache.tag_of(a) != cache.tag_of(b)


class TestAccess:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert cache.access(0, is_write=False) == CacheState.INVALID
        cache.fill(0, CacheState.SHARED)
        assert cache.access(0, is_write=False) == CacheState.SHARED
        assert cache.stats.read_misses == 1
        assert cache.stats.read_hits == 1

    def test_write_to_shared_counts_as_miss(self):
        """A write to a SHARED line needs an upgrade (Section 3.2)."""
        cache = make_cache()
        cache.fill(0, CacheState.SHARED)
        assert cache.access(0, is_write=True) == CacheState.SHARED
        assert cache.stats.write_misses == 1

    def test_write_to_dirty_hits(self):
        cache = make_cache()
        cache.fill(0, CacheState.DIRTY)
        assert cache.access(0, is_write=True) == CacheState.DIRTY
        assert cache.stats.write_hits == 1

    def test_miss_rate(self):
        cache = make_cache()
        cache.access(0, is_write=False)
        cache.fill(0, CacheState.SHARED)
        for _ in range(9):
            cache.access(0, is_write=False)
        assert cache.stats.miss_rate == pytest.approx(0.1)


class TestReplacement:
    def test_lru_eviction(self):
        cache = make_cache(size=4 * KB, assoc=2)
        span = LINE * cache.n_sets
        lines = [0, span, 2 * span]  # three lines, one set, 2 ways
        cache.fill(lines[0], CacheState.SHARED)
        cache.fill(lines[1], CacheState.SHARED)
        victim = cache.fill(lines[2], CacheState.SHARED)
        assert victim == (lines[0], CacheState.SHARED)

    def test_touch_protects_from_eviction(self):
        cache = make_cache(size=4 * KB, assoc=2)
        span = LINE * cache.n_sets
        cache.fill(0, CacheState.SHARED)
        cache.fill(span, CacheState.SHARED)
        cache.touch(0)  # 0 becomes MRU; span is now LRU
        victim = cache.fill(2 * span, CacheState.SHARED)
        assert victim[0] == span

    def test_dirty_victim_counted(self):
        cache = make_cache(size=4 * KB, assoc=2)
        span = LINE * cache.n_sets
        cache.fill(0, CacheState.DIRTY)
        cache.fill(span, CacheState.SHARED)
        cache.fill(2 * span, CacheState.SHARED)
        assert cache.stats.evictions_dirty == 1

    def test_refill_resident_line_no_eviction(self):
        cache = make_cache()
        cache.fill(0, CacheState.SHARED)
        assert cache.fill(0, CacheState.DIRTY) is None
        assert cache.state_of(0) == CacheState.DIRTY


class TestCoherenceOps:
    def test_invalidate(self):
        cache = make_cache()
        cache.fill(0, CacheState.SHARED)
        assert cache.invalidate(0) == CacheState.SHARED
        assert cache.state_of(0) == CacheState.INVALID
        assert cache.stats.invalidations_received == 1

    def test_invalidate_absent_line(self):
        cache = make_cache()
        assert cache.invalidate(0) == CacheState.INVALID
        assert cache.stats.invalidations_received == 0

    def test_set_state_downgrade(self):
        cache = make_cache()
        cache.fill(0, CacheState.DIRTY)
        cache.set_state(0, CacheState.SHARED)
        assert cache.state_of(0) == CacheState.SHARED

    def test_set_state_absent_raises(self):
        cache = make_cache()
        with pytest.raises(KeyError):
            cache.set_state(0, CacheState.SHARED)

    def test_resident_lines_enumeration(self):
        cache = make_cache()
        cache.fill(0, CacheState.SHARED)
        cache.fill(LINE, CacheState.DIRTY)
        resident = dict(cache.resident_lines())
        assert resident == {0: CacheState.SHARED, LINE: CacheState.DIRTY}
        assert cache.occupancy() == 2


class TestMSHR:
    def make(self):
        cache = make_cache()
        return MSHRFile(4, cache), cache

    def test_allocate_and_complete(self):
        mshrs, _ = self.make()
        entry = mshrs.allocate(0, False, now=5.0)
        assert mshrs.lookup(0) is entry
        assert mshrs.complete(0) is entry
        assert mshrs.lookup(0) is None

    def test_capacity_enforced(self):
        mshrs, _ = self.make()
        for i in range(4):
            mshrs.allocate(i * LINE, False, 0)
        assert mshrs.is_full
        with pytest.raises(OverflowError):
            mshrs.allocate(4 * LINE, False, 0)

    def test_duplicate_rejected(self):
        mshrs, _ = self.make()
        mshrs.allocate(0, False, 0)
        with pytest.raises(KeyError):
            mshrs.allocate(0, True, 0)

    def test_write_merge(self):
        mshrs, _ = self.make()
        entry = mshrs.allocate(0, True, 0)
        mshrs.merge_write(0)
        mshrs.merge_write(0)
        assert entry.merged_writes == 2
        assert mshrs.total_merges == 2

    def test_index_conflict_same_set_different_tag(self):
        mshrs, cache = self.make()
        span = LINE * cache.n_sets
        mshrs.allocate(0, False, 0)
        assert mshrs.index_conflict(span)       # same set, different tag
        assert not mshrs.index_conflict(0)      # same line is a merge, not a conflict
        assert not mshrs.index_conflict(LINE)   # different set

    def test_peak_tracking(self):
        mshrs, _ = self.make()
        mshrs.allocate(0, False, 0)
        mshrs.allocate(LINE, False, 0)
        mshrs.complete(0)
        mshrs.allocate(2 * LINE, False, 0)
        assert mshrs.peak_outstanding == 2
