"""Unit tests for the memory controller and network models."""

import pytest

from repro.common.params import flash_config, ideal_config, mesh_transit_cycles
from repro.memory.controller import MemoryController
from repro.network.mesh import Network
from repro.protocol.messages import Message, MessageType as MT
from repro.sim.engine import Environment


@pytest.fixture
def env():
    return Environment()


class TestMemoryController:
    def test_first_data_at_access_latency(self, env):
        mem = MemoryController(env, flash_config(2))

        def proc():
            req = mem.read(0)
            yield mem.submit(req)
            yield req.data_event
            return env.now

        assert env.run_process(proc()) == 14

    def test_controller_busy_for_full_transfer(self, env):
        config = flash_config(2)
        mem = MemoryController(env, config)

        def proc():
            first = mem.read(0)
            second = mem.read(128)
            yield mem.submit(first)
            yield mem.submit(second)
            yield second.data_event
            return env.now

        # Second access starts only after the first's full-line transfer.
        assert env.run_process(proc()) == config.memory_busy_cycles + 14

    def test_queue_limit_stalls_submitter(self, env):
        config = flash_config(2)  # memory queue holds one waiting request
        mem = MemoryController(env, config)

        def proc():
            reqs = [mem.read(i * 128) for i in range(3)]
            yield mem.submit(reqs[0])  # being served
            yield mem.submit(reqs[1])  # waits in the 1-deep queue
            t_before = env.now
            yield mem.submit(reqs[2])  # must stall until a slot frees
            return env.now - t_before

        assert env.run_process(proc()) > 0

    def test_ideal_queue_never_stalls(self, env):
        mem = MemoryController(env, ideal_config(2))

        def proc():
            for i in range(10):
                yield mem.submit(mem.read(i * 128))
            return env.now

        assert env.run_process(proc()) == 0

    def test_occupancy_accounting(self, env):
        config = flash_config(2)
        mem = MemoryController(env, config)

        def proc():
            req = mem.read(0)
            yield mem.submit(req)
            yield req.done_event

        env.run_process(proc())
        assert mem.busy_cycles == config.memory_busy_cycles
        assert mem.occupancy(config.memory_busy_cycles * 2) == pytest.approx(0.5)

    def test_read_write_counters(self, env):
        mem = MemoryController(env, flash_config(2))

        def proc():
            r = mem.read(0)
            w = mem.write(128)
            yield mem.submit(r)
            yield mem.submit(w)
            yield w.done_event

        env.run_process(proc())
        assert mem.reads == 1 and mem.writes == 1


class TestNetwork:
    def make(self, env, n=4, kind="flash"):
        config = flash_config(n) if kind == "flash" else ideal_config(n)
        return Network(env, config), config

    def test_end_to_end_latency(self, env):
        net, config = self.make(env)
        lat = config.latencies

        def proc():
            message = Message(MT.REMOTE_GET, 0, 0, 1, 0)
            yield net.port(0).send((message, None, None))
            received = yield net.port(1).in_queue.get()
            return env.now, received

        t, received = env.run_process(proc())
        expected = lat.ni_outbound + lat.network_transit + lat.ni_inbound
        assert t == expected
        assert received.mtype == MT.REMOTE_GET

    def test_point_to_point_ordering(self, env):
        net, _ = self.make(env)

        def sender():
            for i in range(5):
                message = Message(MT.INVAL, i * 128, 0, 1, 0)
                yield net.port(0).send((message, None, None))

        def receiver():
            out = []
            for _ in range(5):
                m = yield net.port(1).in_queue.get()
                out.append(m.line_addr)
            return out

        env.process(sender())
        proc = env.process(receiver())
        env.run()
        assert proc.value == [0, 128, 256, 384, 512]

    def test_send_to_self_rejected(self, env):
        net, _ = self.make(env)
        message = Message(MT.PUT, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            net.port(0).send((message, None, None))

    def test_data_bearing_message_waits_for_data(self, env):
        net, config = self.make(env)

        def proc():
            data_ready = env.timeout(50)
            message = Message(MT.PUT, 0, 0, 1, 1)
            yield net.port(0).send((message, data_ready, None))
            yield net.port(1).in_queue.get()
            return env.now

        lat = config.latencies
        expected = 50 + lat.ni_outbound + lat.network_transit + lat.ni_inbound
        assert env.run_process(proc()) == expected

    def test_outbound_serialization(self, env):
        """The NI sends one message per ni_outbound cycles (link bandwidth)."""
        net, config = self.make(env)

        def proc():
            for i in range(3):
                m = Message(MT.INVAL, i * 128, 0, 1, 0)
                yield net.port(0).send((m, None, None))
            out = []
            for _ in range(3):
                yield net.port(1).in_queue.get()
                out.append(env.now)
            return out

        times = env.run_process(proc())
        lat = config.latencies
        # The slower of the two serial NI stages paces back-to-back traffic.
        pace = max(lat.ni_outbound, lat.ni_inbound)
        assert times[1] - times[0] == pace
        assert times[2] - times[1] == pace

    def test_transit_scales_with_machine_size(self):
        assert mesh_transit_cycles(16) == 22  # the paper's value
        assert mesh_transit_cycles(64) > mesh_transit_cycles(16)
        assert mesh_transit_cycles(1) == 0

    def test_messages_counted(self, env):
        net, _ = self.make(env)

        def proc():
            m = Message(MT.REMOTE_GET, 0, 0, 1, 0)
            yield net.port(0).send((m, None, None))
            yield net.port(1).in_queue.get()

        env.run_process(proc())
        assert net.messages_sent == 1
