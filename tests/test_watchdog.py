"""The simulation watchdog: stall detection, diagnosis, and budgets.

The two failure shapes (see ``src/repro/sim/watchdog.py``):

* deadlock — a cyclic wait drains the event schedule while the workload is
  incomplete; caught by ``check_complete`` after ``env.run()`` returns;
* livelock — events keep firing but the progress counter never moves; caught
  by the event/virtual-time budget inside the instrumented run loop.

Either way the test suite gets a typed ``SimStalledError`` naming the
offending queues in seconds, instead of a pytest hang.
"""

import json
import time

import pytest

from repro.common.params import flash_config, ideal_config
from repro.harness import experiments as exp
from repro.machine import Machine
from repro.protocol.messages import Message, MessageType as MT
from repro.sim import (
    BoundedQueue, CountingResource, Environment, SimStalledError, Watchdog,
)
from repro.sim.watchdog import diagnose

TINY_FFT = {"points": 256}


def deadlocked_env():
    """Two bounded queues whose producers each fill their queue and then
    block forever: the schedule drains with both processes still waiting."""
    env = Environment()
    ping = BoundedQueue(env, 1, name="ping[0]")
    pong = BoundedQueue(env, 1, name="pong[1]")

    def stuffer(queue):
        yield queue.put("first")    # fits
        yield queue.put("second")   # blocks forever: nobody ever gets

    p1 = env.process(stuffer(ping), name="stuffer-ping")
    p2 = env.process(stuffer(pong), name="stuffer-pong")
    return env, env.all_of([p1, p2])


class TestDeadlockDetection:
    def test_cyclic_queue_wait_raises_with_queues_named(self):
        env, done = deadlocked_env()
        watchdog = Watchdog(env)
        start = time.monotonic()
        with pytest.raises(SimStalledError) as excinfo:
            watchdog.run(complete=done)
        # The acceptance bar: diagnosed in seconds, not a pytest hang.
        assert time.monotonic() - start < 5.0
        message = str(excinfo.value)
        assert "ping[0]" in message and "pong[1]" in message
        assert "deadlock" in message
        diagnosis = excinfo.value.diagnosis
        assert set(diagnosis.offending_queues) == {"ping[0]", "pong[1]"}
        ops = {(e["process"], e["queue"], e["op"])
               for e in diagnosis.wait_edges}
        assert ("stuffer-ping", "ping[0]", "put") in ops
        assert ("stuffer-pong", "pong[1]", "put") in ops

    def test_completed_run_passes_check_complete(self):
        env = Environment()
        queue = BoundedQueue(env, 4, name="q[0]")

        def producer():
            yield queue.put("x")

        def consumer():
            yield queue.get()

        done = env.all_of([env.process(producer(), name="p"),
                           env.process(consumer(), name="c")])
        watchdog = Watchdog(env)
        watchdog.run(complete=done)   # must not raise
        assert done.triggered

    def test_machine_with_mismatched_barrier_is_diagnosed(self):
        # Three of four processors arrive at a barrier the fourth never
        # reaches: the canonical workload-bug deadlock.
        config = ideal_config(n_procs=4, cache_size=64 * 1024)
        machine = Machine(config, watchdog=True)
        workload = [[("b", 0)], [("b", 0)], [("b", 0)], []]
        with pytest.raises(SimStalledError):
            machine.run(workload)

    def test_machine_without_watchdog_keeps_runtime_error(self):
        config = ideal_config(n_procs=4, cache_size=64 * 1024)
        machine = Machine(config)
        workload = [[("b", 0)], [("b", 0)], [("b", 0)], []]
        with pytest.raises(RuntimeError):
            machine.run(workload)


class TestLivelockDetection:
    def spinner_env(self):
        env = Environment()

        def spin():
            while True:
                yield env.timeout(1)

        env.process(spin(), name="spinner")
        return env

    def test_event_budget_catches_spin(self):
        env = self.spinner_env()
        Watchdog(env, event_budget=2000, check_interval=64)
        with pytest.raises(SimStalledError) as excinfo:
            env.run()
        assert "livelock" in str(excinfo.value)
        assert excinfo.value.diagnosis.events_dispatched >= 2000

    def test_time_budget_catches_spin(self):
        env = self.spinner_env()
        Watchdog(env, event_budget=None, time_budget=500.0, check_interval=64)
        with pytest.raises(SimStalledError) as excinfo:
            env.run()
        assert "simulated cycles" in str(excinfo.value)

    def test_progress_resets_budgets(self):
        env = self.spinner_env()
        # The counter advances while sim time < 3000, then freezes: the
        # budget must only fire after the freeze, not from run start.
        progress = lambda: min(int(env.now), 3000)
        Watchdog(env, event_budget=2000, check_interval=64,
                 progress_fn=progress)
        with pytest.raises(SimStalledError):
            env.run()
        assert env.now > 3000

    def test_until_still_bounds_a_watched_run(self):
        env = self.spinner_env()
        Watchdog(env, event_budget=10**9)
        env.run(until=100)
        assert env.now == 100


class TestDiagnosis:
    def test_snapshot_contents(self):
        env = Environment()
        queue = BoundedQueue(env, 2, name="net.in[3]")
        resource = CountingResource(env, 1, name="dbuf[3]")
        old = Message(MT.REMOTE_GET, 0x80, 1, 3, 1)
        new = Message(MT.REMOTE_GETX, 0xC0, 2, 3, 2)
        queue.put(new)
        queue.put(old)
        assert old.uid < new.uid  # constructed first = oldest
        resource.acquire()

        def blocked_acquirer():
            yield resource.acquire()

        env.process(blocked_acquirer(), name="holder[3]")
        env.run()
        diagnosis = diagnose(env, "unit test")
        by_name = {entry["name"]: entry for entry in diagnosis.queues}
        assert by_name["net.in[3]"]["depth"] == 2
        assert by_name["net.in[3]"]["peak_depth"] == 2
        assert by_name["dbuf[3]"]["blocked_acquirers"] == ["holder[3]"]
        assert {"process": "holder[3]", "queue": "dbuf[3]",
                "op": "acquire"} in diagnosis.wait_edges
        # Oldest in-flight message for node 3 is the lowest-uid one.
        (oldest,) = diagnosis.oldest_messages
        assert oldest["node"] == 3 and oldest["uid"] == old.uid
        # The dict form is JSON-serializable as-is (artifact format).
        json.dumps(diagnosis.to_dict())

    def test_stall_artifact_written(self, tmp_path):
        env, done = deadlocked_env()
        watchdog = Watchdog(env, stall_dir=str(tmp_path))
        with pytest.raises(SimStalledError) as excinfo:
            watchdog.run(complete=done)
        path = excinfo.value.diagnosis.artifact_path
        assert path is not None and str(tmp_path) in path
        payload = json.loads(open(path).read())
        assert payload["reason"].startswith("event schedule drained")
        assert {q["name"] for q in payload["queues"]} >= {"ping[0]", "pong[1]"}

    def test_stall_dir_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STALL_DIR", str(tmp_path))
        env, done = deadlocked_env()
        watchdog = Watchdog(env)
        with pytest.raises(SimStalledError) as excinfo:
            watchdog.run(complete=done)
        assert excinfo.value.diagnosis.artifact_path is not None


class TestWatchedRunFidelity:
    """The instrumented loop must dispatch in exactly the fast loop's order:
    a run with a watchdog attached is byte-identical to one without."""

    def test_flash_run_identical_with_watchdog(self):
        spec = exp.normalize_spec("fft", n_procs=4,
                                  workload_overrides=TINY_FFT)
        plain = exp._execute(spec)
        config = flash_config(n_procs=4, cache_size=spec["cache_bytes"])
        workload = exp.app_workload("fft", **TINY_FFT)
        machine = Machine(config, watchdog=True)
        watched = machine.run(workload.build(config))
        assert watched.to_json() == plain.to_json()

    def test_watchdog_env_var_parser(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG", "off")
        assert exp._watchdog_from_env() is None
        monkeypatch.setenv("REPRO_WATCHDOG", "on")
        assert exp._watchdog_from_env() is True
        monkeypatch.setenv("REPRO_WATCHDOG",
                           "events=5000, time=2e6, interval=128")
        assert exp._watchdog_from_env() == {
            "event_budget": 5000, "time_budget": 2e6, "check_interval": 128}
        monkeypatch.setenv("REPRO_WATCHDOG", "bogus=1")
        with pytest.raises(ValueError):
            exp._watchdog_from_env()
