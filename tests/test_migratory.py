"""Tests for the migratory-data protocol variant."""

import pytest

from repro.caches.setassoc import CacheState
from repro.common.params import MagicCacheConfig, flash_config
from repro.machine import Machine
from repro.protocol.coherence import Handler
from repro.protocol.directory import Directory
from repro.protocol.messages import Message, MessageType as MT
from repro.protocol.migratory import MigratoryProtocolEngine

MB = 1024 * 1024
MEM = 4 * MB
LINE = 0x400


class FakeCache:
    def __init__(self):
        self.lines = {}

    def state_of(self, line):
        return self.lines.get(line, CacheState.INVALID)

    def invalidate(self, line):
        return self.lines.pop(line, CacheState.INVALID)

    def downgrade(self, line):
        if self.lines.get(line) == CacheState.DIRTY:
            self.lines[line] = CacheState.SHARED


def make_engine(probe_period=None):
    cache = FakeCache()
    directory = Directory(0, MEM, n_links=64)
    engine = MigratoryProtocolEngine(
        node_id=0, n_nodes=4, directory=directory,
        memory_bytes_per_node=MEM,
        cache_state_of=cache.state_of,
        cache_invalidate=cache.invalidate,
        cache_downgrade=cache.downgrade,
        probe_period=probe_period,
    )
    return engine, directory, cache


def migrate_once(engine, node):
    """One read-then-upgrade hand-off by `node`."""
    engine.process(Message(MT.REMOTE_GET, LINE, node, 0, node))
    # Resolve any 3-hop the read may have started.
    entry = engine.directory.entry(LINE)
    if entry.pending:
        old_owner = [m for m in (1, 2, 3) if m != node]
        engine.process(Message(MT.SHARING_WRITEBACK, LINE,
                               entry.deferred and 0 or 0, 0, node))
    engine.process(Message(MT.REMOTE_UPGRADE, LINE, node, 0, node,
                           is_write=True))


class TestDetection:
    def test_two_steps_classify_migratory(self):
        engine, directory, _ = make_engine()
        # Step 1: node 1 reads then upgrades.
        engine.process(Message(MT.REMOTE_GET, LINE, 1, 0, 1))
        engine.process(Message(MT.REMOTE_UPGRADE, LINE, 1, 0, 1,
                               is_write=True))
        assert engine.migratory_lines() == []
        # Step 2: node 2 reads (3-hop) then upgrades.
        engine.process(Message(MT.REMOTE_GET, LINE, 2, 0, 2))
        engine.process(Message(MT.SHARING_WRITEBACK, LINE, 1, 0, 2))
        engine.process(Message(MT.REMOTE_UPGRADE, LINE, 2, 0, 2,
                               is_write=True))
        assert engine.migratory_lines() == [LINE]

    def test_probe_declassifies_stopped_pattern(self):
        """With probing every 2nd grant, a line whose readers stop writing
        is observed by a shared-read probe and declassified."""
        engine, directory, cache = make_engine(probe_period=2)
        # Build up migratory status.
        engine.process(Message(MT.REMOTE_GET, LINE, 1, 0, 1))
        engine.process(Message(MT.REMOTE_UPGRADE, LINE, 1, 0, 1,
                               is_write=True))
        engine.process(Message(MT.REMOTE_GET, LINE, 2, 0, 2))
        engine.process(Message(MT.SHARING_WRITEBACK, LINE, 1, 0, 2))
        engine.process(Message(MT.REMOTE_UPGRADE, LINE, 2, 0, 2,
                               is_write=True))
        assert engine.migratory_lines() == [LINE]
        # Grant 1: exclusive hand-off to node 3.
        engine.process(Message(MT.REMOTE_GET, LINE, 3, 0, 3))
        engine.process(Message(MT.OWNERSHIP_TRANSFER, LINE, 2, 0, 3,
                               is_write=True))
        # Grant 2 is the probe: node 1's read is served shared (3-hop GET).
        actions = engine.process(Message(MT.REMOTE_GET, LINE, 1, 0, 1))
        assert actions[0].sends[0].mtype == MT.FORWARD_GET
        assert engine.probes == 1
        engine.process(Message(MT.SHARING_WRITEBACK, LINE, 3, 0, 1))
        # Node 1 never writes; node 2's next read declassifies the line.
        engine.process(Message(MT.REMOTE_GET, LINE, 2, 0, 2))
        assert engine.migratory_lines() == []
        assert engine.declassified == 1


class TestExclusiveHandoff:
    def _make_migratory(self, engine):
        engine.process(Message(MT.REMOTE_GET, LINE, 1, 0, 1))
        engine.process(Message(MT.REMOTE_UPGRADE, LINE, 1, 0, 1,
                               is_write=True))
        engine.process(Message(MT.REMOTE_GET, LINE, 2, 0, 2))
        engine.process(Message(MT.SHARING_WRITEBACK, LINE, 1, 0, 2))
        engine.process(Message(MT.REMOTE_UPGRADE, LINE, 2, 0, 2,
                               is_write=True))

    def test_read_on_migratory_line_forwards_as_getx(self):
        engine, directory, _ = make_engine()
        self._make_migratory(engine)
        actions = engine.process(Message(MT.REMOTE_GET, LINE, 3, 0, 3))
        a = actions[0]
        assert a.handler == Handler.GETX_HOME_FORWARD
        assert a.sends[0].mtype == MT.FORWARD_GETX
        assert engine.migratory_grants == 1

    def test_ownership_lands_on_reader(self):
        engine, directory, _ = make_engine()
        self._make_migratory(engine)
        engine.process(Message(MT.REMOTE_GET, LINE, 3, 0, 3))
        engine.process(Message(MT.OWNERSHIP_TRANSFER, LINE, 2, 0, 3,
                               is_write=True))
        entry = directory.entry(LINE)
        assert entry.dirty and entry.owner == 3

    def test_home_owned_migratory_grant(self):
        engine, directory, cache = make_engine()
        self._make_migratory(engine)
        # Hand the line to the home's own processor first.
        engine.process(Message(MT.REMOTE_GET, LINE, 3, 0, 3))
        engine.process(Message(MT.OWNERSHIP_TRANSFER, LINE, 2, 0, 3,
                               is_write=True))
        engine.process(Message(MT.REMOTE_WRITEBACK, LINE, 3, 0, 3))
        engine.process(Message(MT.GET, LINE, 0, 0, 0))
        engine.process(Message(MT.UPGRADE, LINE, 0, 0, 0, is_write=True))
        cache.lines[LINE] = CacheState.DIRTY
        actions = engine.process(Message(MT.REMOTE_GET, LINE, 1, 0, 1))
        a = actions[0]
        assert a.handler == Handler.GETX_HOME_DIRTY_LOCAL
        assert a.sends[0].mtype == MT.PUTX
        assert cache.state_of(LINE) == CacheState.INVALID


class TestEndToEnd:
    def _migratory_workload(self, rounds=4):
        """Each processor in turn reads then writes the same set of lines."""
        streams = []
        for p in range(4):
            ops = []
            for r in range(rounds):
                if r % 4 == p:
                    for i in range(8):
                        ops.append(("r", i * 128))
                        ops.append(("w", i * 128))
                ops.append(("b", ("round", r)))
            streams.append(ops)
        return streams

    def _run(self, protocol):
        config = flash_config(n_procs=4, cache_size=64 * 1024).with_changes(
            protocol=protocol,
            magic_caches=MagicCacheConfig(enabled=False),
        )
        machine = Machine(config)
        result = machine.run([iter(s) for s in self._migratory_workload()])
        machine.check_directory_invariants()
        return machine, result

    def test_migratory_machine_runs_and_detects(self):
        machine, _ = self._run("migratory")
        grants = sum(n.engine.migratory_grants for n in machine.nodes)
        assert grants > 0

    def test_migratory_protocol_reduces_messages(self):
        base_machine, base = self._run("base")
        mig_machine, mig = self._run("migratory")
        assert mig.network_messages < base.network_messages

    def test_migratory_protocol_not_slower(self):
        _, base = self._run("base")
        _, mig = self._run("migratory")
        assert mig.execution_time <= base.execution_time * 1.02

    def test_same_final_owner(self):
        base_machine, _ = self._run("base")
        mig_machine, _ = self._run("migratory")
        for line in range(0, 8 * 128, 128):
            b = base_machine.nodes[0].directory.entry(line)
            m = mig_machine.nodes[0].directory.entry(line)
            assert b.owner == m.owner
            assert b.dirty == m.dirty

    def test_config_validation(self):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            flash_config(4).with_changes(protocol="token")
