"""Tests for the PP ISA, assembler, scheduler, emulator and lowering."""

import pytest

from repro.common.errors import PPError
from repro.pp.assembler import assemble
from repro.pp.emulator import PPEmulator
from repro.pp.isa import Instruction
from repro.pp.lowering import lower_text
from repro.pp.schedule import schedule_pairs


def run_asm(text, regs=None, memory=None):
    instructions = assemble(text)
    schedule = schedule_pairs(instructions)
    emu = PPEmulator()
    for addr, value in (memory or {}).items():
        emu.poke(addr, value)
    stats = emu.run(schedule, regs or {})
    return emu, stats


class TestAssembler:
    def test_basic_program(self):
        instrs = assemble("addi r1, r0, 5\ndone\n")
        assert instrs[0].op == "addi" and instrs[0].imm == 5

    def test_labels_resolved(self):
        instrs = assemble("""
            beq r0, r0, end
            addi r1, r0, 1
        end:
            done
        """)
        assert instrs[0].target == 2

    def test_comments_ignored(self):
        instrs = assemble("addi r1, r0, 1  # a comment\ndone")
        assert len(instrs) == 2

    def test_memory_operand_syntax(self):
        instrs = assemble("lw r3, -8(r6)\ndone")
        assert instrs[0].imm == -8 and instrs[0].rs == 6

    def test_unknown_opcode_rejected(self):
        with pytest.raises(PPError):
            assemble("frobnicate r1, r2\ndone")

    def test_undefined_label_rejected(self):
        with pytest.raises(PPError):
            assemble("j nowhere\ndone")

    def test_missing_done_rejected(self):
        with pytest.raises(PPError):
            assemble("addi r1, r0, 1")

    def test_duplicate_label_rejected(self):
        with pytest.raises(PPError):
            assemble("x:\nx:\ndone")


class TestEmulatorSemantics:
    def test_arithmetic(self):
        emu, _ = run_asm("""
            addi r1, r0, 7
            addi r2, r0, 3
            add  r3, r1, r2
            sub  r4, r1, r2
            sw   r3, 0(r0)
            sw   r4, 8(r0)
            done
        """)
        assert emu.peek(0) == 10 and emu.peek(8) == 4

    def test_logic_and_shifts(self):
        emu, _ = run_asm("""
            addi r1, r0, 0xF0
            andi r2, r1, 0x3C
            ori  r3, r1, 0x0F
            xori r4, r1, 0xFF
            sll  r5, r1, 4
            srl  r6, r1, 4
            sw   r2, 0(r0)
            sw   r3, 8(r0)
            sw   r4, 16(r0)
            sw   r5, 24(r0)
            sw   r6, 32(r0)
            done
        """)
        assert emu.peek(0) == 0x30
        assert emu.peek(8) == 0xFF
        assert emu.peek(16) == 0x0F
        assert emu.peek(24) == 0xF00
        assert emu.peek(32) == 0x0F

    def test_r0_hardwired_zero(self):
        emu, _ = run_asm("""
            addi r0, r0, 99
            sw   r0, 0(r0)
            done
        """)
        assert emu.peek(0) == 0

    def test_branches(self):
        emu, _ = run_asm("""
            addi r1, r0, 3
        loop:
            addi r2, r2, 10
            addi r1, r1, -1
            bne  r1, r0, loop
            sw   r2, 0(r0)
            done
        """)
        assert emu.peek(0) == 30

    def test_bitfield_extract_insert(self):
        emu, _ = run_asm("""
            lui   r1, 0x1234
            ori   r1, r1, 0x5678
            bfext r2, r1, 8, 8
            addi  r3, r0, 0xAB
            bfins r1, r3, 16, 8
            sw    r2, 0(r0)
            sw    r1, 8(r0)
            done
        """)
        assert emu.peek(0) == 0x56
        assert emu.peek(8) == 0x12AB5678

    def test_branch_on_bit(self):
        emu, _ = run_asm("""
            addi r1, r0, 4      # bit 2 set
            bbs  r1, 2, yes
            addi r2, r0, 1
            j    end
        yes:
            addi r2, r0, 2
        end:
            sw   r2, 0(r0)
            done
        """)
        assert emu.peek(0) == 2

    def test_find_first_set(self):
        emu, _ = run_asm("""
            addi r1, r0, 0x50
            ffs  r2, r1
            ffs  r3, r0
            sw   r2, 0(r0)
            sw   r3, 8(r0)
            done
        """)
        assert emu.peek(0) == 4
        assert emu.peek(8) == 64  # no bit set

    def test_send_recorded(self):
        _, stats = run_asm("""
            addi r1, r0, 0x42
            addi r2, r0, 2
            send r1, r2
            done
        """)
        assert stats.sends == [(0x42, 2)]

    def test_runaway_handler_caught(self):
        with pytest.raises(PPError):
            run_asm("loop:\nj loop\ndone")

    def test_memory_touch_tracking(self):
        _, stats = run_asm("lw r1, 0(r0)\nsw r1, 128(r0)\ndone")
        assert stats.touched == [0, 128]
        assert stats.loads == 1 and stats.stores == 1


class TestScheduler:
    def test_independent_instructions_pair(self):
        instrs = assemble("""
            addi r1, r0, 1
            addi r2, r0, 2
            done
        """)
        schedule = schedule_pairs(instrs)
        assert schedule.pairs[0].non_nop_count == 2

    def test_dependent_instructions_split(self):
        instrs = assemble("""
            addi r1, r0, 1
            addi r2, r1, 1
            done
        """)
        schedule = schedule_pairs(instrs)
        assert schedule.pairs[0].second is None

    def test_single_issue_mode(self):
        instrs = assemble("""
            addi r1, r0, 1
            addi r2, r0, 2
            addi r3, r0, 3
            done
        """)
        dual = schedule_pairs(instrs, dual_issue=True)
        single = schedule_pairs(instrs, dual_issue=False)
        assert single.static_pairs > dual.static_pairs
        assert all(p.second is None for p in single.pairs)

    def test_memory_ops_never_share_a_pair(self):
        instrs = assemble("""
            lw r1, 0(r0)
            lw r2, 8(r0)
            done
        """)
        schedule = schedule_pairs(instrs)
        for pair in schedule.pairs:
            mems = sum(1 for i in pair.instructions if i.is_memory)
            assert mems <= 1

    def test_branch_targets_start_pairs(self):
        instrs = assemble("""
            addi r1, r0, 3
        loop:
            addi r1, r1, -1
            addi r2, r2, 1
            bne  r1, r0, loop
            done
        """)
        schedule = schedule_pairs(instrs)
        target = next(i for i in instrs if i.op == "bne").target
        pair_idx = schedule.pair_of[target]
        # The target instruction is the first slot of its pair.
        assert schedule.pairs[pair_idx].first is instrs[target]

    def test_scheduling_preserves_semantics(self):
        text = """
            addi r1, r0, 10
            addi r2, r0, 20
            add  r3, r1, r2
            sll  r4, r3, 1
            sub  r5, r4, r1
            sw   r5, 0(r0)
            done
        """
        emu_dual = PPEmulator()
        emu_single = PPEmulator()
        instrs = assemble(text)
        emu_dual.run(schedule_pairs(instrs, dual_issue=True), {})
        emu_single.run(schedule_pairs(instrs, dual_issue=False), {})
        assert emu_dual.peek(0) == emu_single.peek(0) == 50


class TestLowering:
    CASES = [
        ("bfext", "addi r1, r0, 0x5678\nbfext r2, r1, 8, 8\nsw r2, 0(r0)\ndone", 0x56),
        ("bfins", "addi r1, r0, 0xFFFF\naddi r2, r0, 0xA\nbfins r1, r2, 4, 4\nsw r1, 0(r0)\ndone", 0xFFAF),
        ("bbs", "addi r1, r0, 8\nbbs r1, 3, t\naddi r2, r0, 1\nj e\nt:\naddi r2, r0, 2\ne:\nsw r2, 0(r0)\ndone", 2),
        ("bbc", "addi r1, r0, 8\nbbc r1, 0, t\naddi r2, r0, 1\nj e\nt:\naddi r2, r0, 2\ne:\nsw r2, 0(r0)\ndone", 2),
        ("ffs", "addi r1, r0, 0x20\nffs r2, r1\nsw r2, 0(r0)\ndone", 5),
    ]

    @pytest.mark.parametrize("name,text,expected", CASES)
    def test_lowered_code_equivalent(self, name, text, expected):
        for source in (text, lower_text(text)):
            emu, _ = run_asm(source)
            assert emu.peek(0) == expected, f"{name} mismatch"

    def test_lowered_code_has_no_specials(self):
        text = "bfext r1, r2, 4, 4\nbbs r1, 0, x\nx:\nffs r3, r1\ndone"
        lowered = lower_text(text)
        instrs = assemble(lowered)
        assert not any(i.is_special for i in instrs)

    def test_lowered_code_is_longer(self):
        text = "bfext r1, r2, 4, 4\nbfins r3, r1, 8, 4\nffs r4, r3\ndone"
        assert len(assemble(lower_text(text))) > len(assemble(text))

    def test_reserved_registers_enforced(self):
        with pytest.raises(PPError):
            lower_text("addi r28, r0, 1\ndone")
