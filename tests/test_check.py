"""Coherence model checker: oracle, invariants, shrinking, CLI.

The checker's own correctness is established two ways: clean protocols
pass under heavy contention (no false positives across protocol x machine
x fusion combinations), and each deliberately-seeded protocol mutation is
caught and shrunk to a small replayable reproducer (no false negatives
for the bug classes the oracle claims to cover).
"""

import json

import pytest

from repro.apps.randmem import RandMemWorkload
from repro.check import (
    CheckSpec, iter_specs, load_reproducer, replay, run_check,
    save_reproducer, shrink,
)
from repro.check.oracle import CoherenceOracle
from repro.check.workload import _build_machine, _workload
from repro.common.errors import CoherenceViolation

MUTATIONS = ("drop_sharer", "stale_reply", "skip_inval", "no_ack")


class TestCleanMatrix:
    """A correct protocol never trips the checker."""

    @pytest.mark.parametrize("kind", ["flash", "ideal"])
    @pytest.mark.parametrize("protocol", ["base", "migratory", "transfer"])
    def test_clean_pass(self, kind, protocol):
        report = run_check(CheckSpec(seed=0, ops=150, nodes=4, kind=kind,
                                     protocol=protocol))
        assert report.ok, f"{kind}/{protocol}: {report.error}"
        assert report.checked_ops > 150          # every cpu contributes
        assert report.quiesce_checks >= 2        # mid-run barriers walked

    def test_clean_under_faults(self):
        report = run_check(CheckSpec(seed=1, ops=200, nodes=4,
                                     fault_rate=0.05))
        assert report.ok, report.error
        assert report.checked_ops > 200

    def test_fusion_modes_agree(self):
        fused = run_check(CheckSpec(seed=0, ops=150, nodes=4, fusion=True))
        stepwise = run_check(CheckSpec(seed=0, ops=150, nodes=4,
                                       fusion=False))
        assert fused.ok and stepwise.ok
        assert fused.checked_ops == stepwise.checked_ops
        assert fused.execution_time == stepwise.execution_time


class TestObserverPurity:
    """Attaching the oracle must not change simulated behaviour."""

    def test_checked_run_timing_identical(self):
        spec = CheckSpec(seed=2, ops=150, nodes=4)

        plain = _build_machine(spec)
        plain_result = plain.run(_workload(spec).build(plain.config))

        checked = _build_machine(spec)
        oracle = CoherenceOracle(checked)
        oracle.attach(checked)
        checked_result = checked.run(_workload(spec).build(checked.config))

        assert checked_result.execution_time == plain_result.execution_time
        assert checked_result.total_reads == plain_result.total_reads
        assert checked_result.total_writes == plain_result.total_writes
        assert oracle.checked_ops > 0


class TestMutationsCaught:
    """Every seeded protocol bug is detected and shrinks to a small,
    replayable reproducer — the checker's self-test."""

    @pytest.mark.parametrize("mutation", MUTATIONS)
    def test_detected_and_shrunk(self, mutation, tmp_path):
        spec = CheckSpec(seed=0, ops=400, nodes=4, mutation=mutation)
        report = run_check(spec)
        assert not report.ok, f"{mutation} escaped the checker"
        if mutation == "no_ack":
            assert report.failure_kind == "stall"   # writer wedges forever
        else:
            assert report.failure_kind == "violation"
            assert report.violation is not None

        best, attempts = shrink(report)
        assert not best.ok
        assert best.spec.ops <= spec.ops // 4, (
            f"{mutation}: shrunk reproducer still {best.spec.ops} ops")
        assert attempts > 0

        path = save_reproducer(best, spec, attempts, str(tmp_path))
        assert load_reproducer(path) == best.spec
        replayed = replay(path)
        assert not replayed.ok
        assert replayed.failure_kind == best.failure_kind

    def test_violation_carries_state_dump(self):
        report = run_check(CheckSpec(seed=0, ops=400, nodes=4,
                                     mutation="stale_reply"))
        assert report.failure_kind == "violation"
        dump = report.violation["dump"]
        assert "directory" in dump and "caches" in dump
        assert "shadow" in dump or "line" in dump


class TestQuiesceInvariants:
    def test_assert_quiesced_clean(self):
        spec = CheckSpec(seed=0, ops=100, nodes=4)
        machine = _build_machine(spec)
        machine.run(_workload(spec).build(machine.config))
        machine.assert_quiesced()   # must not raise

    def test_assert_quiesced_flags_planted_pending(self):
        spec = CheckSpec(seed=0, ops=50, nodes=4)
        machine = _build_machine(spec)
        machine.run(_workload(spec).build(machine.config))
        node = machine.nodes[0]
        line = next(iter(node.directory._entries), None)
        if line is None:   # node 0 saw no home traffic: plant an entry
            node.directory.entry(0)
            line = 0
        node.directory.entry(line).pending = True
        with pytest.raises(CoherenceViolation):
            machine.assert_quiesced()


class TestSpecPlumbing:
    def test_spec_roundtrip(self):
        spec = CheckSpec(seed=7, ops=99, nodes=8, protocol="migratory",
                         fault_rate=0.05, mutation="no_ack")
        assert CheckSpec.from_dict(spec.to_dict()) == spec

    def test_iter_specs_skips_invalid_fault_combos(self):
        specs = list(iter_specs([0], ops=10, nodes=2, lines=2,
                                protocols=("base",), kinds=("flash", "ideal"),
                                fusion_modes=(True,), fault_rates=(0.0, 0.1)))
        assert all(s.kind == "flash" for s in specs if s.fault_rate)
        assert {s.kind for s in specs} == {"flash", "ideal"}

    def test_validate_rejects_faults_on_ideal(self):
        with pytest.raises(ValueError):
            CheckSpec(kind="ideal", fault_rate=0.1).validate()


class TestRandMemWorkload:
    def test_deterministic_streams(self):
        from repro.common.params import flash_config

        config = flash_config(4, cache_size=4096)
        first = [list(s) for s in RandMemWorkload(seed=3, ops=60).build(config)]
        second = [list(s) for s in RandMemWorkload(seed=3, ops=60).build(config)]
        assert first == second
        assert len(first) == 4
        other = [list(s) for s in RandMemWorkload(seed=4, ops=60).build(config)]
        assert first != other

    def test_transfer_lane_emits_sends(self):
        from repro.common.params import flash_config

        config = flash_config(4, cache_size=4096)
        streams = RandMemWorkload(seed=0, ops=250,
                                  transfers=True).build(config)
        kinds = {op[0] for stream in streams for op in stream}
        assert {"r", "w", "b", "s", "v"} <= kinds


class TestCheckCLI:
    def test_clean_sweep_exits_zero(self, capsys):
        from repro.harness.__main__ import main

        code = main(["check", "--seed", "0", "--ops", "100",
                     "--protocols", "base", "--kinds", "flash",
                     "--fusion", "fused", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"
        assert payload["failed"] == 0
        assert payload["checked_ops"] > 0

    def test_mutated_sweep_fails_with_artifact(self, capsys, tmp_path):
        from repro.harness.__main__ import main

        code = main(["check", "--seed", "0", "--ops", "400",
                     "--protocols", "base", "--kinds", "flash",
                     "--fusion", "fused", "--mutate", "skip_inval",
                     "--out-dir", str(tmp_path), "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "fail"
        (failing,) = [r for r in payload["reports"] if not r["ok"]]
        shrunk = failing["shrunk"]
        assert shrunk["spec"]["ops"] <= 100
        replayed = replay(shrunk["artifact"])
        assert not replayed.ok


class TestFaultsCLI:
    def test_raising_run_exits_nonzero(self, capsys, monkeypatch):
        from repro.harness import __main__ as harness_main

        calls = []

        def fake_run_app(app, **kwargs):
            calls.append(kwargs)
            if kwargs.get("faults") is not None:
                raise RuntimeError("injected wedge")

            class _Result:
                execution_time = 100.0
            return _Result()

        monkeypatch.setattr(harness_main, "run_app", fake_run_app)
        code = harness_main.main(["faults", "fft", "--rates", "0.5",
                                  "--fast", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "fail"
        assert payload["failures"][0]["error_type"] == "RuntimeError"
        assert len(calls) == 2   # clean + one faulted

    def test_clean_sweep_exits_zero(self, capsys, monkeypatch):
        from repro.harness import __main__ as harness_main

        class _Result:
            execution_time = 100.0
            fault_counters = None

        monkeypatch.setattr(harness_main, "run_app",
                            lambda app, **kwargs: _Result())
        code = harness_main.main(["faults", "fft", "--rates", "0.1",
                                  "--fast", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"
        assert payload["failures"] == []
