"""Integration tests: whole-machine coherence across processors."""

import pytest

from repro.caches.setassoc import CacheState
from repro.common.params import MagicCacheConfig, flash_config, ideal_config
from repro.machine import Machine

KB = 1024
MB = 1024 * 1024
LINE = 128


def build(kind="flash", n_procs=4, cache=64 * KB):
    make = flash_config if kind == "flash" else ideal_config
    config = make(n_procs=n_procs, cache_size=cache)
    config = config.with_changes(magic_caches=MagicCacheConfig(enabled=False))
    return Machine(config)


def run(machine, streams):
    result = machine.run([iter(s) for s in streams])
    machine.check_directory_invariants()
    # End-of-run leak detection: directory vs cache tags vs MSHRs vs the
    # link store must reconcile exactly once the schedule drains.
    machine.assert_quiesced()
    return result


@pytest.mark.parametrize("kind", ["flash", "ideal"])
class TestSharingPatterns:
    def test_producer_consumer(self, kind):
        machine = build(kind)
        streams = [
            [("w", 0), ("c", 500), ("b", "x")],
            [("b", "x"), ("r", 0)],
            [("c", 1), ("b", "x")],
            [("c", 1), ("b", "x")],
        ]
        run(machine, streams)
        # Producer downgraded to SHARED by the consumer's read.
        assert machine.nodes[0].cpu.cache.state_of(0) == CacheState.SHARED
        assert machine.nodes[1].cpu.cache.state_of(0) == CacheState.SHARED

    def test_write_invalidates_all_readers(self, kind):
        machine = build(kind)
        streams = [
            [("r", 0), ("b", "x"), ("c", 1000)],
            [("r", 0), ("b", "x"), ("c", 1000)],
            [("r", 0), ("b", "x"), ("c", 1000)],
            [("b", "x"), ("w", 0), ("c", 1000)],
        ]
        run(machine, streams)
        for reader in range(3):
            assert machine.nodes[reader].cpu.cache.state_of(0) == CacheState.INVALID
        assert machine.nodes[3].cpu.cache.state_of(0) == CacheState.DIRTY

    def test_migratory_line(self, kind):
        """Each processor in turn reads and writes the same line."""
        machine = build(kind)
        streams = []
        for p in range(4):
            ops = [("c", 1)]
            for turn in range(4):
                if turn == p:
                    ops += [("r", 0), ("w", 0)]
                ops += [("b", ("turn", turn))]
            streams.append(ops)
        run(machine, streams)
        entry = machine.nodes[0].directory.entry(0)
        assert entry.dirty and entry.owner == 3

    def test_false_sharing_two_writers(self, kind):
        """Two processors write different words of the same line."""
        machine = build(kind)
        streams = [
            [("w", 0), ("c", 50)] * 10,
            [("w", 64), ("c", 50)] * 10,
            [("c", 1)],
            [("c", 1)],
        ]
        run(machine, streams)
        entry = machine.nodes[0].directory.entry(0)
        assert entry.dirty  # one of the two ends up the owner
        assert entry.owner in (0, 1)

    def test_remote_home_three_hop(self, kind):
        """Line homed at node 1, written by node 2, read by node 3."""
        machine = build(kind)
        addr = machine.config.memory_bytes_per_node  # homed at node 1
        streams = [
            [("c", 1), ("b", "w"), ("b", "r")],
            [("c", 1), ("b", "w"), ("b", "r")],
            [("r", addr), ("w", addr), ("c", 500), ("b", "w"), ("b", "r")],
            [("b", "w"), ("r", addr), ("b", "r")],
        ]
        run(machine, streams)
        sharers = machine.nodes[1].directory.sharers(addr)
        assert sorted(sharers) == [2, 3]

    def test_writeback_then_refetch(self, kind):
        machine = build(kind, cache=2 * KB)  # tiny cache forces eviction
        n_sets = machine.nodes[0].cpu.cache.n_sets
        conflict = [LINE * n_sets * (i + 1) for i in range(3)]
        streams = [
            [("w", 0)] + [("r", a) for a in conflict] + [("c", 2000), ("r", 0)],
            [("c", 1)], [("c", 1)], [("c", 1)],
        ]
        run(machine, streams)
        assert machine.nodes[0].cpu.cache.state_of(0) == CacheState.SHARED

    def test_many_lines_all_nodes(self, kind):
        machine = build(kind)
        mem = machine.config.memory_bytes_per_node
        streams = []
        for p in range(4):
            ops = []
            for target in range(4):
                for i in range(8):
                    ops.append(("r", target * mem + i * LINE))
                    if (i + p) % 2:
                        ops.append(("w", target * mem + i * LINE))
            ops.append(("b", "end"))
            streams.append(ops)
        result = run(machine, streams)
        assert result.execution_time > 0


@pytest.mark.parametrize("kind", ["flash", "ideal"])
class TestResultAccounting:
    def test_miss_classification_totals(self, kind):
        machine = build(kind)
        mem = machine.config.memory_bytes_per_node
        streams = [
            [("r", 0), ("r", mem), ("b", "e")],
            [("b", "e")], [("b", "e")], [("b", "e")],
        ]
        result = run(machine, streams)
        assert sum(result.miss_classes.values()) == result.read_misses

    def test_execution_time_is_max_finish(self, kind):
        machine = build(kind)
        streams = [[("c", 100)], [("c", 900)], [("c", 1)], [("c", 1)]]
        result = run(machine, streams)
        assert result.execution_time == 900


class TestFlashVsIdeal:
    def test_flash_never_faster_on_miss_heavy_workload(self):
        mem = 64 * MB
        streams_def = []
        for p in range(4):
            ops = [("r", ((p + t) % 4) * mem + i * LINE)
                   for t in range(4) for i in range(16)]
            ops.append(("b", "end"))
            streams_def.append(ops)
        times = {}
        for kind in ("flash", "ideal"):
            machine = build(kind)
            times[kind] = run(machine, [list(s) for s in streams_def]).execution_time
        assert times["flash"] > times["ideal"]

    def test_compute_bound_workload_nearly_identical(self):
        streams = [[("c", 10000), ("r", p * LINE)] for p in range(4)]
        times = {}
        for kind in ("flash", "ideal"):
            machine = build(kind)
            times[kind] = run(machine, [list(s) for s in streams]).execution_time
        assert times["flash"] / times["ideal"] < 1.01


class TestGoldenHashes:
    """Byte-identical determinism across the full app/machine matrix.

    Every (app, kind) combination at the fast workload sizes must serialize
    to exactly the SHA-256 recorded from the pre-optimization tree.  Any
    change to simulated timing, event ordering, or statistics — however
    small — flips the hash.  Performance work must keep these green; a
    legitimate model change must re-record them (and say so in the PR).
    """

    FAST_SIZES = {
        "fft": dict(points=1024),
        "lu": dict(matrix=64, block=16),
        "radix": dict(keys=4096, radix=64, key_bits=12),
        "ocean": dict(grid=18, n_grids=3, sweeps=1),
        "barnes": dict(bodies=128, iterations=1),
        "mp3d": dict(particles=1024, steps=2),
        "os": dict(tasks_per_proc=1, syscalls_per_task=20),
    }

    GOLDEN = {
        "barnes/flash": "58c64f2bc335fa4b06c9efc43c14e0ddcb776f013e93f6406b7b35714665a21d",
        "barnes/ideal": "a9a854510852896a5f4de97b0813b7b3c1e0a1943a1f742dccab8cebd5a756dc",
        "fft/flash": "6701b38b7f14234bdb29a8ed051fb8ec5fa3f67e235c7a8c730ad6030c5d8524",
        "fft/ideal": "57d90c5ebcd0e18e29e24ea09bfe383fb842840018180d2209653821f2bd038b",
        "lu/flash": "d51e3b4885fc2ffef0cb7e74a4c741051bc479d83e73e63f4c3e0c7be2af9832",
        "lu/ideal": "0dbdd8ba0f1cf4c3bda45d38005d0ef3b78b6b64068eb6ef2b68f42075321836",
        "mp3d/flash": "4a218854278ddd7c4483a3c4c3990749d16dba9745eef2191c9cde2191d14e54",
        "mp3d/ideal": "e81e9e2816434347af6b78ee5f6f858102d6b05e9082ff0222bff4b00a289525",
        "ocean/flash": "eb2e3a86afde7f5b2a06482a4210fbc378a4fd0d321262d44b5717fa511e5c5b",
        "ocean/ideal": "001d2d48c0266ea22bfd613679216515c1447d2790e103ec3f076bac73214ca2",
        "os/flash": "becb708f0b727a4038f85f9d64e5a6d3990819856d6f41f2746748aa86e3e67e",
        "os/ideal": "cdf8f8df988f204475c8e3a14e419026237c620aedf0cd080ed33473f86e4f23",
        "radix/flash": "146ebb977ae59ad7a9ff9daabcf95be0c93bc7ae661e45d3dc4cac582aeb2397",
        "radix/ideal": "14ab174513678b6be0887c73c63c1b06eaf544ff37da0974026e40c69b7e0426",
    }

    @pytest.mark.parametrize("combo", sorted(GOLDEN))
    def test_serialized_result_matches_golden(self, combo):
        import hashlib

        from repro.harness import experiments

        app, kind = combo.split("/")
        spec = experiments.normalize_spec(
            app, kind=kind, regime="large",
            workload_overrides=self.FAST_SIZES[app])
        result = experiments._execute(spec)  # uncached: always simulate
        digest = hashlib.sha256(result.to_json().encode()).hexdigest()
        assert digest == self.GOLDEN[combo], (
            f"{combo}: simulation output drifted from the golden hash -- "
            "an optimization changed observable behavior")
