"""Integration tests: whole-machine coherence across processors."""

import pytest

from repro.caches.setassoc import CacheState
from repro.common.params import MagicCacheConfig, flash_config, ideal_config
from repro.machine import Machine

KB = 1024
MB = 1024 * 1024
LINE = 128


def build(kind="flash", n_procs=4, cache=64 * KB):
    make = flash_config if kind == "flash" else ideal_config
    config = make(n_procs=n_procs, cache_size=cache)
    config = config.with_changes(magic_caches=MagicCacheConfig(enabled=False))
    return Machine(config)


def run(machine, streams):
    result = machine.run([iter(s) for s in streams])
    machine.check_directory_invariants()
    return result


@pytest.mark.parametrize("kind", ["flash", "ideal"])
class TestSharingPatterns:
    def test_producer_consumer(self, kind):
        machine = build(kind)
        streams = [
            [("w", 0), ("c", 500), ("b", "x")],
            [("b", "x"), ("r", 0)],
            [("c", 1), ("b", "x")],
            [("c", 1), ("b", "x")],
        ]
        run(machine, streams)
        # Producer downgraded to SHARED by the consumer's read.
        assert machine.nodes[0].cpu.cache.state_of(0) == CacheState.SHARED
        assert machine.nodes[1].cpu.cache.state_of(0) == CacheState.SHARED

    def test_write_invalidates_all_readers(self, kind):
        machine = build(kind)
        streams = [
            [("r", 0), ("b", "x"), ("c", 1000)],
            [("r", 0), ("b", "x"), ("c", 1000)],
            [("r", 0), ("b", "x"), ("c", 1000)],
            [("b", "x"), ("w", 0), ("c", 1000)],
        ]
        run(machine, streams)
        for reader in range(3):
            assert machine.nodes[reader].cpu.cache.state_of(0) == CacheState.INVALID
        assert machine.nodes[3].cpu.cache.state_of(0) == CacheState.DIRTY

    def test_migratory_line(self, kind):
        """Each processor in turn reads and writes the same line."""
        machine = build(kind)
        streams = []
        for p in range(4):
            ops = [("c", 1)]
            for turn in range(4):
                if turn == p:
                    ops += [("r", 0), ("w", 0)]
                ops += [("b", ("turn", turn))]
            streams.append(ops)
        run(machine, streams)
        entry = machine.nodes[0].directory.entry(0)
        assert entry.dirty and entry.owner == 3

    def test_false_sharing_two_writers(self, kind):
        """Two processors write different words of the same line."""
        machine = build(kind)
        streams = [
            [("w", 0), ("c", 50)] * 10,
            [("w", 64), ("c", 50)] * 10,
            [("c", 1)],
            [("c", 1)],
        ]
        run(machine, streams)
        entry = machine.nodes[0].directory.entry(0)
        assert entry.dirty  # one of the two ends up the owner
        assert entry.owner in (0, 1)

    def test_remote_home_three_hop(self, kind):
        """Line homed at node 1, written by node 2, read by node 3."""
        machine = build(kind)
        addr = machine.config.memory_bytes_per_node  # homed at node 1
        streams = [
            [("c", 1), ("b", "w"), ("b", "r")],
            [("c", 1), ("b", "w"), ("b", "r")],
            [("r", addr), ("w", addr), ("c", 500), ("b", "w"), ("b", "r")],
            [("b", "w"), ("r", addr), ("b", "r")],
        ]
        run(machine, streams)
        sharers = machine.nodes[1].directory.sharers(addr)
        assert sorted(sharers) == [2, 3]

    def test_writeback_then_refetch(self, kind):
        machine = build(kind, cache=2 * KB)  # tiny cache forces eviction
        n_sets = machine.nodes[0].cpu.cache.n_sets
        conflict = [LINE * n_sets * (i + 1) for i in range(3)]
        streams = [
            [("w", 0)] + [("r", a) for a in conflict] + [("c", 2000), ("r", 0)],
            [("c", 1)], [("c", 1)], [("c", 1)],
        ]
        run(machine, streams)
        assert machine.nodes[0].cpu.cache.state_of(0) == CacheState.SHARED

    def test_many_lines_all_nodes(self, kind):
        machine = build(kind)
        mem = machine.config.memory_bytes_per_node
        streams = []
        for p in range(4):
            ops = []
            for target in range(4):
                for i in range(8):
                    ops.append(("r", target * mem + i * LINE))
                    if (i + p) % 2:
                        ops.append(("w", target * mem + i * LINE))
            ops.append(("b", "end"))
            streams.append(ops)
        result = run(machine, streams)
        assert result.execution_time > 0


@pytest.mark.parametrize("kind", ["flash", "ideal"])
class TestResultAccounting:
    def test_miss_classification_totals(self, kind):
        machine = build(kind)
        mem = machine.config.memory_bytes_per_node
        streams = [
            [("r", 0), ("r", mem), ("b", "e")],
            [("b", "e")], [("b", "e")], [("b", "e")],
        ]
        result = run(machine, streams)
        assert sum(result.miss_classes.values()) == result.read_misses

    def test_execution_time_is_max_finish(self, kind):
        machine = build(kind)
        streams = [[("c", 100)], [("c", 900)], [("c", 1)], [("c", 1)]]
        result = run(machine, streams)
        assert result.execution_time == 900


class TestFlashVsIdeal:
    def test_flash_never_faster_on_miss_heavy_workload(self):
        mem = 64 * MB
        streams_def = []
        for p in range(4):
            ops = [("r", ((p + t) % 4) * mem + i * LINE)
                   for t in range(4) for i in range(16)]
            ops.append(("b", "end"))
            streams_def.append(ops)
        times = {}
        for kind in ("flash", "ideal"):
            machine = build(kind)
            times[kind] = run(machine, [list(s) for s in streams_def]).execution_time
        assert times["flash"] > times["ideal"]

    def test_compute_bound_workload_nearly_identical(self):
        streams = [[("c", 10000), ("r", p * LINE)] for p in range(4)]
        times = {}
        for kind in ("flash", "ideal"):
            machine = build(kind)
            times[kind] = run(machine, [list(s) for s in streams]).execution_time
        assert times["flash"] / times["ideal"] < 1.01
