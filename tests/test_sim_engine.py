"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import (
    AllOf, AnyOf, Environment, Event, Process, SimulationError, Timeout,
)


@pytest.fixture
def env():
    return Environment()


class TestTimeout:
    def test_advances_clock(self, env):
        def proc():
            yield env.timeout(10)
            return env.now

        assert env.run_process(proc()) == 10

    def test_zero_delay(self, env):
        def proc():
            yield env.timeout(0)
            return env.now

        assert env.run_process(proc()) == 0

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_not_triggered_before_fire(self, env):
        t = env.timeout(5)
        assert not t.triggered
        env.run()
        assert t.triggered

    def test_carries_value(self, env):
        def proc():
            value = yield env.timeout(3, value="hello")
            return value

        assert env.run_process(proc()) == "hello"

    def test_fractional_delays(self, env):
        def proc():
            yield env.timeout(0.25)
            yield env.timeout(0.5)
            return env.now

        assert env.run_process(proc()) == 0.75


class TestEvent:
    def test_succeed_resumes_waiter(self, env):
        event = env.event()

        def waiter():
            value = yield event
            return value

        def firer():
            yield env.timeout(7)
            event.succeed(42)

        proc = env.process(waiter())
        env.process(firer())
        env.run()
        assert proc.value == 42
        assert env.now == 7

    def test_double_succeed_rejected(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_value_before_trigger_rejected(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_wait_on_already_fired_event(self, env):
        event = env.event()
        event.succeed("x")

        def proc():
            value = yield event
            return value

        assert env.run_process(proc()) == "x"

    def test_fail_raises_in_waiter(self, env):
        event = env.event()

        def waiter():
            try:
                yield event
            except ValueError:
                return "caught"
            return "missed"

        proc = env.process(waiter())
        event.fail(ValueError("boom"))
        env.run()
        assert proc.value == "caught"

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")


class TestProcess:
    def test_return_value(self, env):
        def proc():
            yield env.timeout(1)
            return "done"

        assert env.run_process(proc()) == "done"

    def test_process_waits_on_process(self, env):
        def inner():
            yield env.timeout(5)
            return 99

        def outer():
            value = yield env.process(inner())
            return (env.now, value)

        assert env.run_process(outer()) == (5, 99)

    def test_unhandled_process_error_surfaces(self, env):
        def bad():
            yield env.timeout(1)
            raise RuntimeError("die")

        env.process(bad())
        with pytest.raises(RuntimeError, match="die"):
            env.run()

    def test_observed_process_error_propagates_to_waiter(self, env):
        def bad():
            yield env.timeout(1)
            raise RuntimeError("die")

        def outer():
            try:
                yield env.process(bad())
            except RuntimeError:
                return "handled"

        assert env.run_process(outer()) == "handled"

    def test_yielding_non_event_raises(self, env):
        def proc():
            yield 42

        env.process(proc())
        with pytest.raises(SimulationError):
            env.run()

    def test_requires_generator(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)


class TestComposites:
    def test_all_of_waits_for_all(self, env):
        def proc():
            values = yield env.all_of([env.timeout(3, "a"), env.timeout(9, "b")])
            return (env.now, values)

        assert env.run_process(proc()) == (9, ["a", "b"])

    def test_all_of_empty(self, env):
        def proc():
            values = yield env.all_of([])
            return values

        assert env.run_process(proc()) == []

    def test_any_of_returns_first(self, env):
        def proc():
            index, value = yield env.any_of(
                [env.timeout(9, "slow"), env.timeout(2, "fast")]
            )
            return (env.now, index, value)

        assert env.run_process(proc()) == (2, 1, "fast")

    def test_any_of_empty_rejected(self, env):
        with pytest.raises(SimulationError):
            env.any_of([])


class TestDeterminism:
    def test_same_time_fifo_order(self, env):
        order = []

        def proc(tag):
            yield env.timeout(5)
            order.append(tag)

        for tag in ("a", "b", "c"):
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_run_until_stops_clock(self, env):
        def proc():
            yield env.timeout(100)

        env.process(proc())
        assert env.run(until=30) == 30

    def test_run_returns_final_time(self, env):
        def proc():
            yield env.timeout(17)

        env.process(proc())
        assert env.run() == 17
