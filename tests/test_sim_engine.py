"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import (
    AllOf, AnyOf, Environment, Event, Process, SimulationError, Timeout,
)


@pytest.fixture
def env():
    return Environment()


class TestTimeout:
    def test_advances_clock(self, env):
        def proc():
            yield env.timeout(10)
            return env.now

        assert env.run_process(proc()) == 10

    def test_zero_delay(self, env):
        def proc():
            yield env.timeout(0)
            return env.now

        assert env.run_process(proc()) == 0

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_not_triggered_before_fire(self, env):
        t = env.timeout(5)
        assert not t.triggered
        env.run()
        assert t.triggered

    def test_carries_value(self, env):
        def proc():
            value = yield env.timeout(3, value="hello")
            return value

        assert env.run_process(proc()) == "hello"

    def test_fractional_delays(self, env):
        def proc():
            yield env.timeout(0.25)
            yield env.timeout(0.5)
            return env.now

        assert env.run_process(proc()) == 0.75


class TestEvent:
    def test_succeed_resumes_waiter(self, env):
        event = env.event()

        def waiter():
            value = yield event
            return value

        def firer():
            yield env.timeout(7)
            event.succeed(42)

        proc = env.process(waiter())
        env.process(firer())
        env.run()
        assert proc.value == 42
        assert env.now == 7

    def test_double_succeed_rejected(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_value_before_trigger_rejected(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_wait_on_already_fired_event(self, env):
        event = env.event()
        event.succeed("x")

        def proc():
            value = yield event
            return value

        assert env.run_process(proc()) == "x"

    def test_fail_raises_in_waiter(self, env):
        event = env.event()

        def waiter():
            try:
                yield event
            except ValueError:
                return "caught"
            return "missed"

        proc = env.process(waiter())
        event.fail(ValueError("boom"))
        env.run()
        assert proc.value == "caught"

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")


class TestProcess:
    def test_return_value(self, env):
        def proc():
            yield env.timeout(1)
            return "done"

        assert env.run_process(proc()) == "done"

    def test_process_waits_on_process(self, env):
        def inner():
            yield env.timeout(5)
            return 99

        def outer():
            value = yield env.process(inner())
            return (env.now, value)

        assert env.run_process(outer()) == (5, 99)

    def test_unhandled_process_error_surfaces(self, env):
        def bad():
            yield env.timeout(1)
            raise RuntimeError("die")

        env.process(bad())
        with pytest.raises(RuntimeError, match="die"):
            env.run()

    def test_observed_process_error_propagates_to_waiter(self, env):
        def bad():
            yield env.timeout(1)
            raise RuntimeError("die")

        def outer():
            try:
                yield env.process(bad())
            except RuntimeError:
                return "handled"

        assert env.run_process(outer()) == "handled"

    def test_yielding_non_event_raises(self, env):
        def proc():
            yield 42

        env.process(proc())
        with pytest.raises(SimulationError):
            env.run()

    def test_requires_generator(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)


class TestComposites:
    def test_all_of_waits_for_all(self, env):
        def proc():
            values = yield env.all_of([env.timeout(3, "a"), env.timeout(9, "b")])
            return (env.now, values)

        assert env.run_process(proc()) == (9, ["a", "b"])

    def test_all_of_empty(self, env):
        def proc():
            values = yield env.all_of([])
            return values

        assert env.run_process(proc()) == []

    def test_any_of_returns_first(self, env):
        def proc():
            index, value = yield env.any_of(
                [env.timeout(9, "slow"), env.timeout(2, "fast")]
            )
            return (env.now, index, value)

        assert env.run_process(proc()) == (2, 1, "fast")

    def test_any_of_empty_rejected(self, env):
        with pytest.raises(SimulationError):
            env.any_of([])


class TestDeterminism:
    def test_same_time_fifo_order(self, env):
        order = []

        def proc(tag):
            yield env.timeout(5)
            order.append(tag)

        for tag in ("a", "b", "c"):
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_run_until_stops_clock(self, env):
        def proc():
            yield env.timeout(100)

        env.process(proc())
        assert env.run(until=30) == 30

    def test_run_returns_final_time(self, env):
        def proc():
            yield env.timeout(17)

        env.process(proc())
        assert env.run() == 17

    def test_run_until_advances_clock_past_drained_schedule(self, env):
        # Regression: when every event fires before `until`, the clock must
        # still advance to `until`, not stop at the last event time.
        def proc():
            yield env.timeout(17)

        env.process(proc())
        assert env.run(until=100) == 100
        assert env.now == 100

    def test_run_until_advances_clock_with_empty_schedule(self, env):
        assert env.run(until=42) == 42
        assert env.now == 42

    def test_run_until_resumable_after_drain(self, env):
        order = []

        def proc():
            yield env.timeout(5)
            order.append(env.now)

        env.process(proc())
        env.run(until=20)
        # New work scheduled after the horizon starts from the horizon time.
        def late():
            yield env.timeout(1)
            order.append(env.now)

        env.process(late())
        env.run()
        assert order == [5, 21]

    def test_same_time_heap_and_ready_interleave_in_schedule_order(self, env):
        # Zero-delay timeouts, event triggers, and already-fired waits at one
        # simulation time must fire in exactly the order they were scheduled,
        # even though they traverse different scheduler structures.
        order = []

        def proc():
            yield env.timeout(3)
            order.append("timeout-a")
            trigger = env.event()
            trigger.succeed(None)       # ready deque
            t = env.timeout(0)          # zero-delay fast path
            trigger.add_callback(lambda e: order.append("event"))
            t.add_callback(lambda e: order.append("timeout-0"))
            yield env.timeout(0)
            order.append("resume")

        env.process(proc())
        env.run()
        assert order == ["timeout-a", "event", "timeout-0", "resume"]

    def test_timeout_pool_recycles_only_unreferenced_timeouts(self, env):
        held = env.timeout(1)

        def proc():
            yield env.timeout(2)
            yield held
            assert held.triggered and held.value is None

        env.process(proc())
        env.run()
        # `held` is still referenced by this frame: it must not be in the pool.
        assert held not in env._timeout_pool
        # Pooled timeouts are re-armed, not stale.
        t = env.timeout(4)
        assert not t.triggered
        assert env.run() == env.now == 6
