"""Observability parity and profile attribution for the callback hot core.

The hot CPU / MAGIC / memory / network paths run as callback state machines
on the event kernel; every observability layer hooks those same paths.
Per-dimension parity already lives elsewhere (trace: ``test_trace.py``,
metrics: ``test_metrics.py``, watchdog: ``test_watchdog.py``).  This file
covers the combinations and the profiling story:

* **everything ON at once** — watchdog + tracer + metrics together must
  leave the core result byte-identical: stripped of the blocks only they
  serialize (``latency_decomposition``, ``critpath``, ``metrics``), the
  result hashes to the very same golden SHA-256 as the bare run;
* **profile attribution** — the callback frames land in the same
  per-subsystem buckets (``cpu``, ``protocol``, ``network``, ``memory``,
  ``kernel``) the coroutine frames did, because attribution keys on file
  paths, not function shapes.
"""

import cProfile
import hashlib
import json

import pytest

from test_integration import TestGoldenHashes as _GoldenMatrix

from repro.harness import experiments
from repro.stats.report import attribute_profile


def _golden_spec(combo, **kwargs):
    app, kind = combo.split("/")
    return experiments.normalize_spec(
        app, kind=kind, regime="large",
        workload_overrides=_GoldenMatrix.FAST_SIZES[app], **kwargs)


class TestAllObservabilityOn:
    """Watchdog + tracer + metrics together must not move a single event."""

    # One FLASH and one ideal combo; radix is the most reorder-sensitive
    # app in the matrix, so it guards the ideal machine's side.
    @pytest.mark.parametrize("combo", ["fft/flash", "radix/ideal"])
    def test_core_result_matches_golden(self, combo, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG", "on")
        spec = _golden_spec(combo, trace=True, metrics=True)
        result = experiments._execute(spec)
        assert result.latency_decomposition is not None
        assert result.critpath is not None
        assert result.metrics is not None
        state = result.to_dict()
        state.pop("latency_decomposition")
        state.pop("critpath")
        state.pop("metrics")
        blob = json.dumps(state, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(blob.encode()).hexdigest()
        assert digest == _GoldenMatrix.GOLDEN[combo], (
            f"{combo}: watchdog+trace+metrics perturbed the simulation")

    def test_decomposition_reconciles_under_watchdog(self, monkeypatch):
        """The traced component totals must still equal the aggregate
        occupancy counters when the watchdog's instrumented loop is driving
        dispatch (core identity implies it, but assert the traced side
        directly: the decomposition is built from span callbacks riding the
        callback core's dispatch instants)."""
        monkeypatch.setenv("REPRO_WATCHDOG", "on")
        result = experiments._execute(_golden_spec("fft/flash", trace=True))
        decomp = result.latency_decomposition
        elapsed = result.execution_time
        agg_pp = sum(result.pp_occupancy) * elapsed
        agg_mem = sum(result.memory_occupancy) * elapsed
        assert decomp["totals"]["pp"] == pytest.approx(agg_pp, rel=1e-9)
        assert decomp["totals"]["memory"] == pytest.approx(agg_mem, rel=1e-9)


class TestProfileAttribution:
    """Callback frames bucket into the same subsystems as coroutine frames."""

    @pytest.fixture(scope="class")
    def attribution(self):
        profile = cProfile.Profile()
        spec = _golden_spec("fft/flash")
        profile.enable()
        experiments._execute(spec)
        profile.disable()
        return attribute_profile(profile)

    def test_every_hot_subsystem_claims_time(self, attribution):
        buckets = attribution["subsystems"]
        for label in ("cache", "cpu", "protocol", "network", "memory",
                      "kernel", "workload"):
            assert buckets.get(label, 0.0) > 0.0, (
                f"subsystem {label!r} claimed no profile time under the"
                " callback core")

    def test_callback_frames_land_in_their_subsystems(self, attribution):
        top = attribution["top"]

        def frames(label):
            return [where for where, _tt, _nc in top.get(label, [])]

        assert any("cpu.py:" in where for where in frames("cpu"))
        assert any("chip.py:" in where for where in frames("protocol"))
        assert any("mesh.py:" in where for where in frames("network"))
        assert any("controller.py:" in where for where in frames("memory"))
        # The dispatch loop and scheduling primitives stay in "kernel".
        assert any("engine.py:" in where for where in frames("kernel"))

    def test_buckets_sum_to_total(self, attribution):
        assert sum(attribution["subsystems"].values()) == \
            pytest.approx(attribution["total"])
