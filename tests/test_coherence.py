"""Unit tests for the coherence protocol engine (pure semantics)."""

import pytest

from repro.caches.setassoc import CacheState
from repro.common.errors import ProtocolError
from repro.protocol.coherence import Handler, MissClass, NodeProtocolEngine
from repro.protocol.directory import Directory
from repro.protocol.messages import Message, MessageType as MT

MB = 1024 * 1024
MEM = 4 * MB  # per node
LINE0 = 0x200          # homed at node 0
LINE1 = 4 * MB + 0x80  # homed at node 1


class FakeCache:
    """Stand-in for the processor cache the engine probes/mutates."""

    def __init__(self):
        self.lines = {}
        self.invalidated = []
        self.downgraded = []

    def state_of(self, line):
        return self.lines.get(line, CacheState.INVALID)

    def invalidate(self, line):
        prior = self.lines.pop(line, CacheState.INVALID)
        self.invalidated.append(line)
        return prior

    def downgrade(self, line):
        if self.lines.get(line) == CacheState.DIRTY:
            self.lines[line] = CacheState.SHARED
        self.downgraded.append(line)


def make_engine(node_id=0, n_nodes=4):
    cache = FakeCache()
    directory = Directory(node_id, MEM, n_links=256)
    engine = NodeProtocolEngine(
        node_id=node_id,
        n_nodes=n_nodes,
        directory=directory,
        memory_bytes_per_node=MEM,
        cache_state_of=cache.state_of,
        cache_invalidate=cache.invalidate,
        cache_downgrade=cache.downgrade,
    )
    return engine, directory, cache


def msg(mtype, line, src, dst, requester, **kw):
    return Message(mtype, line, src, dst, requester, **kw)


class TestLocalRead:
    def test_clean_read_served_from_memory(self):
        engine, directory, _ = make_engine()
        actions = engine.process(msg(MT.GET, LINE0, 0, 0, 0))
        assert len(actions) == 1
        a = actions[0]
        assert a.handler == Handler.GET_HOME_CLEAN
        assert a.needs_memory_data and not a.memory_stale
        assert a.cpu_deliver.mtype == MT.PUT
        assert a.sends == []
        assert directory.sharers(LINE0) == [0]
        assert a.miss_class == MissClass.LOCAL_CLEAN

    def test_read_miss_to_remote_home_forwards(self):
        engine, _, _ = make_engine(node_id=0)
        actions = engine.process(msg(MT.GET, LINE1, 0, 0, 0))
        a = actions[0]
        assert a.handler == Handler.MISS_FORWARD
        assert a.sends[0].mtype == MT.REMOTE_GET
        assert a.sends[0].dst == 1

    def test_local_read_dirty_in_remote_cache(self):
        engine, directory, _ = make_engine()
        directory.set_dirty(LINE0, owner=2)
        actions = engine.process(msg(MT.GET, LINE0, 0, 0, 0))
        a = actions[0]
        assert a.handler == Handler.GET_LOCAL_FORWARD
        assert a.sends[0].mtype == MT.FORWARD_GET
        assert a.sends[0].dst == 2
        assert a.memory_stale  # the speculative read is useless
        assert directory.entry(LINE0).pending
        assert a.miss_class == MissClass.LOCAL_DIRTY_REMOTE


class TestRemoteRead:
    def test_remote_clean(self):
        engine, directory, _ = make_engine()
        actions = engine.process(msg(MT.REMOTE_GET, LINE0, 3, 0, 3))
        a = actions[0]
        assert a.handler == Handler.GET_HOME_CLEAN
        assert a.sends[0].mtype == MT.PUT and a.sends[0].dst == 3
        assert a.cpu_deliver is None
        assert a.miss_class == MissClass.REMOTE_CLEAN

    def test_remote_dirty_at_home(self):
        engine, directory, cache = make_engine()
        cache.lines[LINE0] = CacheState.DIRTY
        directory.set_dirty(LINE0, owner=0)
        actions = engine.process(msg(MT.REMOTE_GET, LINE0, 3, 0, 3))
        a = actions[0]
        assert a.handler == Handler.GET_HOME_DIRTY_LOCAL
        assert a.cache_retrieve and a.writes_memory
        assert cache.lines[LINE0] == CacheState.SHARED  # downgraded
        assert sorted(directory.sharers(LINE0)) == [0, 3]
        assert a.miss_class == MissClass.REMOTE_DIRTY_HOME

    def test_remote_dirty_in_third_node(self):
        engine, directory, _ = make_engine()
        directory.set_dirty(LINE0, owner=2)
        actions = engine.process(msg(MT.REMOTE_GET, LINE0, 3, 0, 3))
        a = actions[0]
        assert a.handler == Handler.GET_HOME_FORWARD
        assert a.sends[0].dst == 2
        assert a.miss_class == MissClass.REMOTE_DIRTY_REMOTE

    def test_forwarded_get_at_owner(self):
        engine, _, cache = make_engine(node_id=2)
        cache.lines[LINE0] = CacheState.DIRTY
        actions = engine.process(msg(MT.FORWARD_GET, LINE0, 0, 2, 3))
        a = actions[0]
        assert a.handler == Handler.GET_OWNER
        types = [m.mtype for m in a.sends]
        assert types == [MT.SHARING_WRITEBACK, MT.PUT]
        assert a.sends[0].dst == 0 and a.sends[1].dst == 3
        assert cache.lines[LINE0] == CacheState.SHARED

    def test_forwarded_get_misses_naks(self):
        """The owner already wrote the line back: NAK to the home."""
        engine, _, cache = make_engine(node_id=2)
        actions = engine.process(msg(MT.FORWARD_GET, LINE0, 0, 2, 3))
        assert actions[0].sends[0].mtype == MT.NAK

    def test_sharing_writeback_completes_transaction(self):
        engine, directory, _ = make_engine()
        directory.set_dirty(LINE0, owner=2)
        engine.process(msg(MT.REMOTE_GET, LINE0, 3, 0, 3))
        actions = engine.process(msg(MT.SHARING_WRITEBACK, LINE0, 2, 0, 3))
        a = actions[0]
        assert a.handler == Handler.SHARING_WB
        assert a.writes_memory
        entry = directory.entry(LINE0)
        assert not entry.pending and not entry.dirty
        assert sorted(directory.sharers(LINE0)) == [2, 3]


class TestWrites:
    def test_getx_uncached(self):
        engine, directory, _ = make_engine()
        actions = engine.process(msg(MT.REMOTE_GETX, LINE0, 3, 0, 3,
                                     is_write=True))
        a = actions[0]
        assert a.handler == Handler.GETX_HOME_CLEAN
        assert a.sends[-1].mtype == MT.PUTX
        assert a.sends[-1].n_invals == 0
        assert directory.entry(LINE0).owner == 3

    def test_getx_invalidates_sharers(self):
        engine, directory, _ = make_engine()
        for node in (1, 2):
            engine.process(msg(MT.REMOTE_GET, LINE0, node, 0, node))
        actions = engine.process(msg(MT.REMOTE_GETX, LINE0, 3, 0, 3,
                                     is_write=True))
        a = actions[0]
        invals = [m for m in a.sends if m.mtype == MT.INVAL]
        assert sorted(m.dst for m in invals) == [1, 2]
        putx = [m for m in a.sends if m.mtype == MT.PUTX][0]
        assert putx.n_invals == 2
        assert all(m.requester == 3 for m in invals)  # acks to the requester
        assert directory.sharers(LINE0) == []

    def test_upgrade_with_copy_gets_ack_no_data(self):
        engine, directory, _ = make_engine()
        engine.process(msg(MT.REMOTE_GET, LINE0, 3, 0, 3))
        actions = engine.process(msg(MT.REMOTE_UPGRADE, LINE0, 3, 0, 3,
                                     is_write=True))
        a = actions[0]
        assert a.handler == Handler.UPGRADE_HOME
        assert a.sends[-1].mtype == MT.UPGRADE_ACK
        assert not a.needs_memory_data

    def test_upgrade_raced_by_inval_becomes_getx(self):
        """Requester's copy was invalidated in flight: grant data."""
        engine, directory, _ = make_engine()
        actions = engine.process(msg(MT.REMOTE_UPGRADE, LINE0, 3, 0, 3,
                                     is_write=True))
        a = actions[0]
        assert a.handler == Handler.GETX_HOME_CLEAN
        assert a.sends[-1].mtype == MT.PUTX
        assert a.needs_memory_data

    def test_getx_requester_already_sharer_not_invalidated(self):
        engine, directory, _ = make_engine()
        engine.process(msg(MT.REMOTE_GET, LINE0, 3, 0, 3))
        engine.process(msg(MT.REMOTE_GET, LINE0, 2, 0, 2))
        actions = engine.process(msg(MT.REMOTE_GETX, LINE0, 3, 0, 3,
                                     is_write=True))
        invals = [m for m in actions[0].sends if m.mtype == MT.INVAL]
        assert [m.dst for m in invals] == [2]

    def test_home_sharer_invalidated_in_place(self):
        """When the home's own processor shares the line, the handler
        invalidates the local cache and acks the requester directly."""
        engine, directory, cache = make_engine()
        cache.lines[LINE0] = CacheState.SHARED
        engine.process(msg(MT.GET, LINE0, 0, 0, 0))
        actions = engine.process(msg(MT.REMOTE_GETX, LINE0, 3, 0, 3,
                                     is_write=True))
        a = actions[0]
        acks = [m for m in a.sends if m.mtype == MT.INVAL_ACK]
        assert len(acks) == 1 and acks[0].dst == 3
        assert LINE0 in cache.invalidated

    def test_getx_dirty_remote_forwards(self):
        engine, directory, _ = make_engine()
        directory.set_dirty(LINE0, owner=1)
        actions = engine.process(msg(MT.REMOTE_GETX, LINE0, 3, 0, 3,
                                     is_write=True))
        assert actions[0].handler == Handler.GETX_HOME_FORWARD
        assert actions[0].sends[0].mtype == MT.FORWARD_GETX

    def test_forwarded_getx_at_owner(self):
        engine, _, cache = make_engine(node_id=1)
        cache.lines[LINE0] = CacheState.DIRTY
        actions = engine.process(msg(MT.FORWARD_GETX, LINE0, 0, 1, 3,
                                     is_write=True))
        a = actions[0]
        types = [m.mtype for m in a.sends]
        assert MT.PUTX in types and MT.OWNERSHIP_TRANSFER in types
        assert cache.state_of(LINE0) == CacheState.INVALID

    def test_ownership_transfer_at_home(self):
        engine, directory, _ = make_engine()
        directory.set_dirty(LINE0, owner=1)
        engine.process(msg(MT.REMOTE_GETX, LINE0, 3, 0, 3, is_write=True))
        actions = engine.process(msg(MT.OWNERSHIP_TRANSFER, LINE0, 1, 0, 3,
                                     is_write=True))
        assert actions[0].handler == Handler.OWNERSHIP_XFER
        entry = directory.entry(LINE0)
        assert entry.dirty and entry.owner == 3 and not entry.pending


class TestAckCollection:
    def test_putx_then_acks(self):
        engine, _, _ = make_engine(node_id=3)
        putx = msg(MT.PUTX, LINE0, 0, 3, 3, is_write=True, n_invals=2)
        actions = engine.process(putx)
        assert actions[0].cpu_deliver is None  # acks outstanding
        engine.process(msg(MT.INVAL_ACK, LINE0, 1, 3, 3, is_write=True))
        final = engine.process(msg(MT.INVAL_ACK, LINE0, 2, 3, 3, is_write=True))
        assert final[0].cpu_deliver is putx

    def test_acks_before_putx(self):
        engine, _, _ = make_engine(node_id=3)
        engine.process(msg(MT.INVAL_ACK, LINE0, 1, 3, 3, is_write=True))
        putx = msg(MT.PUTX, LINE0, 0, 3, 3, is_write=True, n_invals=1)
        actions = engine.process(putx)
        assert actions[0].cpu_deliver is putx

    def test_putx_no_invals_delivers_immediately(self):
        engine, _, _ = make_engine(node_id=3)
        putx = msg(MT.PUTX, LINE0, 0, 3, 3, is_write=True, n_invals=0)
        assert engine.process(putx)[0].cpu_deliver is putx

    def test_inval_receive_acks_requester(self):
        engine, _, cache = make_engine(node_id=2)
        cache.lines[LINE0] = CacheState.SHARED
        actions = engine.process(msg(MT.INVAL, LINE0, 0, 2, 3, is_write=True))
        a = actions[0]
        assert a.sends[0].mtype == MT.INVAL_ACK and a.sends[0].dst == 3
        assert cache.state_of(LINE0) == CacheState.INVALID


class TestWritebacksAndHints:
    def test_local_writeback(self):
        engine, directory, cache = make_engine()
        cache.lines[LINE0] = CacheState.DIRTY
        engine.process(msg(MT.GETX, LINE0, 0, 0, 0, is_write=True))
        cache.lines.pop(LINE0, None)  # CPU evicted
        actions = engine.process(msg(MT.WRITEBACK, LINE0, 0, 0, 0))
        a = actions[0]
        assert a.handler == Handler.WRITEBACK_LOCAL and a.writes_memory
        assert not directory.entry(LINE0).dirty

    def test_unexpected_writeback_rejected(self):
        engine, _, _ = make_engine()
        with pytest.raises(ProtocolError):
            engine.process(msg(MT.WRITEBACK, LINE0, 0, 0, 0))

    def test_remote_hint_position(self):
        engine, directory, _ = make_engine()
        for node in (1, 2, 3):
            engine.process(msg(MT.REMOTE_GET, LINE0, node, 0, node))
        # List head-first is [3, 2, 1]: node 1 sits at position 3.
        actions = engine.process(msg(MT.REMOTE_REPL_HINT, LINE0, 1, 0, 1))
        a = actions[0]
        assert a.handler == Handler.HINT_REMOTE
        assert a.list_position == 3
        assert sorted(directory.sharers(LINE0)) == [2, 3]

    def test_hint_crossing_inval_is_harmless(self):
        engine, directory, _ = make_engine()
        actions = engine.process(msg(MT.REMOTE_REPL_HINT, LINE0, 1, 0, 1))
        assert actions[0].list_position is None


class TestDeferralAndReplay:
    def test_requests_deferred_while_pending(self):
        engine, directory, _ = make_engine()
        directory.set_dirty(LINE0, owner=2)
        engine.process(msg(MT.REMOTE_GET, LINE0, 3, 0, 3))
        actions = engine.process(msg(MT.REMOTE_GET, LINE0, 1, 0, 1))
        assert actions[0].deferred

    def test_replay_after_sharing_writeback(self):
        engine, directory, _ = make_engine()
        directory.set_dirty(LINE0, owner=2)
        engine.process(msg(MT.REMOTE_GET, LINE0, 3, 0, 3))
        engine.process(msg(MT.REMOTE_GET, LINE0, 1, 0, 1))
        actions = engine.process(msg(MT.SHARING_WRITEBACK, LINE0, 2, 0, 3))
        handlers = [a.handler for a in actions]
        assert handlers == [Handler.SHARING_WB, Handler.GET_HOME_CLEAN]
        assert 1 in directory.sharers(LINE0)

    def test_owner_rerequest_deferred_until_writeback(self):
        """The recorded owner re-requests before its writeback arrives."""
        engine, directory, cache = make_engine()
        directory.set_dirty(LINE0, owner=2)
        actions = engine.process(msg(MT.REMOTE_GET, LINE0, 2, 0, 2))
        assert actions[0].deferred
        actions = engine.process(msg(MT.REMOTE_WRITEBACK, LINE0, 2, 0, 2))
        handlers = [a.handler for a in actions]
        assert handlers == [Handler.WRITEBACK_REMOTE, Handler.GET_HOME_CLEAN]

    def test_nak_retries_original_request(self):
        engine, directory, _ = make_engine()
        directory.set_dirty(LINE0, owner=2)
        engine.process(msg(MT.REMOTE_GET, LINE0, 3, 0, 3))
        # The owner wrote back before the forward arrived.
        engine.process(msg(MT.REMOTE_WRITEBACK, LINE0, 2, 0, 2))
        actions = engine.process(msg(MT.NAK, LINE0, 2, 0, 3))
        handlers = [a.handler for a in actions]
        assert handlers[0] == Handler.NAK_HOME
        assert Handler.GET_HOME_CLEAN in handlers
        assert 3 in directory.sharers(LINE0)

    def test_replay_stable_noop_when_not_home(self):
        engine, _, _ = make_engine(node_id=0)
        assert engine.replay_stable(LINE1) == []

    def test_home_grant_in_flight_defers_then_replays(self):
        """Directory says the home's CPU owns the line, but the grant has not
        reached the cache yet: remote requests wait for replay_stable."""
        engine, directory, cache = make_engine()
        engine.process(msg(MT.GETX, LINE0, 0, 0, 0, is_write=True))
        # Directory: dirty, owner 0 — but the fake cache has no line yet.
        actions = engine.process(msg(MT.REMOTE_GET, LINE0, 3, 0, 3))
        assert actions[0].deferred
        cache.lines[LINE0] = CacheState.DIRTY  # grant lands
        actions = engine.replay_stable(LINE0)
        assert actions[0].handler == Handler.GET_HOME_DIRTY_LOCAL


class TestClassificationCounters:
    def test_counts_accumulate(self):
        engine, directory, _ = make_engine()
        engine.process(msg(MT.GET, LINE0, 0, 0, 0))
        engine.process(msg(MT.REMOTE_GET, LINE0, 3, 0, 3))
        assert engine.miss_classes[MissClass.LOCAL_CLEAN] == 1
        assert engine.miss_classes[MissClass.REMOTE_CLEAN] == 1
