"""Unit tests for the dynamic pointer allocation directory."""

import pytest

from repro.common.errors import ProtocolError
from repro.protocol.directory import Directory, LinkStore

MB = 1024 * 1024
LINE = 128


@pytest.fixture
def directory():
    return Directory(node_id=0, memory_bytes=1 * MB, n_links=64)


@pytest.fixture
def remote_directory():
    return Directory(node_id=2, memory_bytes=1 * MB, n_links=64)


class TestAddressing:
    def test_header_addresses_distinct_and_dense(self, directory):
        a0 = directory.header_addr(0)
        a1 = directory.header_addr(LINE)
        assert a1 - a0 == 8  # 8-byte directory headers (Section 5.2)

    def test_header_region_past_data(self, directory):
        assert directory.header_addr(0) >= directory.memory_bytes

    def test_rejects_foreign_lines(self, remote_directory):
        with pytest.raises(ProtocolError):
            remote_directory.entry(0)  # line 0 is homed at node 0

    def test_remote_node_owns_its_range(self, remote_directory):
        line = 2 * MB + 5 * LINE
        entry = remote_directory.entry(line)
        assert entry.is_uncached


class TestSharerList:
    def test_add_and_enumerate(self, directory):
        directory.add_sharer(0, 3)
        directory.add_sharer(0, 7)
        assert directory.sharers(0) == [7, 3]  # most recent first

    def test_duplicate_add_is_noop(self, directory):
        directory.add_sharer(0, 3)
        added, _ = directory.add_sharer(0, 3)
        assert not added
        assert directory.sharers(0) == [3]

    def test_remove_returns_position(self, directory):
        for node in (1, 2, 3):
            directory.add_sharer(0, node)
        # List is [3, 2, 1]; node 1 is at position 3.
        position, _ = directory.remove_sharer(0, 1)
        assert position == 3
        assert directory.sharers(0) == [3, 2]

    def test_remove_absent_returns_none(self, directory):
        directory.add_sharer(0, 1)
        position, _ = directory.remove_sharer(0, 9)
        assert position is None

    def test_remove_head(self, directory):
        for node in (1, 2):
            directory.add_sharer(0, node)
        position, _ = directory.remove_sharer(0, 2)
        assert position == 1
        assert directory.sharers(0) == [1]

    def test_clear_returns_all(self, directory):
        for node in (1, 2, 3):
            directory.add_sharer(0, node)
        nodes, _ = directory.clear_sharers(0)
        assert sorted(nodes) == [1, 2, 3]
        assert directory.sharers(0) == []

    def test_links_recycled(self, directory):
        for round_ in range(50):  # far more adds than the 64-link store
            directory.add_sharer(0, 1)
            directory.remove_sharer(0, 1)
        assert directory.links.used == 0

    def test_link_store_exhaustion(self):
        d = Directory(node_id=0, memory_bytes=1 * MB, n_links=2)
        d.add_sharer(0, 1)
        d.add_sharer(0, 2)
        with pytest.raises(ProtocolError):
            d.add_sharer(0, 3)

    def test_touched_addresses_reported(self, directory):
        _, addrs = directory.add_sharer(0, 1)
        assert directory.header_addr(0) in addrs
        # Adding walks the (empty) list then writes the new link.
        assert len(addrs) == 2


class TestDirtyState:
    def test_set_and_clear(self, directory):
        directory.set_dirty(0, owner=5)
        entry = directory.entry(0)
        assert entry.dirty and entry.owner == 5
        directory.clear_dirty(0)
        assert not entry.dirty and entry.owner is None

    def test_dirty_with_sharers_rejected(self, directory):
        directory.add_sharer(0, 1)
        with pytest.raises(ProtocolError):
            directory.set_dirty(0, owner=1)

    def test_invariant_checker_flags_corruption(self, directory):
        directory.set_dirty(0, owner=1)
        directory.entry(0).owner = None  # corrupt deliberately
        with pytest.raises(ProtocolError):
            directory.check_invariants(0)

    def test_invariants_hold_normally(self, directory):
        directory.add_sharer(0, 1)
        directory.add_sharer(0, 2)
        directory.check_invariants(0)
        directory.clear_sharers(0)
        directory.set_dirty(0, owner=3)
        directory.check_invariants(0)


class TestLinkStore:
    def test_allocate_free_cycle(self):
        store = LinkStore(4, base_addr=0x1000)
        a = store.allocate(7, None)
        b = store.allocate(9, a)
        assert store.node_at(b) == 9
        assert store.next_of(b) == a
        store.free(a)
        store.free(b)
        assert store.used == 0

    def test_peak_usage(self):
        store = LinkStore(4, base_addr=0)
        idx = [store.allocate(i, None) for i in range(3)]
        for i in idx:
            store.free(i)
        assert store.peak_used == 3

    def test_addr_of(self):
        store = LinkStore(4, base_addr=0x1000)
        assert store.addr_of(2) == 0x1000 + 16
