"""Quickstart: run one application on FLASH and the ideal machine.

Builds a 16-processor FLASH machine and its idealized hardwired counterpart,
runs the FFT workload on both, and prints the headline comparison the paper
makes: how much does MAGIC's flexibility cost?

Run:  python examples/quickstart.py
"""

from repro import Machine, flash_config, ideal_config
from repro.apps import FFTWorkload


def main() -> None:
    workload = FFTWorkload(points=4096)

    results = {}
    for make in (flash_config, ideal_config):
        config = make(n_procs=16, cache_size=1024 * 1024)
        machine = Machine(config)
        print(f"running {workload.name} on the {config.kind} machine ...")
        results[config.kind] = machine.run(workload.build(config))

    flash, ideal = results["flash"], results["ideal"]
    slowdown = flash.execution_time / ideal.execution_time - 1.0

    print()
    print(f"{'':24}{'FLASH':>12}{'ideal':>12}")
    print(f"{'execution time (cyc)':24}{flash.execution_time:>12.0f}"
          f"{ideal.execution_time:>12.0f}")
    print(f"{'cache miss rate':24}{flash.miss_rate:>11.2%}"
          f"{ideal.miss_rate:>12.2%}")
    print(f"{'avg PP occupancy':24}{flash.avg_pp_occupancy:>11.2%}"
          f"{ideal.avg_pp_occupancy:>12.2%}")
    print(f"{'avg memory occupancy':24}{flash.avg_memory_occupancy:>11.2%}"
          f"{ideal.avg_memory_occupancy:>12.2%}")
    print()
    print("read miss distribution on FLASH:")
    for cls, fraction in flash.read_miss_distribution.items():
        print(f"  {cls:22}{fraction:>8.1%}")
    print()
    print(f"cost of flexibility: FLASH is {slowdown:.1%} slower than the "
          f"idealized hardwired machine")
    print("(the paper reports 2-12% for optimized applications)")


if __name__ == "__main__":
    main()
