"""Performance monitoring: the other side of flexibility.

The paper's Section 4.4 notes that "the same flexibility can be used to
dynamically detect hot-spotting situations and provide support for
techniques such as automatic page remapping or migration."  This example
attaches a protocol monitor to every node of a FLASH machine, runs the
hot-spotted FFT (all data placed on node 0), and prints what the monitor
sees: the hot pages, who is hammering them, the sharing patterns, and the
page-migration advice a remapping policy would act on.

Run:  python examples/monitoring.py
"""

from repro import Machine, flash_config
from repro.apps import FFTWorkload
from repro.stats.monitor import ProtocolMonitor


def main() -> None:
    config = flash_config(n_procs=16, cache_size=8 * 1024)
    machine = Machine(config)
    monitors = []
    for node in machine.nodes:
        monitor = ProtocolMonitor(node.node_id)
        node.engine.monitor = monitor
        monitors.append(monitor)

    workload = FFTWorkload(points=4096, placement="node0")
    print("running hot-spotted FFT (all pages on node 0) ...")
    machine.run(workload.build(config))

    hot_node = monitors[0]
    print()
    print(f"node 0 remote-miss fraction: {hot_node.remote_fraction():.1%}")
    print(f"node 0 PP occupancy:        "
          f"{machine.nodes[0].stats.pp_occupancy(machine.env.now):.1%}")
    print()
    print("hottest pages at node 0 (page, remote misses, local misses):")
    for page, remote, local in hot_node.hot_pages(top=5):
        print(f"  page {page:#x}: remote={remote:5d} local={local:5d}")
    print()
    print("dominant remote requesters at node 0:")
    for node, count in hot_node.dominant_requesters(top=4):
        print(f"  node {node:2d}: {count} misses")
    print()
    print("sharing-pattern histogram (node 0's lines):")
    for pattern, count in hot_node.pattern_histogram().most_common():
        print(f"  {pattern:18} {count}")
    print()
    advice = hot_node.migration_advice(threshold=8)
    if advice:
        print(f"page-migration advice: {len(advice)} pages would move, e.g.:")
        for page, target in advice[:5]:
            print(f"  migrate page {page:#x} -> node {target}")
    else:
        print("page-migration advice: none — the traffic is balanced"
              " all-to-all, so")
        print("no single node dominates any page; the right remedy is"
              " round-robin")
        print("*remapping* (spreading the pages), not migration to one node.")
    print()
    print("a remapping policy acting on this advice is exactly the")
    print("'automatic page remapping or migration' of Section 4.4 —")
    print("implementable in handler software, which is the point of MAGIC.")


if __name__ == "__main__":
    main()
