"""Figure 4.1 as ASCII art: execution-time bars, FLASH vs ideal.

Runs a subset of the application suite on both machines and renders the
paper's stacked-bar figure in the terminal.

Run:  python examples/figure_4_1.py [app ...]
"""

import sys

from repro import Machine, flash_config, ideal_config
from repro.apps import PAPER_APPS
from repro.stats.charts import figure_4_1_chart

FAST_SIZES = {
    "fft": dict(points=4096),
    "lu": dict(matrix=64, block=16),
    "radix": dict(keys=8192, radix=64, key_bits=12),
    "ocean": dict(grid=34, n_grids=3, sweeps=2),
    "barnes": dict(bodies=256, iterations=1),
    "mp3d": dict(particles=2048, steps=2),
    "os": dict(tasks_per_proc=1, syscalls_per_task=40),
}


def main(apps) -> None:
    rows = []
    for app in apps:
        workload = PAPER_APPS[app](**FAST_SIZES[app])
        n_procs = 8 if app == "os" else 16
        for make, label in ((flash_config, "FLASH"), (ideal_config, "ideal")):
            config = make(n_procs=n_procs, cache_size=1024 * 1024)
            print(f"running {app} on {label} ...", file=sys.stderr)
            result = Machine(config).run(workload.build(config))
            rows.append((app, label, result.breakdown,
                         result.execution_time))
    print()
    print(figure_4_1_chart(rows))
    print()
    print("paper bands: 2-12% for optimized applications, ~25% for MP3D")


if __name__ == "__main__":
    chosen = sys.argv[1:] or ["fft", "lu", "mp3d"]
    main(chosen)
