"""Message passing on FLASH: block transfer through MAGIC.

FLASH's goal is to "integrate a cache-coherent shared address space and
message passing in a single architecture" (Section 1).  This example moves
the same 16 KB between two nodes both ways — as a block transfer driven by
MAGIC's transfer handlers, and as 128 individual cache-line misses through
the coherence protocol — and compares cost on FLASH and the ideal machine.

Run:  python examples/message_passing.py
"""

from repro import Machine, flash_config, ideal_config
from repro.common.params import MagicCacheConfig

KB = 1024
PAYLOAD = 16 * KB
LINES = PAYLOAD // 128


def build(kind):
    make = flash_config if kind == "flash" else ideal_config
    config = make(n_procs=2, cache_size=64 * KB).with_changes(
        magic_caches=MagicCacheConfig(enabled=False)
    )
    return Machine(config)


def block_transfer(kind):
    machine = build(kind)
    result = machine.run([
        iter([("s", 1, 0, PAYLOAD)]),   # node 0: post the send, continue
        iter([("v", 0)]),               # node 1: wait for arrival
    ])
    return result.execution_time, machine


def coherence_pull(kind):
    machine = build(kind)
    result = machine.run([
        iter([("c", 1)]),
        iter([("r", i * 128) for i in range(LINES)]),  # line-at-a-time
    ])
    return result.execution_time, machine


def main() -> None:
    print(f"moving {PAYLOAD // KB} KB ({LINES} lines) from node 0 to node 1\n")
    print(f"{'method':26}{'FLASH':>10}{'ideal':>10}{'flex cost':>11}")
    for label, fn in (("block transfer (send/recv)", block_transfer),
                      ("coherence pull (reads)", coherence_pull)):
        flash_time, flash_machine = fn("flash")
        ideal_time, _ = fn("ideal")
        flex = flash_time / ideal_time - 1.0
        print(f"{label:26}{flash_time:>10.0f}{ideal_time:>10.0f}{flex:>10.1%}")
    flash_time, machine = block_transfer("flash")
    pp = machine.nodes[0].stats.pp_busy
    print()
    print(f"sender PP occupancy during the transfer: {pp:.0f} cycles")
    print("the hardwired datapath moves the bytes; the PP only runs a short")
    print("handler per line, so the flexibility cost of message passing")
    print("shrinks as transfers grow — and block transfer beats pulling the")
    print("same bytes through the coherence protocol by ~3x.")


if __name__ == "__main__":
    main()
