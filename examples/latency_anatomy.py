"""Latency anatomy: where do the cycles of a cache miss go?

Reproduces Table 3.3 (no-contention miss latencies for the five read-miss
classes) and walks through the Figure 3.1 pipeline for a local read,
showing how MAGIC hides the protocol processor behind the memory access.

Run:  python examples/latency_anatomy.py
"""

from repro import flash_config, ideal_config
from repro.harness.micro import PAPER_TABLE_3_3, measure_latencies
from repro.protocol.coherence import MissClass


def main() -> None:
    print("measuring no-contention miss latencies on 16-node machines ...")
    flash = measure_latencies(flash_config(16))
    ideal = measure_latencies(ideal_config(16))

    print()
    print(f"{'miss class':26}{'ideal':>8}{'(paper)':>9}"
          f"{'FLASH':>8}{'(paper)':>9}{'PP occ':>8}")
    for cls in MissClass.ALL:
        paper_ideal, paper_flash, paper_occ = PAPER_TABLE_3_3[cls]
        print(f"{cls:26}{ideal[cls].latency:>8.0f}{paper_ideal:>9}"
              f"{flash[cls].latency:>8.0f}{paper_flash:>9}"
              f"{flash[cls].pp_occupancy:>8.0f}")

    print()
    print("anatomy of the FLASH local clean read (27 cycles):")
    lat = flash_config(16).latencies
    t = 0
    for stage, cycles in (
        ("miss detect -> bus request", lat.miss_detect_to_bus),
        ("bus transit", lat.bus_transit),
        ("PI inbound", lat.pi_inbound),
        ("inbox arbitration (speculative read issues here)",
         lat.inbox_arbitration),
        ("jump table lookup", lat.jump_table_lookup),
    ):
        print(f"  t={t:>3} +{cycles:<3} {stage}")
        t += cycles
    spec_done = t - lat.jump_table_lookup + lat.memory_access
    print(f"  t={t:>3}      PP handler runs (11 cycles, hidden behind memory)")
    print(f"  t={spec_done:>3}      first 8 bytes arrive from memory")
    print(f"  t={spec_done + lat.pi_outbound + lat.pi_outbound_bus_transit:>3}"
          f"      data crosses the processor bus  (total 27)")
    print()
    print("because the handler (11 cycles) finishes before the memory access")
    print("(14 cycles), flexibility adds only 3 cycles to a local read -- but")
    print("remote misses pay the macropipeline at every MAGIC traversal.")


if __name__ == "__main__":
    main()
