"""Hot-spot study: when does PP occupancy actually hurt?

Section 4.3's insight: high protocol-processor occupancy degrades FLASH
relative to the ideal machine *only* when the hot node's memory occupancy is
simultaneously low.  This example sweeps page-placement policies for the FFT
and OS workloads and prints slowdown against the occupancy pair.

Run:  python examples/hotspot_study.py
"""

from repro import Machine, flash_config, ideal_config
from repro.apps import FFTWorkload, OSWorkload


def run_pair(workload, n_procs, cache):
    out = {}
    for make in (flash_config, ideal_config):
        config = make(n_procs=n_procs, cache_size=cache)
        machine = Machine(config)
        out[config.kind] = machine.run(workload.build(config))
    return out["flash"], out["ideal"]


def main() -> None:
    experiments = [
        ("FFT, data spread across nodes",
         FFTWorkload(points=4096), 16, 8 * 1024),
        ("FFT, all data on node 0",
         FFTWorkload(points=4096, placement="node0"), 16, 8 * 1024),
        ("OS, kernel pages round-robin",
         OSWorkload(tasks_per_proc=1), 8, 1024 * 1024),
        ("OS, kernel pages fill node 0 (untuned IRIX)",
         OSWorkload(tasks_per_proc=1, placement="node0"), 8, 1024 * 1024),
    ]
    print(f"{'experiment':44}{'slowdown':>10}{'maxPP':>8}{'maxMem':>8}")
    for label, workload, n_procs, cache in experiments:
        flash, ideal = run_pair(workload, n_procs, cache)
        slowdown = flash.execution_time / ideal.execution_time - 1.0
        print(f"{label:44}{slowdown:>9.1%}"
              f"{max(flash.pp_occupancy):>8.1%}"
              f"{max(flash.memory_occupancy):>8.1%}")
    print()
    print("the FFT hot spot keeps node 0's memory busy, so the PP latency")
    print("hides behind the memory access; the untuned OS placement drives")
    print("PP occupancy up while memory occupancy stays low -- that is the")
    print("combination that punishes the flexible controller (paper: 29%).")


if __name__ == "__main__":
    main()
