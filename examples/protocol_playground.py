"""Protocol playground: drive the coherence engine message by message.

Feeds a hand-built message sequence through one node's protocol engine and
prints every handler invocation, directory transition and outgoing message —
useful for understanding the dynamic-pointer-allocation protocol and for
prototyping protocol changes (the "flexibility" FLASH exists to provide).

Run:  python examples/protocol_playground.py
"""

from repro.caches.setassoc import CacheState
from repro.protocol.coherence import NodeProtocolEngine
from repro.protocol.directory import Directory
from repro.protocol.messages import Message, MessageType as MT

MEM = 4 * 1024 * 1024
LINE = 0x1000


class ToyCache:
    def __init__(self):
        self.lines = {}

    def state_of(self, line):
        return self.lines.get(line, CacheState.INVALID)

    def invalidate(self, line):
        return self.lines.pop(line, CacheState.INVALID)

    def downgrade(self, line):
        if self.lines.get(line) == CacheState.DIRTY:
            self.lines[line] = CacheState.SHARED


def show(engine, directory, actions):
    for action in actions:
        entry = directory.entry(LINE)
        state = "DIRTY" if entry.dirty else (
            "SHARED" if entry.head is not None else "UNCACHED"
        )
        pending = " (pending)" if entry.pending else ""
        print(f"  handler={action.handler:22} "
              f"dir={state}{pending:10} "
              f"owner={entry.owner} sharers={directory.sharers(LINE)}")
        for message in action.sends:
            print(f"    -> send {message.mtype} to node {message.dst}")
        if action.cpu_deliver:
            print(f"    -> deliver {action.cpu_deliver.mtype} to local CPU")


def main() -> None:
    cache = ToyCache()
    directory = Directory(node_id=0, memory_bytes=MEM, n_links=64)
    engine = NodeProtocolEngine(
        node_id=0, n_nodes=4, directory=directory,
        memory_bytes_per_node=MEM,
        cache_state_of=cache.state_of,
        cache_invalidate=cache.invalidate,
        cache_downgrade=cache.downgrade,
    )

    script = [
        ("node 1 reads the line (remote clean miss)",
         Message(MT.REMOTE_GET, LINE, 1, 0, 1)),
        ("node 2 reads the same line",
         Message(MT.REMOTE_GET, LINE, 2, 0, 2)),
        ("node 3 writes: both sharers must be invalidated",
         Message(MT.REMOTE_GETX, LINE, 3, 0, 3, is_write=True)),
        ("node 1 reads again: home forwards to the dirty third node",
         Message(MT.REMOTE_GET, LINE, 1, 0, 1)),
        ("node 2 reads while the three-hop is in flight: deferred",
         Message(MT.REMOTE_GET, LINE, 2, 0, 2)),
        ("the owner's sharing writeback completes the transaction and\n"
         "replays the deferred read",
         Message(MT.SHARING_WRITEBACK, LINE, 3, 0, 1)),
        ("node 3 evicts its (now shared) copy: replacement hint",
         Message(MT.REMOTE_REPL_HINT, LINE, 3, 0, 3)),
    ]
    for description, message in script:
        print(f"\n{description}:")
        show(engine, directory, engine.process(message))

    print("\nfinal sharer list:", directory.sharers(LINE))
    print("messages processed:", engine.messages_processed)


if __name__ == "__main__":
    main()
