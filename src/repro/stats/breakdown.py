"""Statistics containers.

The execution-time categories follow Figure 4.1: processor busy time (Busy),
contention for the cache (Cont), read stall (Read), write stall (Write) and
synchronization wait (Sync).  Node-level statistics cover PP occupancy,
memory occupancy, speculation and MDC behaviour — everything Tables 4.1, 4.2,
5.1 and Section 5.2 report.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..caches.setassoc import CacheStats

__all__ = ["CacheStats", "CpuTimes", "NodeStats", "merge_cpu_times",
           "merge_cache_stats"]


def merge_cache_stats(stats: Iterable[CacheStats]) -> CacheStats:
    """Fold per-node cache counters into one machine-wide
    :class:`~repro.caches.setassoc.CacheStats` (see its ``to_dict``/``merge``;
    used by the run report and the profile subcommand)."""
    total = CacheStats()
    for s in stats:
        total.merge(s)
    return total


class CpuTimes:
    """Per-processor execution-time breakdown (Figure 4.1 categories)."""

    __slots__ = ("busy", "read_stall", "write_stall", "sync", "cont", "finish_time")

    def __init__(self) -> None:
        self.busy = 0.0
        self.read_stall = 0.0
        self.write_stall = 0.0
        self.sync = 0.0
        self.cont = 0.0
        self.finish_time = 0.0

    @property
    def total(self) -> float:
        return self.busy + self.read_stall + self.write_stall + self.sync + self.cont

    def as_dict(self) -> Dict[str, float]:
        return {
            "busy": self.busy,
            "cont": self.cont,
            "read": self.read_stall,
            "write": self.write_stall,
            "sync": self.sync,
        }

    def to_state(self) -> Dict[str, float]:
        """Full lossless state (``as_dict`` omits ``finish_time``)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_state(cls, state: Dict[str, float]) -> "CpuTimes":
        times = cls()
        for slot in cls.__slots__:
            setattr(times, slot, state[slot])
        return times


def merge_cpu_times(times: List[CpuTimes]) -> Dict[str, float]:
    """Average the per-CPU categories, as the paper's stacked bars do."""
    n = max(1, len(times))
    merged = {"busy": 0.0, "cont": 0.0, "read": 0.0, "write": 0.0, "sync": 0.0}
    for t in times:
        for key, value in t.as_dict().items():
            merged[key] += value / n
    return merged


class NodeStats:
    """Per-node controller and memory statistics."""

    __slots__ = (
        "pp_busy", "pp_handler_cycles", "pp_mdc_stall", "handler_invocations",
        "spec_issued", "spec_useless", "messages_in",
    )

    def __init__(self) -> None:
        self.pp_busy = 0.0                  # cycles the PP (or oracle) was occupied
        self.pp_handler_cycles = 0.0        # handler execution only
        self.pp_mdc_stall = 0.0             # MDC miss penalty cycles
        self.handler_invocations = 0
        self.spec_issued = 0
        self.spec_useless = 0
        self.messages_in = 0

    def note_handler(self, name: str, cycles: float) -> None:
        # Per-handler-name counts live in the metrics registry
        # (``pp.handler_invocations``), not here: this aggregate is on the
        # hot path of every run, metrics on or off.
        self.handler_invocations += 1
        self.pp_handler_cycles += cycles

    def pp_occupancy(self, elapsed: float) -> float:
        return self.pp_busy / elapsed if elapsed > 0 else 0.0

    @property
    def useless_spec_fraction(self) -> float:
        return self.spec_useless / self.spec_issued if self.spec_issued else 0.0
