"""Streaming quantile sketch for per-request latency tails.

The open-loop observatory (``repro.stats.latency``) needs p50/p99/p99.9 of
millions of per-request latencies without keeping them all, and the run farm
needs to *merge* per-shard summaries into one machine-wide answer.  Exact
streaming quantiles are impossible in bounded memory, so :class:`QuantileSketch`
uses the standard HDR-histogram compromise:

* **Exact small-n path** — up to ``exact_limit`` raw values are kept verbatim
  and quantiles are exact (most per-window sketches never leave this path).
* **Log2 bucket path** — past the limit, values collapse into logarithmic
  buckets subdivided by the top ``log2(subbuckets)`` mantissa bits.  Every
  bucket spans a ``1/subbuckets`` relative slice of its octave, so a reported
  quantile is within :attr:`relative_error` ``= 1/subbuckets`` of the exact
  answer (the midpoint representative is within half a bucket width).

Merging is exact-count addition: bucket indices are a pure function of the
value, and the exact->bucket spill is value-wise, so ``merge`` is associative
and commutative — farm shards can combine in any order and reach the
identical bucket state, count, and extremes (asserted by
``tests/test_quantiles.py``; the ``total`` mean-accumulator is float
summation and therefore agrees across orders only to float tolerance).

Everything is deterministic and JSON-able (:meth:`to_dict` /
:meth:`from_dict`); no wall clock, no process-global state.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["QuantileSketch", "exact_quantile", "DEFAULT_SUBBUCKETS",
           "DEFAULT_EXACT_LIMIT"]

#: Sub-buckets per octave (power of two).  Relative error of a bucketed
#: quantile is bounded by ``1/subbuckets`` (documented contract, tested).
DEFAULT_SUBBUCKETS = 32

#: Raw values kept before spilling to buckets.
DEFAULT_EXACT_LIMIT = 512


def exact_quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an unsorted sequence (exact; small n only).

    ``q`` in [0, 1]; rank ``max(1, ceil(q * n))`` of the sorted values — the
    same convention the sketch approximates, so test comparisons are
    apples-to-apples.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class QuantileSketch:
    """Mergeable streaming quantile summary (exact small-n, then log2/HDR)."""

    __slots__ = ("subbuckets", "exact_limit", "count", "total",
                 "min", "max", "_exact", "_buckets")

    def __init__(self, subbuckets: int = DEFAULT_SUBBUCKETS,
                 exact_limit: int = DEFAULT_EXACT_LIMIT):
        if subbuckets < 1 or subbuckets & (subbuckets - 1):
            raise ValueError("subbuckets must be a power of two >= 1")
        self.subbuckets = subbuckets
        self.exact_limit = exact_limit
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._exact: Optional[List[float]] = []
        self._buckets: Dict[int, int] = {}

    # -- documented accuracy contract ------------------------------------------

    @property
    def relative_error(self) -> float:
        """Worst-case relative error of :meth:`quantile` once bucketed."""
        return 1.0 / self.subbuckets

    @property
    def is_exact(self) -> bool:
        return self._exact is not None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # -- recording --------------------------------------------------------------

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        exact = self._exact
        if exact is not None:
            exact.append(value)
            if len(exact) > self.exact_limit:
                self._spill()
            return
        bucket = self._bucket_of(value)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    def _spill(self) -> None:
        """Convert the exact store to buckets (value-wise, so the result is
        independent of how values were grouped before the spill — the merge
        associativity hinge)."""
        buckets = self._buckets
        for value in self._exact:  # type: ignore[union-attr]
            bucket = self._bucket_of(value)
            buckets[bucket] = buckets.get(bucket, 0) + 1
        self._exact = None

    def _bucket_of(self, value: float) -> int:
        """Integer bucket index: octave (binary exponent) times subbuckets,
        plus the top mantissa bits.  Pure function of the value; handles any
        positive float (sub-1.0 latencies land in negative octaves).
        Non-positive values share bucket index with the smallest magnitude
        handled (they only arise from degenerate inputs)."""
        if value <= 0.0:
            return -(1 << 30)
        mantissa, exponent = math.frexp(value)   # value = mantissa * 2**exp
        # mantissa in [0.5, 1): map to [0, subbuckets)
        sub = int((mantissa - 0.5) * 2.0 * self.subbuckets)
        if sub >= self.subbuckets:   # mantissa == 1.0 - epsilon rounding
            sub = self.subbuckets - 1
        return exponent * self.subbuckets + sub

    def _bucket_mid(self, bucket: int) -> float:
        """Midpoint representative of a bucket's value range."""
        if bucket == -(1 << 30):
            return 0.0
        exponent, sub = divmod(bucket, self.subbuckets)
        lo = math.ldexp(0.5 + sub / (2.0 * self.subbuckets), exponent)
        hi = math.ldexp(0.5 + (sub + 1) / (2.0 * self.subbuckets), exponent)
        return (lo + hi) / 2.0

    # -- queries ----------------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate; exact on the small-n path, within
        :attr:`relative_error` of exact once bucketed.  ``q`` in [0, 1]."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        if self._exact is not None:
            ordered = sorted(self._exact)
            return ordered[min(rank, len(ordered)) - 1]
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= rank:
                # Clamp to the observed extremes: the end buckets are wider
                # than the data they hold.
                return min(max(self._bucket_mid(bucket), self.min), self.max)
        return self.max

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        return [self.quantile(q) for q in qs]

    # -- merging ----------------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (in place; returns self).

        Associative and commutative: counts add, and any exact store that no
        longer fits spills value-wise, so the final bucket counts do not
        depend on merge order.
        """
        if other.subbuckets != self.subbuckets:
            raise ValueError(
                f"cannot merge sketches with different subbuckets "
                f"({self.subbuckets} vs {other.subbuckets})")
        self.count += other.count
        self.total += other.total
        if other.count:
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
        if self._exact is not None and other._exact is not None \
                and len(self._exact) + len(other._exact) <= self.exact_limit:
            self._exact.extend(other._exact)
            return self
        if self._exact is not None:
            self._spill()
        buckets = self._buckets
        if other._exact is not None:
            for value in other._exact:
                bucket = self._bucket_of(value)
                buckets[bucket] = buckets.get(bucket, 0) + 1
        else:
            for bucket, n in other._buckets.items():
                buckets[bucket] = buckets.get(bucket, 0) + n
        return self

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-able form.  The exact store is sorted so two
        sketches holding the same multiset serialize identically regardless
        of arrival order."""
        state: Dict[str, Any] = {
            "subbuckets": self.subbuckets,
            "exact_limit": self.exact_limit,
            "count": self.count,
            "total": self.total,
        }
        if self.count:
            state["min"] = self.min
            state["max"] = self.max
        if self._exact is not None:
            state["exact"] = sorted(self._exact)
        else:
            state["buckets"] = {str(b): n
                                for b, n in sorted(self._buckets.items())}
        return state

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "QuantileSketch":
        sketch = cls(subbuckets=state["subbuckets"],
                     exact_limit=state["exact_limit"])
        sketch.count = state["count"]
        sketch.total = state["total"]
        if sketch.count:
            sketch.min = state["min"]
            sketch.max = state["max"]
        if "exact" in state:
            sketch._exact = list(state["exact"])
        else:
            sketch._exact = None
            sketch._buckets = {int(b): n
                               for b, n in state.get("buckets", {}).items()}
        return sketch

    def summary(self) -> Dict[str, float]:
        """The standard percentile row the observability surfaces report."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
            "max": self.max if self.count else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "exact" if self.is_exact else f"{len(self._buckets)} buckets"
        return f"<QuantileSketch n={self.count} {mode}>"
