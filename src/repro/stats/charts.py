"""Plain-text charts for the paper's figures.

Renders Figure 4.1-style stacked execution-time bars (Busy / Cont / Read /
Write / Sync, FLASH normalized to 100) as monospace text, so examples and
benchmark output can show the figure shape without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["stacked_bar", "figure_4_1_chart"]

#: category -> glyph, in the paper's stacking order
_GLYPHS = [
    ("busy", "#"),
    ("cont", "%"),
    ("read", "="),
    ("write", "+"),
    ("sync", "."),
]


def stacked_bar(breakdown: Dict[str, float], scale: float,
                width: int = 60) -> Tuple[str, float]:
    """One bar: returns (bar text, total height in normalized units)."""
    total = sum(breakdown.get(key, 0.0) for key, _g in _GLYPHS)
    normalized = total * scale
    chars: List[str] = []
    for key, glyph in _GLYPHS:
        span = int(round(breakdown.get(key, 0.0) * scale * width / 100.0))
        chars.append(glyph * span)
    bar = "".join(chars)[:width * 2]
    return bar, normalized


def figure_4_1_chart(results: Sequence[Tuple[str, str, Dict[str, float], float]],
                     width: int = 50) -> str:
    """Render Figure 4.1 bars.

    ``results`` rows are (app, machine label, breakdown dict, execution
    time); within each app, bars are normalized so the FLASH bar is 100.
    """
    lines = [
        "Execution time (FLASH = 100):  "
        "# busy  % cache-contention  = read  + write  . sync",
        "",
    ]
    flash_time: Dict[str, float] = {}
    for app, machine, _breakdown, exec_time in results:
        if machine.lower().startswith("flash"):
            flash_time[app] = exec_time
    for app, machine, breakdown, exec_time in results:
        scale = 100.0 / flash_time.get(app, exec_time)
        bar, height = stacked_bar(breakdown, scale, width=width)
        lines.append(f"{app:8} {machine:6} |{bar:<{width}}| {height:6.1f}")
    return "\n".join(lines)
