"""Statistics: execution-time breakdowns, run results, monitoring, charts."""

from .breakdown import CpuTimes, NodeStats, merge_cpu_times
from .charts import figure_4_1_chart, stacked_bar
from .monitor import ProtocolMonitor, SharingPattern
from .report import RunResult, crmt

__all__ = ["CpuTimes", "NodeStats", "merge_cpu_times", "figure_4_1_chart",
           "stacked_bar", "ProtocolMonitor", "SharingPattern", "RunResult",
           "crmt"]
