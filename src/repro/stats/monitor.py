"""Protocol-level performance monitoring.

Flexibility "allows extensive and accurate performance monitoring" (Section
1) and "can be used to dynamically detect hot-spotting situations and
provide support for techniques such as automatic page remapping or
migration" (Section 4.4).  This module is that monitoring layer: a
per-node observer the protocol engine feeds with every classified miss,
accumulating exactly the information a remapping policy would need:

* per-page miss counts, split local/remote — the hot-page ranking;
* per-requester traffic to this home — who is hammering this node;
* a sharing-pattern classifier per line (private / read-shared /
  migratory / producer-consumer), driven by the observed access sequence.

The monitor is pure bookkeeping: in FLASH these counters live in protocol
memory and cost a few PP cycles per handler (already included in the
handler occupancies, which the paper notes were measured with monitoring
compiled in).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from ..common.units import PAGE_BYTES
from ..protocol.coherence import MissClass

__all__ = ["ProtocolMonitor", "SharingPattern"]


class SharingPattern:
    """Line-level sharing classifications."""

    PRIVATE = "private"                  # one node only
    READ_SHARED = "read_shared"          # many readers, no second writer
    MIGRATORY = "migratory"              # read-then-write hand-offs
    PRODUCER_CONSUMER = "producer_consumer"  # one writer, other readers


class _LineObservation:
    __slots__ = ("readers", "writers", "handoffs", "last_toucher")

    def __init__(self) -> None:
        self.readers: set = set()
        self.writers: set = set()
        self.handoffs = 0
        self.last_toucher: Optional[int] = None


class ProtocolMonitor:
    """Observer for one node's home traffic."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.page_local: Counter = Counter()
        self.page_remote: Counter = Counter()
        self.requester_traffic: Counter = Counter()
        self.class_counts: Counter = Counter()
        self._lines: Dict[int, _LineObservation] = {}

    # -- feed ------------------------------------------------------------------

    def note_miss(self, miss_class: str, line_addr: int, requester: int,
                  is_write: bool = False) -> None:
        page = line_addr // PAGE_BYTES
        self.class_counts[miss_class] += 1
        self.requester_traffic[requester] += 1
        if miss_class.startswith("local"):
            self.page_local[page] += 1
        else:
            self.page_remote[page] += 1
        obs = self._lines.get(line_addr)
        if obs is None:
            obs = _LineObservation()
            self._lines[line_addr] = obs
        if is_write:
            obs.writers.add(requester)
        else:
            obs.readers.add(requester)
        if obs.last_toucher is not None and obs.last_toucher != requester:
            obs.handoffs += 1
        obs.last_toucher = requester

    def note_write(self, line_addr: int, requester: int) -> None:
        self.note_miss(MissClass.LOCAL_CLEAN if requester == self.node_id
                       else MissClass.REMOTE_CLEAN,
                       line_addr, requester, is_write=True)

    # -- analysis ---------------------------------------------------------------

    def hot_pages(self, top: int = 10) -> List[Tuple[int, int, int]]:
        """(page, remote misses, local misses), hottest remote first — the
        candidates an automatic-migration policy would move."""
        pages = set(self.page_remote) | set(self.page_local)
        ranked = sorted(
            pages, key=lambda p: self.page_remote.get(p, 0), reverse=True
        )
        return [
            (page, self.page_remote.get(page, 0), self.page_local.get(page, 0))
            for page in ranked[:top]
        ]

    def remote_fraction(self) -> float:
        remote = sum(self.page_remote.values())
        total = remote + sum(self.page_local.values())
        return remote / total if total else 0.0

    def dominant_requesters(self, top: int = 4) -> List[Tuple[int, int]]:
        return self.requester_traffic.most_common(top)

    def classify_line(self, line_addr: int) -> str:
        obs = self._lines.get(line_addr)
        if obs is None or len(obs.readers | obs.writers) <= 1:
            return SharingPattern.PRIVATE
        if not obs.writers:
            return SharingPattern.READ_SHARED
        if len(obs.writers) == 1:
            return SharingPattern.PRODUCER_CONSUMER
        return SharingPattern.MIGRATORY

    def pattern_histogram(self) -> Counter:
        histogram: Counter = Counter()
        for line_addr in self._lines:
            histogram[self.classify_line(line_addr)] += 1
        return histogram

    def migration_advice(self, threshold: int = 8) -> List[Tuple[int, int]]:
        """(page, suggested new home): pages whose remote traffic exceeds
        ``threshold`` and is dominated by a single remote node."""
        advice = []
        per_page_requesters: Dict[int, Counter] = {}
        for line_addr, obs in self._lines.items():
            page = line_addr // PAGE_BYTES
            counts = per_page_requesters.setdefault(page, Counter())
            for node in obs.readers | obs.writers:
                if node != self.node_id:
                    counts[node] += 1
        for page, remote, _local in self.hot_pages(top=64):
            if remote < threshold:
                continue
            counts = per_page_requesters.get(page)
            if not counts:
                continue
            node, hits = counts.most_common(1)[0]
            if hits >= sum(counts.values()) * 0.6:
                advice.append((page, node))
        return advice
