"""Windowed time-series sampling of occupancies and queue depths.

The paper's Section 4.3 hot-spot analysis needs occupancy *over time*, not
just the end-of-run average: a home node that saturates for one phase of
Ocean looks unremarkable in the aggregate.  :class:`TimeseriesSampler` is a
pure-observer simulation process: every ``interval`` cycles it snapshots the
per-node ``pp_busy`` / memory ``busy_cycles`` deltas (giving windowed
occupancy in [0, 1]) and the total bounded-queue depth per node, and appends
the row to the owning :class:`~repro.stats.trace.Tracer`.

The sampler only reads counters and schedules its own timeouts, so simulated
results are byte-identical with or without it (asserted by the trace test
suite).  It exits when the workload's completion event fires — the machine
runs the environment until the schedule drains, so an unconditional loop
would keep the run alive forever.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..sim.queues import BoundedQueue, node_of_queue

__all__ = ["TimeseriesSampler", "DEFAULT_SAMPLE_INTERVAL", "hot_windows",
           "SERIES_COLUMNS"]

#: Default sampling interval in cycles (~1000 windows on a typical app run).
DEFAULT_SAMPLE_INTERVAL = 2048.0


class TimeseriesSampler:
    """Samples one machine's occupancies into ``tracer.timeseries``."""

    def __init__(self, machine, tracer, interval: float = None):
        self.machine = machine
        self.tracer = tracer
        self.interval = float(
            interval if interval is not None
            else tracer.sample_interval or DEFAULT_SAMPLE_INTERVAL)

    def process(self, finished):
        """The sampling process; ``finished`` is the workload's completion
        event (sampling stops at the first wake-up after it fires)."""
        machine = self.machine
        env = machine.env
        interval = self.interval
        nodes = machine.nodes
        n = len(nodes)
        last_pp = [0.0] * n
        last_mem = [0.0] * n
        # Bounded queues grouped by owning node (name-derived, fixed set).
        per_node_queues: List[List[BoundedQueue]] = [[] for _ in range(n)]
        for queue in env._queues:
            if not isinstance(queue, BoundedQueue):
                continue
            node = node_of_queue(queue)
            if node is not None and node < n:
                per_node_queues[node].append(queue)
        while not finished.triggered:
            yield env.timeout(interval)
            now = env._now
            pp_occ = []
            mem_occ = []
            depths = []
            for index, node in enumerate(nodes):
                pp = node.stats.pp_busy
                mem = node.memory.busy_cycles
                pp_occ.append((pp - last_pp[index]) / interval)
                mem_occ.append((mem - last_mem[index]) / interval)
                last_pp[index] = pp
                last_mem[index] = mem
                depths.append(sum(len(q) for q in per_node_queues[index]))
            self.tracer.sample(now, pp_occ, mem_occ, depths)


#: Sampled series name -> column index in a ``tracer.timeseries`` row.
SERIES_COLUMNS = {"pp_occupancy": 1, "memory_occupancy": 2, "queue_depth": 3}


def hot_windows(tracer, top: int = 3, series=None,
                percentiles=()) -> Dict[str, List[Dict[str, Any]]]:
    """The hottest sampled windows per metric — the Section 4.3 question
    ("which home saturated, and when?") as data.  Returns up to ``top``
    ``{"t", "node", "value"}`` rows per metric, hottest first.

    ``series`` restricts the ranking to the named sampled series (any
    subset of :data:`SERIES_COLUMNS`; default: all of them).
    ``percentiles`` (e.g. ``(0.5, 0.99)``) adds per-window ``pXX`` columns
    to each row: the exact quantile of that series *across nodes* within
    the row's sampling window, so a hot node reads against its
    contemporaries (node 5 at 0.9 occupancy means more when the p50 that
    window was 0.1 than when it was 0.8).
    """
    from .quantiles import exact_quantile

    if series is None:
        chosen = list(SERIES_COLUMNS.items())
    else:
        names = [series] if isinstance(series, str) else list(series)
        unknown = [name for name in names if name not in SERIES_COLUMNS]
        if unknown:
            raise ValueError(
                f"unknown series {unknown!r}"
                f" (have {sorted(SERIES_COLUMNS)})")
        chosen = [(name, SERIES_COLUMNS[name]) for name in names]
    labels = [f"p{q * 100:g}".replace(".", "_") for q in percentiles]
    ranked: Dict[str, List[Dict[str, Any]]] = {}
    for key, column in chosen:
        rows = []
        for sample in tracer.timeseries:
            ts = sample[0]
            values = sample[column]
            window_stats = {
                label: exact_quantile(values, q)
                for label, q in zip(labels, percentiles)
            }
            for node, value in enumerate(values):
                if value > 0:
                    row = {"t": ts, "node": node, "value": value}
                    row.update(window_stats)
                    rows.append(row)
        rows.sort(key=lambda r: (-r["value"], r["t"], r["node"]))
        ranked[key] = rows[:top]
    return ranked
