"""Run results and derived metrics.

Collects the quantities the paper's tables report: execution-time breakdown
(Figure 4.1), miss rates and read-miss distributions, contentionless read
miss time (CRMT), average memory and PP occupancy (Tables 4.1/4.2), and the
speculation and MDC statistics of Section 5.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..protocol.coherence import MissClass
from .breakdown import CpuTimes, merge_cache_stats, merge_cpu_times
from .critpath import extract_critical_path
from .metrics import harvest_machine

__all__ = ["RunResult", "crmt"]


def crmt(distribution: Dict[str, float], latencies: Dict[str, float]) -> float:
    """Contentionless read miss time: the distribution-weighted average of
    the no-contention read miss latencies (Section 4.1)."""
    total = sum(distribution.values())
    if total == 0:
        return 0.0
    return sum(
        distribution[cls] / total * latencies[cls]
        for cls in distribution
        if cls in latencies
    )


class RunResult:
    """Everything measured from one simulation run.

    Serializable: :meth:`to_json` produces a canonical (sorted-key, compact)
    JSON form that round-trips losslessly through :meth:`from_json`, so
    results can cross process boundaries (the run farm) and persist on disk
    (the result cache).  Two identical simulations serialize byte-identically.
    """

    #: Serialization schema version; bump when the measured fields change.
    SCHEMA = 1

    #: Scalar/plain-container attributes, serialized verbatim.
    _PLAIN_FIELDS = (
        "kind", "n_procs", "cache_size", "execution_time", "breakdown",
        "total_reads", "total_writes", "read_misses", "write_misses",
        "miss_classes", "memory_occupancy", "pp_occupancy",
        "spec_issued", "spec_useless", "mdc_accesses", "mdc_misses",
        "mdc_writebacks", "mdc_miss_rates", "handler_invocations",
        "pp_handler_cycles", "network_messages", "pp_dynamic",
    )

    #: Optional Table 5.2 totals, attached only for emulator-backend runs.
    pp_dynamic: Optional[Dict[str, float]] = None

    #: Class-level defaults for attributes set conditionally: deserialized
    #: or stripped-down results fall back to None instead of AttributeError.
    cache_totals: Optional[Dict[str, int]] = None
    fault_counters: Optional[Dict[str, int]] = None
    #: Per-miss-class latency decomposition (``Tracer.decomposition()``);
    #: present — and serialized — only for traced runs, so untraced results
    #: (including the golden-hash matrix) are byte-identical to the seed.
    latency_decomposition: Optional[Dict[str, Any]] = None
    #: Metrics registry snapshot (``MetricsRegistry.to_dict()`` after
    #: ``harvest_machine``); present — and serialized — only for metrics-on
    #: runs, so metrics-off canonical JSON is byte-identical to the seed.
    metrics: Optional[Dict[str, Any]] = None
    #: Open-loop latency snapshot (``LatencyMonitor.to_dict()``); present —
    #: and serialized — only when a monitor was attached, same contract.
    load_latency: Optional[Dict[str, Any]] = None
    #: Critical-path attribution (``repro.stats.critpath``); present — and
    #: serialized — only for traced runs, same contract.
    critpath: Optional[Dict[str, Any]] = None

    def __init__(self, machine, execution_time: float):
        config = machine.config
        self.kind = config.kind
        self.n_procs = config.n_procs
        self.cache_size = config.proc_cache.size_bytes
        self.execution_time = execution_time
        self.cpu_times: List[CpuTimes] = [node.cpu.times for node in machine.nodes]
        self.breakdown = merge_cpu_times(self.cpu_times)
        # References and miss rates.
        self.total_reads = sum(n.cpu.total_reads for n in machine.nodes)
        self.total_writes = sum(n.cpu.total_writes for n in machine.nodes)
        cache_stats = merge_cache_stats(n.cpu.cache.stats for n in machine.nodes)
        self.read_misses = cache_stats.read_misses
        self.write_misses = cache_stats.write_misses
        #: Machine-wide processor-cache counters (not serialized — present
        #: only on freshly simulated results; the profile report prints it).
        self.cache_totals = cache_stats.to_dict()
        #: Fault-injection counters (not serialized — set by the harness on
        #: freshly simulated fault-injected runs; see ``repro.faults``).
        self.fault_counters: Optional[Dict[str, int]] = None
        # Read-miss classification (summed over homes).
        self.miss_classes: Dict[str, int] = {cls: 0 for cls in MissClass.ALL}
        for node in machine.nodes:
            for cls, count in node.engine.miss_classes.items():
                self.miss_classes[cls] += count
        # Occupancies.
        self.memory_occupancy = [
            node.memory.occupancy(execution_time) for node in machine.nodes
        ]
        self.pp_occupancy = [
            node.stats.pp_occupancy(execution_time) for node in machine.nodes
        ]
        # Speculation (Table 5.1).
        self.spec_issued = sum(n.stats.spec_issued for n in machine.nodes)
        self.spec_useless = sum(n.stats.spec_useless for n in machine.nodes)
        # MDC (Section 5.2).
        mdcs = [n.mdc for n in machine.nodes if n.mdc is not None]
        self.mdc_accesses = sum(m.accesses for m in mdcs)
        self.mdc_misses = sum(m.read_misses for m in mdcs)
        self.mdc_writebacks = sum(m.writeback_victims for m in mdcs)
        self.mdc_miss_rates = [m.miss_rate for m in mdcs]
        # Handler statistics (Table 5.2 inputs).
        self.handler_invocations = sum(
            n.stats.handler_invocations for n in machine.nodes
        )
        self.pp_handler_cycles = sum(
            n.stats.pp_handler_cycles for n in machine.nodes
        )
        self.network_messages = machine.network.messages_sent
        # Latency decomposition (traced runs only; see repro.stats.trace).
        tracer = getattr(machine, "tracer", None)
        if tracer is not None:
            self.latency_decomposition = tracer.decomposition()
            finish = [node.cpu.times.finish_time for node in machine.nodes]
            self.critpath = extract_critical_path(
                tracer, execution_time, finish)
        # Metrics registry (metrics-on runs only; see repro.stats.metrics):
        # fold the subsystems' unconditional counters in, then snapshot.
        registry = getattr(machine, "metrics", None)
        if registry is not None:
            harvest_machine(registry, machine)
            self.metrics = registry.to_dict()
        # Open-loop latency (monitor-attached runs only; repro.stats.latency).
        monitor = getattr(machine, "loadlat", None)
        if monitor is not None:
            self.load_latency = monitor.to_dict(execution_time)

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {"schema": self.SCHEMA}
        for name in self._PLAIN_FIELDS:
            state[name] = getattr(self, name)
        state["cpu_times"] = [times.to_state() for times in self.cpu_times]
        if self.latency_decomposition is not None:
            # Only traced runs carry (and serialize) a decomposition, so the
            # canonical JSON of untraced runs is unchanged.
            state["latency_decomposition"] = self.latency_decomposition
        if self.metrics is not None:
            # Same contract for the metrics registry snapshot.
            state["metrics"] = self.metrics
        if self.load_latency is not None:
            # Same contract for the open-loop latency snapshot.
            state["load_latency"] = self.load_latency
        if self.critpath is not None:
            # Same contract for the critical-path attribution.
            state["critpath"] = self.critpath
        return state

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "RunResult":
        if state.get("schema") != cls.SCHEMA:
            raise ValueError(
                f"RunResult schema mismatch: got {state.get('schema')!r}, "
                f"expected {cls.SCHEMA}"
            )
        result = cls.__new__(cls)
        for name in cls._PLAIN_FIELDS:
            setattr(result, name, state[name])
        result.cpu_times = [CpuTimes.from_state(s) for s in state["cpu_times"]]
        decomposition = state.get("latency_decomposition")
        if decomposition is not None:
            result.latency_decomposition = decomposition
        metrics = state.get("metrics")
        if metrics is not None:
            result.metrics = metrics
        load_latency = state.get("load_latency")
        if load_latency is not None:
            result.load_latency = load_latency
        critpath = state.get("critpath")
        if critpath is not None:
            result.critpath = critpath
        return result

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators — byte-stable for
        identical runs, so determinism can be asserted on the serialized form."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))

    # -- derived metrics ----------------------------------------------------------

    @property
    def references(self) -> int:
        return self.total_reads + self.total_writes

    @property
    def miss_rate(self) -> float:
        refs = self.references
        return (self.read_misses + self.write_misses) / refs if refs else 0.0

    @property
    def read_miss_distribution(self) -> Dict[str, float]:
        """Fraction of read misses per class (Table 4.1 rows)."""
        total = sum(self.miss_classes.values())
        if total == 0:
            return {cls: 0.0 for cls in MissClass.ALL}
        return {cls: n / total for cls, n in self.miss_classes.items()}

    @property
    def avg_memory_occupancy(self) -> float:
        return sum(self.memory_occupancy) / len(self.memory_occupancy)

    @property
    def max_memory_occupancy(self) -> float:
        return max(self.memory_occupancy)

    @property
    def avg_pp_occupancy(self) -> float:
        return sum(self.pp_occupancy) / len(self.pp_occupancy)

    @property
    def max_pp_occupancy(self) -> float:
        return max(self.pp_occupancy)

    @property
    def useless_spec_fraction(self) -> float:
        return self.spec_useless / self.spec_issued if self.spec_issued else 0.0

    @property
    def mdc_miss_rate(self) -> float:
        return self.mdc_misses / self.mdc_accesses if self.mdc_accesses else 0.0

    @property
    def handlers_per_miss(self) -> float:
        misses = self.read_misses + self.write_misses
        return self.handler_invocations / misses if misses else 0.0

    def crmt(self, latencies: Dict[str, float]) -> float:
        return crmt(dict(self.miss_classes), latencies)

    def summary(self) -> Dict[str, float]:
        return {
            "kind": self.kind,
            "execution_time": self.execution_time,
            "miss_rate": self.miss_rate,
            "avg_pp_occupancy": self.avg_pp_occupancy,
            "avg_memory_occupancy": self.avg_memory_occupancy,
        }


# ---------------------------------------------------------------------------
# Per-subsystem profile attribution (``python -m repro.harness profile``)
# ---------------------------------------------------------------------------

#: Ordered map of subsystem label -> path fragments that claim a frame.
#: First match wins; anything unclaimed lands in "other" (stdlib, harness,
#: stats collection, builtins).
PROFILE_SUBSYSTEMS = (
    ("cache", ("/repro/caches/",)),
    ("cpu", ("/repro/processor/",)),
    ("protocol", ("/repro/protocol/", "/repro/magic/", "/repro/ideal/",
                  "/repro/pp/")),
    ("network", ("/repro/network/", "/repro/msgpass/")),
    ("memory", ("/repro/memory/",)),
    ("kernel", ("/repro/sim/",)),
    ("workload", ("/repro/apps/",)),
)


def _subsystem_of(filename: str) -> str:
    path = filename.replace("\\", "/")
    for label, fragments in PROFILE_SUBSYSTEMS:
        for fragment in fragments:
            if fragment in path:
                return label
    return "other"


def attribute_profile(profile) -> Dict[str, Any]:
    """Bucket a finished :class:`cProfile.Profile` by simulator subsystem.

    Attribution uses *tottime* (time inside the frame itself, excluding
    callees), so every sampled nanosecond is counted exactly once and the
    buckets sum to the profiled wall clock.  Returns ``{"total": seconds,
    "subsystems": {label: seconds}, "top": {label: [(where, seconds), ...]}}``.
    """
    import pstats

    stats = pstats.Stats(profile)
    buckets: Dict[str, float] = {}
    top: Dict[str, List] = {}
    for (filename, lineno, funcname), (cc, nc, tt, ct, callers) in \
            stats.stats.items():  # type: ignore[attr-defined]
        label = _subsystem_of(filename)
        buckets[label] = buckets.get(label, 0.0) + tt
        if tt > 0:
            short = filename.replace("\\", "/").rsplit("/", 1)[-1]
            top.setdefault(label, []).append((f"{short}:{funcname}", tt, nc))
    for label in top:
        top[label].sort(key=lambda item: item[1], reverse=True)
    return {
        "total": sum(buckets.values()),
        "subsystems": buckets,
        "top": top,
    }


def render_profile(attribution: Dict[str, Any], title: str,
                   top_n: int = 3,
                   cache_totals: Optional[Dict[str, int]] = None) -> str:
    """Human-readable per-subsystem attribution table with the ``top_n``
    hottest frames inside each subsystem.  ``cache_totals`` (a
    :meth:`~repro.caches.setassoc.CacheStats.to_dict` snapshot) appends the
    machine-wide processor-cache counters the run produced."""
    total = attribution["total"] or 1e-12
    order = [label for label, _ in PROFILE_SUBSYSTEMS] + ["other"]
    lines = [title, "=" * len(title)]
    lines.append(f"{'subsystem':<10} {'seconds':>9} {'share':>7}")
    lines.append("-" * 28)
    for label in order:
        seconds = attribution["subsystems"].get(label, 0.0)
        lines.append(f"{label:<10} {seconds:>9.3f} {seconds / total:>6.1%}")
        for where, tt, nc in attribution["top"].get(label, [])[:top_n]:
            lines.append(f"    {where:<40} {tt:>8.3f}s  x{nc}")
    lines.append("-" * 28)
    lines.append(f"{'total':<10} {attribution['total']:>9.3f}")
    if cache_totals:
        lines.append("")
        lines.append("processor-cache counters (machine-wide)")
        for key, count in cache_totals.items():
            lines.append(f"  {key:<24} {count:>12,}")
    return "\n".join(lines)
