"""Critical-path extraction and criticality attribution.

The PR 4 tracer answers *where* cycles go (the per-miss-class latency
decomposition); this module answers *which* cycles mattered.  Occupancy off
the critical path is free — a handler can burn thousands of PP cycles under
a read miss that retires long before the barrier the program is actually
waiting on, and speeding it up would change nothing.  Following the
criticality literature (Criticality Aware Multiprocessors, the
phase-priority directory-coherence work — see PAPERS.md), we extract the
one chain of waits that determines end-to-end execution time and attribute
its length by subsystem, miss class, and handler.

The extraction is a **backward walk over recorded wait intervals**, not a
forward DAG traversal: the tracer's raw data
(:attr:`~repro.stats.trace.Tracer.cpu_segments`,
:attr:`~repro.stats.trace.Tracer.retired`, barrier episodes, lock releases)
gives, for every node, a time-ordered list of the intervals in which its
CPU was *not* executing references, plus what ended each wait.  Starting
from the last-finishing node at ``T = execution_time`` the walk repeatedly
asks "what was this node doing just before ``t``?":

* a gap between wait segments is **cpu** work (references + cache busy +
  the uncharged flush/contention slices) — consume it and keep walking;
* a **barrier** wait was ended by the *last arriving* node — jump to that
  node at the release time and continue on its timeline (the classic
  critical-path edge: everyone else's wait was slack);
* a **lock** wait was ended by the previous holder's release — jump to the
  releasing node (cycle-guarded; on a revisit the wait resolves locally);
* a **read/write/sync** stall resolves against the node's own retired
  transactions: the latest-retiring miss overlapping the interval explains
  it, and its per-component / per-handler cycle decomposition is credited
  as *critical* in proportion to the explained span;
* **recv** waits bucket as ``xfer``, open-loop pacing waits as ``idle``.

Every consumed interval is contiguous with the previous one and the walk
only ever moves ``t`` to a recorded float boundary, terminating at exactly
``0.0`` — so the reported path length equals ``execution_time`` **exactly**
(not to rounding): the buckets tile the run.  ``pieces_sum`` (a
``math.fsum`` over the pieces) is the approximate cross-check.

The result is a plain JSON-able dict stored as ``RunResult.critpath`` and
flattened into ``critpath/...`` metric rows; ``harness whatif`` uses the
per-handler ``critical_cycles`` as the predicted speedup from scaling that
handler (Coz-style causal profiling closes the loop by measuring it).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .trace import _hist_bucket

__all__ = ["extract_critical_path", "render_critpath", "BUCKETS"]

#: Top-level wall-time buckets, in presentation order; they tile the run.
BUCKETS = ("cpu", "read", "write", "sync", "xfer", "idle")

#: Wait-segment kind -> bucket for segments resolved on the local timeline.
_KIND_BUCKET = {"r": "read", "w": "write", "b": "sync", "l": "sync",
                "u": "sync", "v": "xfer", "i": "idle"}

#: Number of handlers named in the "top causal levers" footer.
TOP_LEVERS = 3


class _Walk:
    """Mutable state of one backward walk (split out for testability)."""

    def __init__(self, tracer, execution_time: float):
        self.tracer = tracer
        self.T = execution_time
        self.pieces: List[float] = []
        self.buckets = {b: 0.0 for b in BUCKETS}
        self.classes: Dict[str, float] = {}
        self.residual = {"read": 0.0, "write": 0.0, "sync": 0.0}
        self.components: Dict[str, float] = {}
        self.handler_critical: Dict[str, float] = {}
        self.handler_txns: Dict[str, int] = {}
        self.jumps = {"barrier": 0, "lock": 0, "fallback": 0}
        self._credited: set = set()
        # Per-node sorted views of the tracer's raw data.
        self.segs = {n: list(v) for n, v in tracer.cpu_segments.items()}
        self.seg_ends = {n: [s[1] for s in v] for n, v in self.segs.items()}
        self.recs = {n: list(v) for n, v in tracer.retired.items()}
        self.rec_retires = {n: [r[0] for r in v] for n, v in self.recs.items()}
        self.episodes = {(bid, rel): last
                         for rel, last, bid in tracer.barrier_episodes}
        self.releases = {lock: ([t for t, _ in evs], [n for _, n in evs])
                         for lock, evs in tracer.lock_releases.items()}

    # -- pieces -----------------------------------------------------------------

    def _consume(self, bucket: str, duration: float) -> None:
        if duration <= 0.0:
            return
        self.pieces.append(duration)
        self.buckets[bucket] += duration

    # -- transaction resolution ---------------------------------------------------

    def _resolve_txns(self, node: int, t0: float, t1: float,
                      residual: str) -> None:
        """Explain the stall interval ``[t0, t1]`` on ``node`` by the node's
        own retired misses, latest-retiring first; credit their component /
        handler decompositions as critical in proportion to the explained
        span.  Unexplained remainder lands in ``residual[residual]``."""
        self._consume(_KIND_BUCKET_RESIDUAL[residual], t1 - t0)
        recs = self.recs.get(node)
        retires = self.rec_retires.get(node)
        t = t1
        while t > t0:
            rec = None
            if recs:
                i = bisect_right(retires, t) - 1
                while i >= 0:
                    if recs[i][1] < t:       # start < t: overlaps (.., t]
                        rec = recs[i]
                        break
                    i -= 1
            if rec is None:
                self.residual[residual] += t - t0
                break
            retire, start, _line, cls, _is_write, comp, handlers = rec
            lo = max(t0, start)
            explained = t - lo
            self.classes[cls] = self.classes.get(cls, 0.0) + explained
            duration = retire - start
            frac = min(1.0, explained / duration) if duration > 0.0 else 1.0
            for key, value in comp.items():
                if value:
                    self.components[key] = (
                        self.components.get(key, 0.0) + value * frac)
            if handlers:
                first = id(rec) not in self._credited
                self._credited.add(id(rec))
                for handler, cycles in handlers.items():
                    self.handler_critical[handler] = (
                        self.handler_critical.get(handler, 0.0)
                        + cycles * frac)
                    if first:
                        self.handler_txns[handler] = (
                            self.handler_txns.get(handler, 0) + 1)
            t = lo

    # -- the walk ---------------------------------------------------------------

    def run(self, start_node: int) -> float:
        """Walk backward from ``(start_node, T)``; returns the final ``t``
        (exactly ``0.0`` when the path tiles the whole run)."""
        node = start_node
        t = self.T
        visited: set = set()
        while t > 0.0:
            ends = self.seg_ends.get(node)
            if not ends:
                self._consume("cpu", t)
                return 0.0
            i = bisect_right(ends, t) - 1
            if i < 0:
                self._consume("cpu", t)
                return 0.0
            s0, s1, kind, arg = self.segs[node][i]
            if s1 < t:
                self._consume("cpu", t - s1)
                t = s1
                continue
            # Segment ends exactly at t: resolve what ended the wait.
            if kind == "b":
                last = self.episodes.get((arg, s1))
                key = (node, "b", arg, s1)
                if last is not None and last != node and key not in visited:
                    visited.add(key)
                    self.jumps["barrier"] += 1
                    node = last
                    continue
                self._resolve_txns(node, s0, s1, "sync")
            elif kind == "l":
                releaser = self._lock_releaser(arg, s1, node)
                key = (node, "l", arg, s1)
                if releaser is not None and key not in visited:
                    visited.add(key)
                    self.jumps["lock"] += 1
                    node = releaser
                    continue
                if releaser is None:
                    self.jumps["fallback"] += 1
                self._resolve_txns(node, s0, s1, "sync")
            elif kind == "u":
                self._resolve_txns(node, s0, s1, "sync")
            elif kind == "r":
                self._resolve_txns(node, s0, s1, "read")
            elif kind == "w":
                self._resolve_txns(node, s0, s1, "write")
            else:   # "v" recv -> xfer, "i" pacing -> idle
                self._consume(_KIND_BUCKET[kind], s1 - s0)
            t = s0
        return t

    def _lock_releaser(self, lock, ts: float, node: int) -> Optional[int]:
        entry = self.releases.get(lock)
        if entry is None:
            return None
        times, nodes = entry
        i = bisect_left(times, ts)
        while i < len(times) and times[i] == ts:
            if nodes[i] != node:
                return nodes[i]
            i += 1
        return None


#: Residual kinds map onto the same top-level buckets.
_KIND_BUCKET_RESIDUAL = {"read": "read", "write": "write", "sync": "sync"}


def extract_critical_path(tracer, execution_time: float,
                          finish_times: Sequence[float]) -> Dict[str, Any]:
    """Extract the run's critical path from the tracer's raw wait data.

    Returns a JSON-able dict: exact ``length`` (== ``execution_time`` by
    construction), the :data:`BUCKETS` tiling, per-miss-class / component /
    handler critical-cycle attributions, per-handler slack histograms, and
    the top causal levers.  ``finish_times`` are the per-node CPU finish
    times (the walk starts at the argmax).
    """
    start_node = max(range(len(finish_times)),
                     key=lambda n: (finish_times[n], -n)) \
        if finish_times else 0
    walk = _Walk(tracer, execution_time)
    t_final = walk.run(start_node)
    length = execution_time - t_final

    handlers: Dict[str, Any] = {}
    totals = tracer.pp_handler_totals
    for handler in sorted(set(totals) | set(walk.handler_critical)):
        critical = walk.handler_critical.get(handler, 0.0)
        handlers[handler] = {
            "critical_cycles": critical,
            "total_cycles": totals.get(handler, 0.0),
            "share": critical / execution_time if execution_time else 0.0,
            "critical_txns": walk.handler_txns.get(handler, 0),
        }
    levers = sorted(
        (h for h, entry in handlers.items() if entry["total_cycles"] > 0.0),
        key=lambda h: (-handlers[h]["critical_cycles"], h))[:TOP_LEVERS]

    return {
        "length": length,
        "start_node": start_node,
        "pieces": len(walk.pieces),
        "pieces_sum": math.fsum(walk.pieces),
        "buckets": walk.buckets,
        "classes": dict(sorted(walk.classes.items())),
        "residual": walk.residual,
        "components": dict(sorted(walk.components.items())),
        "handlers": handlers,
        "levers": levers,
        "slack": _slack_histograms(tracer, execution_time),
        "jumps": walk.jumps,
    }


def _slack_histograms(tracer, execution_time: float) -> Dict[str, Any]:
    """Per-handler slack histograms over *all* retired transactions that
    invoked the handler.  Slack is measured to the retiring node's next
    barrier release (else end of run) — an upper bound on how much later
    the miss could have retired without moving that synchronization point;
    small slack marks the requests the criticality literature would
    prioritize.  Log2 buckets match the tracer's latency histograms."""
    barrier_ends: Dict[int, List[float]] = {}
    for node, segs in tracer.cpu_segments.items():
        ends = [s1 for _s0, s1, kind, _arg in segs if kind == "b"]
        if ends:
            barrier_ends[node] = ends
    slack: Dict[str, Any] = {}
    for node, recs in tracer.retired.items():
        ends = barrier_ends.get(node)
        for retire, _start, _line, _cls, _is_write, _comp, handlers in recs:
            if not handlers:
                continue
            if ends:
                i = bisect_left(ends, retire)
                horizon = ends[i] if i < len(ends) else execution_time
            else:
                horizon = execution_time
            value = max(0.0, horizon - retire)
            bucket = str(_hist_bucket(value)) if value > 0.0 else "0"
            for handler in handlers:
                entry = slack.get(handler)
                if entry is None:
                    entry = slack[handler] = {"count": 0, "sum": 0.0,
                                              "hist": {}}
                entry["count"] += 1
                entry["sum"] += value
                entry["hist"][bucket] = entry["hist"].get(bucket, 0) + 1
    for entry in slack.values():
        entry["mean"] = entry["sum"] / entry["count"] if entry["count"] else 0.0
        entry["hist"] = dict(sorted(entry["hist"].items(),
                                    key=lambda kv: int(kv[0])))
    return slack


# ---------------------------------------------------------------------------
# Summary rendering (appended to ``trace --summary``)
# ---------------------------------------------------------------------------


def render_critpath(critpath: Dict[str, Any],
                    title: str = "critical path") -> str:
    """Human-readable criticality summary: the bucket tiling, the
    per-handler criticality-share table, and the top-causal-levers footer."""
    length = critpath["length"]
    lines = [title, "=" * len(title)]
    lines.append(
        f"length {length:.0f} cycles (== execution time; {critpath['pieces']}"
        f" pieces, {critpath['jumps']['barrier']} barrier +"
        f" {critpath['jumps']['lock']} lock jumps)")
    total = length or 1.0
    lines.append("")
    header = f"{'bucket':<8} {'cycles':>12} {'share':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for bucket in BUCKETS:
        cycles = critpath["buckets"].get(bucket, 0.0)
        if cycles <= 0.0 and bucket in ("xfer", "idle"):
            continue
        lines.append(f"{bucket:<8} {cycles:>12.0f} {cycles / total:>7.1%}")
    handlers = critpath.get("handlers") or {}
    ranked = sorted(handlers.items(),
                    key=lambda kv: (-kv[1]["critical_cycles"], kv[0]))
    rows = [(h, e) for h, e in ranked
            if e["critical_cycles"] > 0.0 or e["total_cycles"] > 0.0]
    if rows:
        slack = critpath.get("slack") or {}
        lines.append("")
        header = (f"{'handler':<22} {'critical':>10} {'total':>10} "
                  f"{'crit share':>10} {'crit txns':>9} {'mean slack':>10}")
        lines.append(header)
        lines.append("-" * len(header))
        for handler, entry in rows:
            mean_slack = slack.get(handler, {}).get("mean", 0.0)
            lines.append(
                f"{handler:<22} {entry['critical_cycles']:>10.0f} "
                f"{entry['total_cycles']:>10.0f} {entry['share']:>9.1%} "
                f"{entry['critical_txns']:>9} {mean_slack:>10.0f}")
    levers = critpath.get("levers") or []
    lines.append("")
    if levers:
        parts = [f"{h} ({handlers[h]['critical_cycles']:.0f} critical cycles)"
                 for h in levers]
        lines.append(f"top-{len(levers)} causal levers: " + ", ".join(parts))
    else:
        lines.append("top causal levers: none (no PP handler cycles on the"
                     " critical path)")
    return "\n".join(lines)
