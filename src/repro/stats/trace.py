"""Transaction-level tracing and latency decomposition.

The paper's central quantities — PP occupancy, memory occupancy, network
latency (Tables 4.1/4.2, the Section 4.3 hot-spot study) — are end-of-run
aggregates.  :class:`Tracer` records *where inside each miss* that time went:
every component hooks the tracer with a ``tracer is None``-gated call, so a
traced run produces per-transaction lifecycle spans (issue → inbox → queue
wait → PP handler → memory → outbox → network hops → retire) and an untraced
run executes exactly the seed code path (the golden-hash matrix stays
byte-identical).

Three consumers sit on top:

* **Latency decomposition** — per read-miss-class (and write) sums of the
  queue-wait / PP / memory / network cycles charged to each transaction,
  with log2 latency histograms.  Component totals mirror the aggregate
  counters exactly: every ``stats.pp_busy +=`` site emits a matching
  ``pp_span``, every served memory request a ``memory_span`` of
  ``busy_cycles_per_access``, so the machine-wide sums reconcile with
  ``RunResult.pp_occupancy`` / ``memory_occupancy`` to float rounding.
* **Chrome ``trace_event`` export** — :meth:`Tracer.to_trace_events` emits
  complete ("X") events (pid = node, tid = component) plus counter ("C")
  events from the windowed time series, loadable in ``chrome://tracing`` or
  Perfetto.  Raw message uids never appear in the export (the uid counter is
  process-global, so uids differ between two runs in one process; everything
  exported is a pure function of the run).
* **Stall diagnosis** — :meth:`Tracer.in_flight_tail` summarizes the oldest
  in-flight transactions (with their recent span tails) for the watchdog's
  :class:`~repro.sim.watchdog.StallDiagnosis`.

Transactions are keyed ``(requester, line_addr)``: the MSHR file allows one
outstanding miss per line per node, and every protocol message carries both
fields, so no transaction id needs threading through
:class:`~repro.protocol.messages.Message`.  Span memory is ring-buffer
bounded (``REPRO_TRACE=on`` or ``buf=N,nodes=...,sample=T``); aggregates are
exact regardless of buffer size.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..protocol.coherence import MissClass

__all__ = [
    "Tracer", "parse_trace_spec", "validate_trace_events",
    "render_decomposition", "COMPONENTS", "DEFAULT_BUFFER_SPANS",
]

#: Latency components, in presentation order.
COMPONENTS = ("queue", "pp", "memory", "network")

#: Default ring-buffer capacity (spans); aggregates are unaffected by it.
DEFAULT_BUFFER_SPANS = 200_000

#: Decomposition rows beyond the read-miss classes.
WRITE_CLASS = "write"

#: Chrome trace_event tids per node (one "thread" per pipeline stage).
_TRACK_IDS = {
    "cpu": 0, "inbox": 1, "pp": 2, "memory": 3, "net": 4, "pi": 5,
}

#: Recent span labels kept per in-flight transaction for stall diagnosis.
_TAIL_SPANS = 6


def parse_trace_spec(raw: Optional[str]):
    """Parse a ``REPRO_TRACE``-style value: unset/off-ish disables (None);
    ``on`` uses defaults; otherwise ``buf=N,nodes=0+3,sample=T`` tunes the
    ring buffer, the span node filter (``+``-separated ids or ``a-b``
    ranges), and the time-series sampling interval (cycles)."""
    if raw is None:
        return None
    raw = raw.strip().lower()
    if raw in ("", "0", "off", "no", "false"):
        return None
    if raw in ("1", "on", "yes", "true", "default"):
        return {"buf": DEFAULT_BUFFER_SPANS, "nodes": None, "sample": None}
    spec: Dict[str, Any] = {"buf": DEFAULT_BUFFER_SPANS, "nodes": None,
                            "sample": None}
    for part in raw.split(","):
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "buf":
            spec["buf"] = int(value)
        elif key == "nodes":
            spec["nodes"] = parse_nodes(value)
        elif key == "sample":
            spec["sample"] = float(value)
        else:
            raise ValueError(
                f"REPRO_TRACE: unknown key {key!r} "
                "(expected buf, nodes, sample)")
    return spec


def parse_nodes(text: str) -> List[int]:
    """``"0+3+7"`` or ``"0-3"`` (inclusive range) -> sorted node ids."""
    nodes = set()
    for token in text.split("+"):
        token = token.strip()
        if not token:
            continue
        lo, dash, hi = token.partition("-")
        if dash:
            nodes.update(range(int(lo), int(hi) + 1))
        else:
            nodes.add(int(token))
    if not nodes:
        raise ValueError(f"REPRO_TRACE: empty node filter {text!r}")
    return sorted(nodes)


class _Txn:
    """One in-flight miss transaction."""

    __slots__ = ("node", "line", "is_write", "start", "cls", "comp", "tail",
                 "handlers")

    def __init__(self, node: int, line: int, is_write: bool, start: float):
        self.node = node
        self.line = line
        self.is_write = is_write
        self.start = start
        self.cls: Optional[str] = None   # read-miss class, set by the home
        self.comp = {c: 0.0 for c in COMPONENTS}
        self.tail: deque = deque(maxlen=_TAIL_SPANS)
        self.handlers: Dict[str, float] = {}   # per-handler PP cycles


class _ClassAgg:
    """Aggregate decomposition for one miss class."""

    __slots__ = ("count", "latency", "comp", "hist")

    def __init__(self):
        self.count = 0
        self.latency = 0.0
        self.comp = {c: 0.0 for c in COMPONENTS}
        self.hist: Dict[int, int] = {}   # upper-power-of-two latency buckets


def _hist_bucket(latency: float) -> int:
    n = max(1, int(latency))
    return 1 << (n - 1).bit_length()


class Tracer:
    """Per-run trace collector.  One instance per :class:`~repro.machine.Machine`;
    the machine attaches it to every component (``component.tracer = self``)
    and to ``env._tracer`` for watchdog pickup.

    All hook methods are only ever reached behind a ``tracer is not None``
    check at the call site, so a machine built without a tracer pays nothing.
    """

    def __init__(self, buffer_spans: int = DEFAULT_BUFFER_SPANS,
                 nodes: Optional[Iterable[int]] = None,
                 sample_interval: Optional[float] = None):
        self.env = None                     # attached by the Machine
        self.buffer_spans = buffer_spans
        self.node_filter = frozenset(nodes) if nodes is not None else None
        self.sample_interval = sample_interval
        #: Ring buffer of (t0, dur, node, track, name, args) span tuples.
        self.spans: deque = deque(maxlen=buffer_spans or None)
        self.spans_dropped = 0
        self._active: Dict[Tuple[int, int], _Txn] = {}
        self._classes: Dict[str, _ClassAgg] = {}
        #: Component cycles charged to transactions no longer (or never)
        #: tracked: transfer handlers, writebacks, evictions, MDC traffic.
        self.untracked = {c: 0.0 for c in COMPONENTS}
        #: Machine-wide component cycles (tracked + untracked + in-flight);
        #: this is what reconciles against the aggregate occupancies.
        self.totals = {c: 0.0 for c in COMPONENTS}
        self.txns_started = 0
        self.txns_retired = 0
        self._pp_enqueue: Dict[int, float] = {}   # message uid -> enqueue ts
        #: (t, [pp_occ per node], [mem_occ per node], [queue depth per node])
        self.timeseries: List[Tuple] = []
        #: LatencyMonitor (repro.stats.latency), attached by the Machine for
        #: open-loop runs: retiring transactions hand their component
        #: decompositions over so tail exemplars decompose per request.
        self.loadlat = None
        # -- critical-path raw data (repro.stats.critpath) -------------------
        #: Set by Machine._attach_tracer; barrier release = n_procs arrivals.
        self.n_procs = 0
        #: node -> [(t0, t1, kind, arg)] CPU wait segments, in end-time
        #: order.  Kinds: "r" read stall, "w" write stall / fence, ("b",)
        #: barrier, ("l",)/("u",) lock/unlock, ("v",) recv, "i" pacing idle.
        self.cpu_segments: Dict[int, List[Tuple]] = {}
        #: node -> [(retire, start, line, cls, is_write, comp, handlers)]
        #: retired-transaction records, in retire-time order.
        self.retired: Dict[int, List[Tuple]] = {}
        self._barrier_arrivals: Dict[Any, List[Tuple[float, int]]] = {}
        #: [(release_t, last_arriving_node, barrier_id)] per completed episode.
        self.barrier_episodes: List[Tuple[float, int, Any]] = []
        #: lock_id -> [(release_t, releasing_node)] in time order.
        self.lock_releases: Dict[Any, List[Tuple[float, int]]] = {}
        #: handler -> machine-wide PP cycles (critical or not).
        self.pp_handler_totals: Dict[str, float] = {}

    @classmethod
    def from_spec(cls, spec) -> "Tracer":
        """Build from ``parse_trace_spec`` output (or ``True`` for defaults)."""
        if spec is True or spec is None:
            return cls()
        return cls(buffer_spans=spec.get("buf", DEFAULT_BUFFER_SPANS),
                   nodes=spec.get("nodes"),
                   sample_interval=spec.get("sample"))

    # -- span recording ----------------------------------------------------------

    def _span(self, node: int, track: str, name: str, t0: float, t1: float,
              msg=None) -> None:
        if msg is not None:
            args = (msg.mtype, msg.line_addr, msg.requester)
            txn = self._active.get((msg.requester, msg.line_addr))
            if txn is not None:
                txn.tail.append((t1, f"{track}:{name}@node{node}"))
        else:
            args = None
        if self.node_filter is not None and node not in self.node_filter:
            return
        spans = self.spans
        if spans.maxlen is not None and len(spans) == spans.maxlen:
            self.spans_dropped += 1
        spans.append((t0, t1 - t0, node, track, name, args))

    def _charge(self, component: str, requester, line, cycles: float) -> None:
        if cycles <= 0.0:
            return
        self.totals[component] += cycles
        txn = self._active.get((requester, line))
        if txn is not None:
            txn.comp[component] += cycles
        else:
            self.untracked[component] += cycles

    # -- transaction lifecycle (CPU side) ---------------------------------------

    def txn_issue(self, node: int, line: int, is_write: bool, ts: float) -> None:
        self.txns_started += 1
        txn = _Txn(node, line, is_write, ts)
        txn.tail.append((ts, f"issue@node{node}"))
        self._active[(node, line)] = txn
        if self.node_filter is None or node in self.node_filter:
            name = "issue:GETX" if is_write else "issue:GET"
            spans = self.spans
            if spans.maxlen is not None and len(spans) == spans.maxlen:
                self.spans_dropped += 1
            spans.append((ts, 0.0, node, "cpu", name, (None, line, node)))

    def txn_retire(self, node: int, line: int, ts: float) -> None:
        txn = self._active.pop((node, line), None)
        if txn is None:
            return   # e.g. a replayed grant for an already-retired miss
        self.txns_retired += 1
        cls = txn.cls if txn.cls is not None else (
            WRITE_CLASS if txn.is_write else "read_unclassified")
        self.retired.setdefault(node, []).append(
            (ts, txn.start, line, cls, txn.is_write, txn.comp, txn.handlers))
        agg = self._classes.get(cls)
        if agg is None:
            agg = self._classes[cls] = _ClassAgg()
        latency = ts - txn.start
        agg.count += 1
        agg.latency += latency
        bucket = _hist_bucket(latency)
        agg.hist[bucket] = agg.hist.get(bucket, 0) + 1
        comp = agg.comp
        for key, value in txn.comp.items():
            comp[key] += value
        if self.loadlat is not None:
            self.loadlat.txn_components(node, txn.comp)
        if self.node_filter is None or node in self.node_filter:
            spans = self.spans
            if spans.maxlen is not None and len(spans) == spans.maxlen:
                self.spans_dropped += 1
            spans.append((txn.start, latency, node, "cpu",
                          f"miss:{cls}", (None, line, node)))

    def classify(self, requester: int, line: int, cls: str) -> None:
        """The home classified a read miss (Table 4.1 classes); writes keep
        their own row.  A NAK-replayed request may classify again — the
        latest classification wins, matching what actually served the miss."""
        txn = self._active.get((requester, line))
        if txn is not None and not txn.is_write:
            txn.cls = cls

    # -- CPU wait segments (critical-path raw data) -------------------------------

    def cpu_wait(self, node: int, kind: str, t0: float, t1: float,
                 arg=None) -> None:
        """One CPU wait interval: the node was not executing references in
        [t0, t1].  Recorded at the moment the wait *ends*, so per-node lists
        stay ordered by end time (the critical-path walk bisects on them)."""
        if t1 <= t0:
            return
        self.cpu_segments.setdefault(node, []).append((t0, t1, kind, arg))

    def barrier_arrive(self, node: int, bid, ts: float) -> None:
        """A node reached a barrier; the ``n_procs``-th arrival releases it
        at the same timestamp (sense-reversal — see processor/sync.py), so
        that arrival closes the episode."""
        arrivals = self._barrier_arrivals.setdefault(bid, [])
        arrivals.append((ts, node))
        if self.n_procs and len(arrivals) >= self.n_procs:
            self.barrier_episodes.append((ts, node, bid))
            del self._barrier_arrivals[bid]

    def lock_release(self, node: int, lock_id, ts: float) -> None:
        self.lock_releases.setdefault(lock_id, []).append((ts, node))

    # -- MAGIC / ideal controller -------------------------------------------------

    def inbox_span(self, node: int, msg, t0: float, t1: float) -> None:
        self._span(node, "inbox", msg.mtype, t0, t1, msg)

    def pp_enqueue(self, uid: int, ts: float) -> None:
        self._pp_enqueue[uid] = ts

    def pp_dequeue(self, node: int, msg, ts: float) -> None:
        t0 = self._pp_enqueue.pop(msg.uid, None)
        if t0 is not None and ts > t0:
            self._charge("queue", msg.requester, msg.line_addr, ts - t0)
            self._span(node, "pp", "queue_wait", t0, ts, msg)

    def pp_span(self, node: int, handler: str, msg, t0: float, t1: float) -> None:
        """Mirrors one ``stats.pp_busy +=`` site exactly."""
        cycles = t1 - t0
        self._charge("pp", msg.requester, msg.line_addr, cycles)
        if cycles > 0.0:
            self.pp_handler_totals[handler] = (
                self.pp_handler_totals.get(handler, 0.0) + cycles)
            txn = self._active.get((msg.requester, msg.line_addr))
            if txn is not None:
                txn.handlers[handler] = txn.handlers.get(handler, 0.0) + cycles
        self._span(node, "pp", handler, t0, t1, msg)

    def pi_out_span(self, node: int, msg, t0: float, t1: float) -> None:
        self._span(node, "pi", msg.mtype, t0, t1, msg)

    def deferred(self, node: int, msg) -> None:
        ts = self.env._now if self.env is not None else 0.0
        self._span(node, "pp", "deferred", ts, ts, msg)

    # -- memory ------------------------------------------------------------------

    def memory_span(self, node: int, request, t0: float, t1: float,
                    busy: float) -> None:
        """One served request: ``busy`` mirrors the controller's
        ``busy_cycles += busy_cycles_per_access``; time between submit and
        service start is queue wait."""
        ctx = request.trace_ctx
        requester, line = ctx if ctx is not None else (None, None)
        self._charge("memory", requester, line, busy)
        wait = t0 - request.trace_submit
        if wait > 0.0:
            self._charge("queue", requester, line, wait)
        if self.node_filter is None or node in self.node_filter:
            name = "read" if request.is_read else "write"
            spans = self.spans
            if spans.maxlen is not None and len(spans) == spans.maxlen:
                self.spans_dropped += 1
            spans.append((t0, t1 - t0, node, "memory", name,
                          (None, request.line_addr, requester)))

    # -- network -----------------------------------------------------------------

    def net_span(self, node: int, name: str, msg, t0: float, t1: float,
                 charge: bool = True) -> None:
        if charge:
            self._charge("network", msg.requester, msg.line_addr, t1 - t0)
        self._span(node, "net", name, t0, t1, msg)

    # -- time series ---------------------------------------------------------------

    def sample(self, ts: float, pp_occ: Sequence[float],
               mem_occ: Sequence[float], depths: Sequence[int]) -> None:
        self.timeseries.append((ts, list(pp_occ), list(mem_occ), list(depths)))

    # -- outputs -------------------------------------------------------------------

    def decomposition(self) -> Dict[str, Any]:
        """JSON-able latency decomposition: per-class counts, mean latency,
        component sums, log2 histograms, plus the untracked / in-flight
        remainders and machine-wide totals."""
        classes: Dict[str, Any] = {}
        for cls in sorted(self._classes):
            agg = self._classes[cls]
            classes[cls] = {
                "count": agg.count,
                "latency_total": agg.latency,
                "latency_mean": agg.latency / agg.count if agg.count else 0.0,
                "components": {c: agg.comp[c] for c in COMPONENTS},
                "latency_hist": {str(k): v
                                 for k, v in sorted(agg.hist.items())},
            }
        in_flight = {c: 0.0 for c in COMPONENTS}
        for txn in self._active.values():
            for key, value in txn.comp.items():
                in_flight[key] += value
        return {
            "classes": classes,
            "untracked": dict(self.untracked),
            "in_flight": in_flight,
            "totals": dict(self.totals),
            "txns": {"started": self.txns_started,
                     "retired": self.txns_retired,
                     "in_flight": len(self._active)},
            "spans": {"recorded": len(self.spans),
                      "dropped": self.spans_dropped},
        }

    def in_flight_tail(self, limit: int = 4) -> List[Dict[str, Any]]:
        """The oldest in-flight transactions with their recent span tails —
        attached to :class:`~repro.sim.watchdog.StallDiagnosis` when a traced
        run stalls."""
        now = self.env._now if self.env is not None else 0.0
        oldest = sorted(self._active.values(), key=lambda t: (t.start, t.node))
        return [
            {
                "node": txn.node,
                "line": f"{txn.line:#x}",
                "kind": "write" if txn.is_write else "read",
                "class": txn.cls,
                "age": now - txn.start,
                "tail": [f"t={ts:g} {label}" for ts, label in txn.tail],
            }
            for txn in oldest[:limit]
        ]

    def to_trace_events(self, categories: Optional[Iterable[str]] = None,
                        nodes: Optional[Iterable[int]] = None
                        ) -> Dict[str, Any]:
        """Chrome ``trace_event`` JSON (the ``{"traceEvents": [...]}`` dict
        form): one process per node, one thread per pipeline stage, counter
        tracks from the time series.  Deterministic for a given run — no
        wall-clock, no process-global ids."""
        cat_filter = frozenset(categories) if categories else None
        node_filter = frozenset(nodes) if nodes else None
        events: List[Dict[str, Any]] = []
        seen: set = set()
        for t0, dur, node, track, name, args in self.spans:
            if cat_filter is not None and track not in cat_filter:
                continue
            if node_filter is not None and node not in node_filter:
                continue
            seen.add((node, track))
            event = {
                "name": name, "cat": track, "ph": "X",
                "ts": t0, "dur": dur,
                "pid": node, "tid": _TRACK_IDS[track],
            }
            if args is not None:
                mtype, line, requester = args
                arg_map: Dict[str, Any] = {"line": f"{line:#x}"}
                if mtype is not None:
                    arg_map["type"] = mtype
                if requester is not None:
                    arg_map["requester"] = requester
                event["args"] = arg_map
            events.append(event)
        for ts, pp_occ, mem_occ, depths in self.timeseries:
            for node, value in enumerate(pp_occ):
                if node_filter is not None and node not in node_filter:
                    continue
                events.append({"name": "pp_occupancy", "ph": "C", "ts": ts,
                               "pid": node, "tid": 0,
                               "args": {"busy": value}})
                events.append({"name": "memory_occupancy", "ph": "C",
                               "ts": ts, "pid": node, "tid": 0,
                               "args": {"busy": mem_occ[node]}})
                events.append({"name": "queue_depth", "ph": "C", "ts": ts,
                               "pid": node, "tid": 0,
                               "args": {"depth": depths[node]}})
                seen.add((node, "cpu"))
        metadata: List[Dict[str, Any]] = []
        for node in sorted({node for node, _ in seen}):
            metadata.append({"name": "process_name", "ph": "M", "pid": node,
                             "tid": 0, "args": {"name": f"node {node}"}})
        for node, track in sorted(seen):
            metadata.append({"name": "thread_name", "ph": "M", "pid": node,
                             "tid": _TRACK_IDS[track],
                             "args": {"name": track}})
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ns",
            "otherData": {"generator": "repro.stats.trace",
                          "clock": "10ns system cycles"},
        }


# ---------------------------------------------------------------------------
# trace_event schema validation (CI smoke; keeps the export loadable)
# ---------------------------------------------------------------------------

_VALID_PHASES = frozenset("XBEiICM")


def validate_trace_events(payload: Any) -> int:
    """Validate the dict/JSON form against the Chrome ``trace_event``
    contract this module emits (the subset every viewer accepts).  Returns
    the event count; raises ``ValueError`` on the first violation."""
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("payload must be a dict with a 'traceEvents' list")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            raise ValueError(f"{where}: bad phase {phase!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{where}: missing/non-string name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where}: missing/non-integer {key}")
        if phase == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"{where}: missing/non-numeric ts")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                raise ValueError(f"{where}: X event needs dur >= 0")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args or not all(
                    isinstance(v, (int, float)) for v in args.values()):
                raise ValueError(f"{where}: C event needs numeric args")
    return len(events)


# ---------------------------------------------------------------------------
# Summary rendering (``python -m repro.harness trace --summary``)
# ---------------------------------------------------------------------------


def render_decomposition(decomposition: Dict[str, Any],
                         result=None, title: str = "latency decomposition"
                         ) -> str:
    """Per-class latency-decomposition table.  With ``result`` (a
    :class:`~repro.stats.report.RunResult`) appended reconciliation lines
    compare the traced component totals against the run's aggregate PP and
    memory occupancies — they match to float rounding by construction."""
    classes = decomposition["classes"]
    order = [cls for cls in MissClass.ALL if cls in classes]
    order += [cls for cls in sorted(classes) if cls not in order]
    lines = [title, "=" * len(title)]
    header = (f"{'class':<14} {'count':>7} {'avg lat':>9} "
              + " ".join(f"{c:>9}" for c in COMPONENTS))
    lines.append(header)
    lines.append("-" * len(header))
    totals_row = {c: 0.0 for c in COMPONENTS}
    for cls in order:
        entry = classes[cls]
        comp = entry["components"]
        for key in COMPONENTS:
            totals_row[key] += comp[key]
        count = entry["count"] or 1
        lines.append(
            f"{cls:<14} {entry['count']:>7} {entry['latency_mean']:>9.1f} "
            + " ".join(f"{comp[c] / count:>9.1f}" for c in COMPONENTS))
    untracked = decomposition["untracked"]
    in_flight = decomposition["in_flight"]
    lines.append("-" * len(header))
    lines.append(f"{'tracked sum':<14} {'':>7} {'':>9} "
                 + " ".join(f"{totals_row[c]:>9.0f}" for c in COMPONENTS))
    lines.append(f"{'untracked':<14} {'':>7} {'':>9} "
                 + " ".join(f"{untracked[c]:>9.0f}" for c in COMPONENTS))
    if any(in_flight[c] for c in COMPONENTS):
        lines.append(f"{'in flight':<14} {'':>7} {'':>9} "
                     + " ".join(f"{in_flight[c]:>9.0f}" for c in COMPONENTS))
    totals = decomposition["totals"]
    lines.append(f"{'total':<14} {'':>7} {'':>9} "
                 + " ".join(f"{totals[c]:>9.0f}" for c in COMPONENTS))
    txns = decomposition["txns"]
    spans = decomposition["spans"]
    lines.append("")
    lines.append(
        f"transactions: {txns['started']} issued, {txns['retired']} retired, "
        f"{txns['in_flight']} in flight; spans: {spans['recorded']} kept, "
        f"{spans['dropped']} dropped (ring buffer)")
    if result is not None:
        elapsed = result.execution_time
        agg_pp = sum(result.pp_occupancy) * elapsed
        agg_mem = sum(result.memory_occupancy) * elapsed
        lines.append(
            f"reconciliation: PP {totals['pp']:.0f} traced vs "
            f"{agg_pp:.0f} aggregate; memory {totals['memory']:.0f} traced "
            f"vs {agg_mem:.0f} aggregate")
    return "\n".join(lines)
