"""Machine-wide metrics registry: the paper's counters as data.

The paper's central evidence is counter-level — per-handler invocation
counts and occupancies (Tables 4.2, 5.1-5.3), per-message-class traffic,
directory state transitions, queue/MSHR stalls.  PR 4's tracer answers
"where inside one miss did the cycles go"; this module answers "how many of
each thing happened, machine-wide", uniformly enough that two runs can be
diffed metric-by-metric (``python -m repro.harness diff``).

Discipline (same as faults/watchdog/trace): the registry is attached as a
``metrics`` attribute defaulting to None, every live hook is gated on
``metrics is not None``, and a metrics-off run is byte-identical to the
seed (the golden SHA-256 matrix enforces it).  Hooks only increment plain
Python numbers — no events, no simulated time — so a metrics-ON run's core
result is *also* byte-identical to a metrics-off run; only the serialized
``RunResult.metrics`` block differs, which is why metrics-on specs cache
under a distinct key.

Collection is hybrid:

* **live hooks** where no aggregate exists today: per-(node, handler)
  invocation/cost/busy cycles in the MAGIC chip and the ideal controller
  (the ``pp.handler_busy_cycles`` family mirrors every ``pp_busy +=`` site,
  so its total reconciles exactly with ``RunResult.avg_pp_occupancy()``),
  and per-(node, message-class) send/receive matrices in the network ports;
* **end-of-run harvest** (:func:`harvest_machine`) of the unconditional
  lightweight counters subsystems already keep: directory transitions and
  link-store pointer allocation, MSHR/queue full-stalls, memory controller,
  MDC, transfer domain, protocol engine and migratory-variant totals.
"""

from __future__ import annotations

from math import ceil, inf
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Counter", "Cycles", "Log2Histogram", "Family", "MetricsRegistry",
    "harvest_machine", "flatten_result", "diff_rows", "breaches",
    "render_diff", "pp_reconciliation",
]


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_value(self):
        return self.value


class Cycles:
    """An accumulator of simulated cycles (float)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def add(self, cycles: float) -> None:
        self.value += cycles

    def to_value(self):
        return self.value


def _log2_bucket(value: float) -> int:
    """Power-of-two bucket upper bound for ``value`` (0 for non-positive)."""
    if value <= 0:
        return 0
    n = int(ceil(value))
    return 1 << (n - 1).bit_length() if n > 1 else 1


class Log2Histogram:
    """Counts of observations in power-of-two buckets, plus count/total."""

    __slots__ = ("buckets", "count", "total")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        bucket = _log2_bucket(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def to_value(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "buckets": {str(b): n for b, n in self.buckets.items()},
        }


_KINDS = {"counter": Counter, "cycles": Cycles, "histogram": Log2Histogram}


class Family:
    """A labeled set of metric children, e.g. one counter per
    (node, handler).  ``labels(...)`` is the hot-path entry: one dict lookup
    on the label tuple, creating the child on first use."""

    __slots__ = ("name", "kind", "_factory", "children")

    def __init__(self, name: str, kind: str):
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self._factory = _KINDS[kind]
        self.children: Dict[Tuple, Any] = {}

    def labels(self, *key):
        child = self.children.get(key)
        if child is None:
            child = self._factory()
            self.children[key] = child
        return child

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "values": {
                "/".join(str(part) for part in key): child.to_value()
                for key, child in self.children.items()
            },
        }


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class MetricsRegistry:
    """All metrics of one run.  Construction declares the hot-path families
    as attributes so publisher call sites skip the by-name lookup."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._cycles: Dict[str, Cycles] = {}
        self._histograms: Dict[str, Log2Histogram] = {}
        self._families: Dict[str, Family] = {}
        # Hot-path families (live hooks in chip/ideal/network).  Label
        # convention: the first label component is the node id, so the diff
        # tool can aggregate machine-wide by dropping it.
        self.handler_invocations = self.family("pp.handler_invocations",
                                               "counter")
        self.handler_busy = self.family("pp.handler_busy_cycles", "cycles")
        self.handler_cost = self.family("pp.handler_cost_cycles", "cycles")
        self.busy_per_invocation = self.histogram("pp.busy_per_invocation")
        self.msgs_sent = self.family("net.sent", "counter")
        self.msgs_received = self.family("net.received", "counter")

    # -- constructors (get-or-create, so harvest can re-run idempotently
    # only via fresh registries; names are unique per kind) ------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def cycles(self, name: str) -> Cycles:
        metric = self._cycles.get(name)
        if metric is None:
            metric = self._cycles[name] = Cycles()
        return metric

    def histogram(self, name: str) -> Log2Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Log2Histogram()
        return metric

    def family(self, name: str, kind: str) -> Family:
        metric = self._families.get(name)
        if metric is None:
            metric = self._families[name] = Family(name, kind)
        elif metric.kind != kind:
            raise ValueError(
                f"family {name!r} already registered with kind {metric.kind!r}")
        return metric

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-able snapshot.  Key order is irrelevant — the result
        travels inside ``RunResult.to_json``, which sorts keys — so two
        identical runs serialize byte-identically."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "cycles": {k: c.value for k, c in self._cycles.items()},
            "histograms": {k: h.to_value()
                           for k, h in self._histograms.items()},
            "families": {k: f.to_dict() for k, f in self._families.items()},
        }


# ---------------------------------------------------------------------------
# End-of-run harvest of unconditional subsystem counters
# ---------------------------------------------------------------------------

_DIR_OPS = ("add_sharer", "remove_sharer", "clear_sharers", "set_dirty",
            "clear_dirty")
_NODE_SUFFIX_OPEN = "["


def _queue_base(name: str) -> str:
    """Strip the ``[N]`` node suffix so per-queue metrics aggregate by role
    (``pi.in[3]`` -> ``pi.in``)."""
    cut = name.find(_NODE_SUFFIX_OPEN)
    return name[:cut] if cut > 0 else (name or "anonymous")


def harvest_machine(registry: MetricsRegistry, machine) -> None:
    """Fold a finished machine's unconditional counters into ``registry``.

    Everything read here is an ordinary int/float the subsystems maintain
    whether or not metrics are on; harvesting is a pure read, so it can
    never perturb the simulation (it runs after the event loop drained).
    """
    dir_transitions = registry.family("dir.transitions", "counter")
    dir_links = registry.family("dir.links", "counter")
    mshr = registry.family("mshr", "counter")
    queue_puts = registry.family("queue.total_puts", "counter")
    queue_stalls = registry.family("queue.full_stalls", "counter")
    queue_peaks = registry.family("queue.peak_depth", "counter")

    for node in machine.nodes:
        nid = node.node_id
        stats = node.stats
        registry.cycles("pp.busy_cycles").add(stats.pp_busy)
        registry.cycles("pp.handler_cycles").add(stats.pp_handler_cycles)
        registry.cycles("pp.mdc_stall_cycles").add(stats.pp_mdc_stall)
        registry.counter("pp.invocations").inc(stats.handler_invocations)
        registry.counter("pp.messages_in").inc(stats.messages_in)
        registry.counter("spec.issued").inc(stats.spec_issued)
        registry.counter("spec.useless").inc(stats.spec_useless)

        directory = node.directory
        for op in _DIR_OPS:
            count = getattr(directory, f"n_{op}")
            if count:
                dir_transitions.labels(nid, op).inc(count)
        links = directory.links
        dir_links.labels(nid, "allocated").inc(links.total_allocated)
        dir_links.labels(nid, "freed").inc(links.total_freed)
        dir_links.labels(nid, "peak_used").inc(links.peak_used)

        mshrs = node.cpu.mshrs
        mshr.labels(nid, "allocations").inc(mshrs.total_allocations)
        mshr.labels(nid, "merges").inc(mshrs.total_merges)
        mshr.labels(nid, "full_stalls").inc(mshrs.full_stalls)
        mshr.labels(nid, "conflict_stalls").inc(mshrs.conflict_stalls)
        mshr.labels(nid, "peak_outstanding").inc(mshrs.peak_outstanding)

        memory = node.memory
        registry.counter("mem.reads").inc(memory.reads)
        registry.counter("mem.writes").inc(memory.writes)
        registry.counter("mem.useless_reads").inc(memory.useless_reads)
        registry.cycles("mem.busy_cycles").add(memory.busy_cycles)

        engine = node.engine
        registry.counter("protocol.messages_processed").inc(
            engine.messages_processed)
        registry.counter("protocol.deferred").inc(engine.deferred_count)
        if getattr(engine, "migratory_grants", None) is not None:
            registry.counter("migratory.grants").inc(engine.migratory_grants)
            registry.counter("migratory.upgrades_saved").inc(
                engine.upgrades_saved)
            registry.counter("migratory.declassified").inc(engine.declassified)
            registry.counter("migratory.probes").inc(engine.probes)

        if node.mdc is not None:
            registry.counter("mdc.accesses").inc(node.mdc.accesses)
            registry.counter("mdc.read_misses").inc(node.mdc.read_misses)
            registry.counter("mdc.writebacks").inc(node.mdc.writeback_victims)
        icache = getattr(node.controller, "icache", None)
        if icache is not None:
            registry.counter("icache.fetches").inc(icache.fetches)
            registry.counter("icache.cold_misses").inc(icache.cold_misses)

    # Bounded queues and counting resources, aggregated by role.  Peaks use
    # a machine-wide max, not a sum (a peak sum would not be a peak).
    for queue in machine.env._queues:
        base = _queue_base(queue.name)
        if hasattr(queue, "total_puts"):
            queue_puts.labels(base).inc(queue.total_puts)
            queue_stalls.labels(base).inc(queue.full_stalls)
            peak = queue_peaks.labels(base)
            if queue.peak_depth > peak.value:
                peak.value = queue.peak_depth
        else:  # CountingResource
            queue_puts.labels(base).inc(queue.total_acquires)
            queue_stalls.labels(base).inc(queue.acquire_stalls)
            peak = queue_peaks.labels(base)
            if queue.peak_in_use > peak.value:
                peak.value = queue.peak_in_use

    network = machine.network
    registry.counter("net.messages").inc(network.messages_sent)
    registry.counter("net.peak_in_flight").inc(network.peak_in_flight)
    transfers = machine.transfers
    registry.counter("xfer.started").inc(transfers.transfers_started)
    registry.counter("xfer.completed").inc(transfers.transfers_completed)
    registry.counter("xfer.lines_moved").inc(transfers.lines_moved)


# ---------------------------------------------------------------------------
# Run diffing (``python -m repro.harness diff`` / ``compare``)
# ---------------------------------------------------------------------------


def _family_rows(name: str, family: Dict[str, Any], per_node: bool):
    for label, value in family.get("values", {}).items():
        if isinstance(value, dict):       # histogram family child
            value = value.get("total", 0.0)
        if not per_node:
            head, _, rest = label.partition("/")
            if rest and head.lstrip("-").isdigit():
                label = rest
        yield f"family/{name}/{label}", value


def flatten_result(result, per_node: bool = False) -> Dict[str, float]:
    """One flat ``metric name -> number`` view of a RunResult: the summary
    scalars, the miss-class counts, and (when present) every registry
    metric.  Node-labeled family children are summed machine-wide unless
    ``per_node`` — Table 4.2 rows are per-handler, not per-(node, handler).
    """
    flat: Dict[str, float] = {
        "summary/execution_time": result.execution_time,
        "summary/miss_rate": result.miss_rate,
        "summary/avg_pp_occupancy": result.avg_pp_occupancy,
        "summary/avg_memory_occupancy": result.avg_memory_occupancy,
        "summary/read_misses": result.read_misses,
        "summary/write_misses": result.write_misses,
        "summary/handler_invocations": result.handler_invocations,
        "summary/network_messages": result.network_messages,
    }
    for cls, count in result.miss_classes.items():
        flat[f"miss_class/{cls}"] = count
    metrics = getattr(result, "metrics", None)
    if metrics:
        for name, value in metrics.get("counters", {}).items():
            flat[f"counter/{name}"] = value
        for name, value in metrics.get("cycles", {}).items():
            flat[f"cycles/{name}"] = value
        for name, hist in metrics.get("histograms", {}).items():
            flat[f"hist/{name}/count"] = hist.get("count", 0)
            flat[f"hist/{name}/total"] = hist.get("total", 0.0)
        for name, family in metrics.get("families", {}).items():
            for key, value in _family_rows(name, family, per_node):
                flat[key] = flat.get(key, 0) + value
    # Open-loop latency percentiles (monitor-on runs; repro.stats.latency),
    # so ``compare openloop --vs ideal`` shows the tail delta directly.
    load_latency = getattr(result, "load_latency", None)
    if load_latency:
        overall = load_latency.get("overall", {})
        for stat in ("mean", "p50", "p90", "p99", "p999"):
            flat[f"latency/overall/{stat}"] = overall.get(stat, 0.0)
        flat["latency/throughput"] = load_latency.get("throughput", 0.0)
        flat["latency/completed"] = (
            load_latency.get("requests", {}).get("completed", 0))
        for cls, entry in load_latency.get("classes", {}).items():
            for stat in ("p50", "p99", "p999"):
                flat[f"latency/{cls}/{stat}"] = entry.get(stat, 0.0)
    # Critical-path attribution (traced runs; repro.stats.critpath), so
    # ``compare <app> --vs ideal`` shows the criticality delta directly.
    critpath = getattr(result, "critpath", None)
    if critpath:
        flat["critpath/length"] = critpath.get("length", 0.0)
        for bucket, cycles in critpath.get("buckets", {}).items():
            flat[f"critpath/bucket/{bucket}"] = cycles
        for cls, cycles in critpath.get("classes", {}).items():
            flat[f"critpath/class/{cls}"] = cycles
        for comp, cycles in critpath.get("components", {}).items():
            flat[f"critpath/component/{comp}"] = cycles
        for handler, entry in critpath.get("handlers", {}).items():
            flat[f"critpath/handler/{handler}/critical_cycles"] = (
                entry.get("critical_cycles", 0.0))
            flat[f"critpath/handler/{handler}/share"] = (
                entry.get("share", 0.0))
    return flat


def diff_rows(a_flat: Dict[str, float], b_flat: Dict[str, float]
              ) -> List[Tuple[str, float, float, float, float]]:
    """``(name, a, b, delta, relative)`` per metric present in either run;
    rows where both sides are zero are dropped.  ``relative`` is the change
    from A (``inf`` for metrics that appear only in B)."""
    rows = []
    for name in sorted(set(a_flat) | set(b_flat)):
        a = float(a_flat.get(name, 0) or 0)
        b = float(b_flat.get(name, 0) or 0)
        if a == 0 and b == 0:
            continue
        delta = b - a
        rel = delta / a if a else (inf if delta else 0.0)
        rows.append((name, a, b, delta, rel))
    return rows


def breaches(rows, threshold: Optional[float]):
    """Rows whose relative change exceeds ``threshold`` (None: no gate)."""
    if threshold is None:
        return []
    return [row for row in rows if abs(row[4]) > threshold]


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:,.4g}"


def _fmt_rel(rel: float) -> str:
    if rel == inf:
        return "new"
    return f"{rel:+.1%}"


def render_diff(rows, title: str, a_name: str = "A", b_name: str = "B",
                changed_only: bool = False) -> str:
    """Fixed-width per-metric delta table."""
    shown = [r for r in rows if not changed_only or r[3] != 0]
    width = max([len(r[0]) for r in shown] + [len("metric")])
    lines = [title, "=" * len(title),
             f"{'metric':<{width}} {a_name:>14} {b_name:>14}"
             f" {'delta':>14} {'rel':>8}"]
    group = None
    for name, a, b, delta, rel in shown:
        head = name.split("/", 1)[0]
        if group is not None and head != group:
            lines.append("-" * (width + 54))
        group = head
        lines.append(f"{name:<{width}} {_fmt(a):>14} {_fmt(b):>14}"
                     f" {_fmt(delta):>14} {_fmt_rel(rel):>8}")
    lines.append(f"({len(shown)} metric(s) shown)")
    return "\n".join(lines)


def pp_reconciliation(result) -> Optional[Dict[str, float]]:
    """Check the live per-handler busy-cycle family against the aggregate
    PP occupancy.  The family mirrors every ``pp_busy +=`` site, so
    ``sum(busy) / (n_procs * T)`` must equal ``avg_pp_occupancy`` to float
    rounding.  Returns the two occupancies (None when the run carries no
    metrics)."""
    metrics = getattr(result, "metrics", None)
    if not metrics:
        return None
    family = metrics.get("families", {}).get("pp.handler_busy_cycles")
    if family is None:
        return None
    total_busy = 0.0
    for value in family.get("values", {}).values():
        total_busy += value
    elapsed = result.execution_time
    derived = (total_busy / (result.n_procs * elapsed)) if elapsed else 0.0
    return {
        "handler_busy_cycles": total_busy,
        "pp_occupancy_from_metrics": derived,
        "avg_pp_occupancy": result.avg_pp_occupancy,
    }
