"""Assembly of one FLASH (or ideal) node.

A node contains a compute processor with its secondary cache, a slice of the
distributed main memory with its directory, and a node controller — MAGIC on
the FLASH machine, the zero-occupancy oracle on the ideal machine (Figure
2.1).
"""

from __future__ import annotations

from .common.params import MachineConfig
from .ideal.controller import IdealController
from .magic.chip import MagicChip
from .magic.costmodel import TableCostModel
from .memory.controller import MemoryController
from .network.mesh import Network
from .processor.cpu import CPU
from .processor.sync import SyncDomain
from .protocol.coherence import NodeProtocolEngine
from .protocol.directory import Directory
from .protocol.migratory import MigratoryProtocolEngine
from .sim.engine import Environment
from .stats.breakdown import NodeStats

__all__ = ["Node"]


class Node:
    """One node: CPU + cache, memory + directory, node controller."""

    def __init__(
        self,
        env: Environment,
        node_id: int,
        config: MachineConfig,
        network: Network,
        sync: SyncDomain,
        cost_model=None,
        transfers=None,
    ):
        self.env = env
        self.node_id = node_id
        self.config = config
        self.stats = NodeStats()
        self.memory = MemoryController(env, config, name=f"mem[{node_id}]",
                                       node_id=node_id)
        self.directory = Directory(
            node_id, config.memory_bytes_per_node, config.directory_links_per_node
        )
        engine_class = (
            MigratoryProtocolEngine if config.protocol == "migratory"
            else NodeProtocolEngine
        )
        # The engine probes and mutates the processor cache through these
        # callbacks; self.cpu is attached just below.
        self.engine = engine_class(
            node_id=node_id,
            n_nodes=config.n_procs,
            directory=self.directory,
            memory_bytes_per_node=config.memory_bytes_per_node,
            cache_state_of=lambda line: self.cpu.cache_state_of(line),
            cache_invalidate=lambda line: self.cpu.external_invalidate(line),
            cache_downgrade=lambda line: self.cpu.external_downgrade(line),
        )
        port = network.port(node_id)
        if config.is_ideal:
            self.controller = IdealController(
                env, node_id, config, self.engine, self.memory, port, self.stats
            )
        else:
            self.controller = MagicChip(
                env, node_id, config, self.engine, self.memory, port,
                cost_model if cost_model is not None else TableCostModel(config),
                self.stats,
            )
        self.controller.transfers = transfers
        self.cpu = CPU(env, node_id, config, self.controller, sync)

    @property
    def mdc(self):
        """The MAGIC data cache (None on the ideal machine)."""
        return getattr(self.controller, "mdc", None)
