"""The compute processor model and synchronization primitives."""

from .cpu import CPU, CYCLES_PER_REFERENCE
from .sync import SyncDomain

__all__ = ["CPU", "CYCLES_PER_REFERENCE", "SyncDomain"]
