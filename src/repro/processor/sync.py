"""Synchronization primitives for the workload runtime.

Barriers and locks are modeled as idealized primitives: they cost no memory
traffic, but waiting time is fully simulated and accounted to the Sync
category of the execution-time breakdown (Figure 4.1).  This matches the
paper's accounting, where Sync captures load imbalance and serialization
rather than the traffic of the synchronization algorithm itself.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from ..sim.engine import Environment, Event

__all__ = ["SyncDomain"]


class _Barrier:
    __slots__ = ("arrived", "event")

    def __init__(self, env: Environment):
        self.arrived = 0
        self.event = Event(env)


class _Lock:
    __slots__ = ("held", "waiters")

    def __init__(self) -> None:
        self.held = False
        self.waiters: Deque[Event] = deque()


class SyncDomain:
    """Barriers and locks shared by all processors of one machine."""

    def __init__(self, env: Environment, n_procs: int):
        self.env = env
        self.n_procs = n_procs
        self._barriers: Dict[object, _Barrier] = {}
        self._locks: Dict[object, _Lock] = {}
        self.barrier_episodes = 0
        self.lock_acquisitions = 0

    def barrier(self, barrier_id: object, participants: int = 0) -> Event:
        """Arrive at a barrier; the returned event fires when the last of
        ``participants`` (default: all processors) has arrived."""
        needed = participants or self.n_procs
        barrier = self._barriers.get(barrier_id)
        if barrier is None:
            barrier = _Barrier(self.env)
            self._barriers[barrier_id] = barrier
        barrier.arrived += 1
        event = Event(self.env)
        barrier.event.add_callback(lambda _ev, out=event: out.succeed())
        if barrier.arrived >= needed:
            del self._barriers[barrier_id]  # sense reversal: next use is fresh
            self.barrier_episodes += 1
            barrier.event.succeed()
        return event

    def acquire(self, lock_id: object) -> Event:
        """FIFO mutex acquire."""
        lock = self._locks.setdefault(lock_id, _Lock())
        event = Event(self.env)
        if not lock.held:
            lock.held = True
            self.lock_acquisitions += 1
            event.succeed()
        else:
            lock.waiters.append(event)
        return event

    def release(self, lock_id: object) -> None:
        lock = self._locks[lock_id]
        if lock.waiters:
            self.lock_acquisitions += 1
            lock.waiters.popleft().succeed()
        else:
            lock.held = False
