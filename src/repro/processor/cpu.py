"""The compute processor model.

Section 3.2: an aggressive 400-MIPS processor (up to 4 instructions, hence up
to 4 memory references, per 10 ns system cycle) with blocking reads and
non-blocking writes, up to 4 outstanding misses, write-merging into an
outstanding miss to the same line, and a stall when a write maps to the same
cache index as — but a different tag than — an outstanding miss.

The processor consumes an *operation stream* from a workload generator:

    ('r', addr)        read one word
    ('r', addr, k)     k spatially-local reads within the word's line
    ('w', addr)        write one word
    ('w', addr, k)     k spatially-local writes within the word's line
    ('c', cycles)      compute for N cycles without touching memory
    ('b', barrier_id)  global barrier
    ('l', lock_id)     acquire lock
    ('u', lock_id)     release lock
    ('s', dst, addr, nbytes)  post a block-transfer send (non-blocking)
    ('v', src)         wait for a block transfer from node src to arrive
    ('q', cls, t)      open-loop request begin: wait until intended arrival
                       time t (no-op if already past), then mark a request
                       of class cls open on this node
    ('e',)             open-loop request end: drain outstanding misses
                       (release fence), then mark the open request complete

The k-reference forms model code that walks every word of a line (16 8-byte
words per 128-byte line): one cache access decides hit/miss, the remaining
k-1 references are same-line hits charged only issue time.

Cache hits and compute are batched locally and charged to the simulator in
bounded quanta; misses, interventions and synchronization are fully
event-accurate.  Time is charged to the Figure 4.1 categories (Busy, Cont,
Read, Write, Sync).

The execution loop runs in callback/state-machine form on the event kernel:
:meth:`CPU._loop` consumes consecutive hitting references and compute ops in
plain Python and only materializes a continuation — a bound method scheduled
as a bare callback — on a miss, an MSHR hit, a sync op, a block transfer, or
quantum expiry.  The kernel sees misses, not references, and no generator
frame exists at all between them.  Dispatch order (and therefore every
simulated result) is identical to the original coroutine form; see DESIGN.md
"Performance engineering".
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..caches.mshr import MSHRFile
from ..caches.setassoc import CacheState, SetAssocCache
from ..common.errors import WorkloadError
from ..common.params import MachineConfig
from ..common.units import CACHE_LINE_BYTES, line_address
from ..protocol.messages import Message, MessageType as MT, acquire as _acquire
from ..sim.engine import Environment, Event
from ..stats.breakdown import CpuTimes
from .sync import SyncDomain

__all__ = ["CPU", "CYCLES_PER_REFERENCE"]

#: Each reference is one instruction slot of the 4-issue 400-MIPS processor.
CYCLES_PER_REFERENCE = 0.25

#: ``addr & _LINE_MASK == line_address(addr)`` for non-negative addresses
#: (CACHE_LINE_BYTES is a power of two) — the branch-free form the hit-run
#: inner loop uses.
_LINE_MASK = -CACHE_LINE_BYTES


class CPU:
    """One compute processor plus its secondary cache and MSHRs."""

    def __init__(
        self,
        env: Environment,
        node_id: int,
        config: MachineConfig,
        controller,  # MagicChip or IdealController
        sync: SyncDomain,
        times: Optional[CpuTimes] = None,
    ):
        self.env = env
        self.node_id = node_id
        self.config = config
        self.controller = controller
        self.sync = sync
        self.times = times if times is not None else CpuTimes()
        self.name = f"cpu[{node_id}]"
        self.cache = SetAssocCache(config.proc_cache, name=f"L2[{node_id}]")
        self.mshrs = MSHRFile(config.proc_cache.mshrs, self.cache)
        self.cache_busy_until = 0.0
        self.quantum = config.cpu_hit_quantum
        self.lat = config.latencies
        # Reference counters (cache.stats counts only primary misses).
        self.total_reads = 0
        self.total_writes = 0
        self.read_merges = 0
        controller.set_cpu_deliver(self.deliver)
        controller.set_cache_busy(self.note_cache_busy)
        self.transfers = getattr(controller, "transfers", None)
        self.tracer = None  # Tracer (repro.stats.trace), attached by the Machine
        # LatencyMonitor (repro.stats.latency), attached by the Machine for
        # open-loop runs; every hook below is gated on ``is not None``.
        self.loadlat = None
        # CoherenceOracle (repro.check), attached by the model checker; when
        # set, ``_loop_cb`` is rebound to the instrumented loop twin and the
        # deliver/invalidate/evict hooks below feed the shadow value model.
        self.oracle = None
        self._done = Event(env)
        # Execution state machine: one logical thread, so everything the old
        # generator kept in frame locals lives in instance fields between
        # continuations.
        self._ops = None
        self._batched = 0.0
        self._after_flush = None       # continuation parked across a flush
        self._fence_cont = None        # continuation parked across a fence
        self._pending_entry = None     # MSHR entry a merged read waits on
        self._miss_line = 0
        self._miss_state = CacheState.INVALID
        self._miss_waiter: Optional[Event] = None
        self._stall_start = 0.0
        self._sync_info: Optional[Tuple] = None   # (kind, arg) for the tracer
        self._op: Optional[Tuple] = None
        self._op_arg = 0
        # Bound once; scheduled thousands of times.
        self._loop_cb = self._loop
        self._flush_tail_cb = self._flush_tail
        self._fence_recheck_cb = self._fence_recheck
        self._rmerge_after_flush_cb = self._rmerge_after_flush
        self._rmerge_done_cb = self._rmerge_done
        self._read_miss_begin_cb = self._read_miss_begin
        self._rm_space_cb = self._rm_space
        self._rm_submit_cb = self._rm_submit
        self._rm_wait_cb = self._rm_wait
        self._rm_done_cb = self._rm_done
        self._write_miss_begin_cb = self._write_miss_begin
        self._wm_conflict_cb = self._wm_conflict
        self._wm_space_cb = self._wm_space
        self._wm_submit_cb = self._wm_submit
        self._wm_done_cb = self._wm_done
        self._barrier_fence_cb = self._barrier_fence
        self._barrier_enter_cb = self._barrier_enter
        self._sync_done_cb = self._sync_done
        self._lock_begin_cb = self._lock_begin
        self._unlock_fence_cb = self._unlock_fence
        self._unlock_release_cb = self._unlock_release
        self._send_begin_cb = self._send_begin
        self._send_done_cb = self._send_done
        self._recv_begin_cb = self._recv_begin
        self._req_begin_cb = self._req_begin
        self._req_start_cb = self._req_start
        self._req_end_fence_cb = self._req_end_fence
        self._req_end_cb = self._req_end
        self._finish_cb = self._finish
        self._evict_post_cb = self._evict_post

    # -- controller-facing callbacks --------------------------------------------

    def note_cache_busy(self, cycles: float) -> None:
        """MAGIC (or the ideal controller) is using the processor cache."""
        self.cache_busy_until = max(self.cache_busy_until, self.env.now + cycles)

    def external_invalidate(self, line_addr: int) -> str:
        """Protocol invalidation of a line in this processor's cache."""
        prior = self.cache.invalidate(line_addr)
        if self.oracle is not None:
            self.oracle.on_invalidate(self.node_id, line_addr, prior)
        if prior == CacheState.INVALID:
            entry = self.mshrs.lookup(line_addr)
            if entry is not None and not entry.is_write:
                entry.invalidate_on_fill = True
        return prior

    def external_downgrade(self, line_addr: int) -> None:
        """Protocol intervention: DIRTY -> SHARED."""
        if self.cache.state_of(line_addr) == CacheState.DIRTY:
            self.cache.set_state(line_addr, CacheState.SHARED)

    def cache_state_of(self, line_addr: int) -> str:
        return self.cache.state_of(line_addr)

    def deliver(self, message: Message) -> None:
        """A reply crossed the processor bus: fill the cache, retire the
        MSHR, and wake any stalled references."""
        line = message.line_addr
        if self.tracer is not None:
            self.tracer.txn_retire(self.node_id, line, self.env.now)
        entry = self.mshrs.complete(line)
        state = CacheState.SHARED if message.mtype == MT.PUT else CacheState.DIRTY
        victim = self.cache.fill(line, state)
        if entry.invalidate_on_fill:
            # The data is still consumed by the waiting reference(s); the
            # line just does not stay resident.
            self.cache.invalidate(line)
        if self.oracle is not None:
            self.oracle.on_fill(self.node_id, message, entry,
                                state == CacheState.SHARED)
        if victim is not None:
            self._post_eviction(victim)
        for waiter in entry.waiters:
            waiter.succeed()
        if (
            entry.needs_upgrade
            and state == CacheState.SHARED
        ):
            # A write merged into this read miss: it still needs ownership.
            self.env.process(self._issue_write_async(line),
                             name=f"cpu.upg[{self.node_id}]")

    # -- the execution loop ---------------------------------------------------------

    def run(self, ops: Iterable[Tuple]) -> Event:
        """Start the processor executing ``ops``; returns its completion
        event (fires when the stream is exhausted)."""
        self._ops = iter(ops)
        # The current-time hop mirrors the old process-start resume.
        self.env.call_soon(self._loop_cb)
        return self._done

    def _loop(self) -> None:
        # Hit-run inner loop: consecutive hitting references and compute ops
        # are consumed in plain Python — cache geometry as local shift/mask
        # bindings, hit/miss decision as one dict pop/insert, time charged in
        # bulk through ``batched`` — and control only returns to the event
        # kernel on a miss, an MSHR hit, a sync op, a block transfer, or
        # quantum expiry.  The kernel sees misses, not references.
        cache = self.cache
        sets = cache._sets
        line_shift = cache.line_shift
        tag_shift = cache.tag_shift
        set_mask = cache.set_mask
        stats = cache.stats
        mshr_get = self.mshrs.entries.get
        quantum = self.quantum
        cpr = CYCLES_PER_REFERENCE
        SHARED = CacheState.SHARED
        flush_then = self._flush_then
        batched = self._batched
        for op in self._ops:
            kind = op[0]
            if kind == "r":
                k = op[2] if len(op) > 2 else 1
                self.total_reads += k
                batched += cpr * k
                line = op[1] & _LINE_MASK
                entry = mshr_get(line)
                if entry is not None:
                    # Secondary reference to an in-flight line.
                    self.read_merges += 1
                    if k > 1:
                        stats.read_hits += k - 1
                    self._batched = batched
                    self._pending_entry = entry
                    self._miss_line = line
                    flush_then(self._rmerge_after_flush_cb)
                    return
                cache_set = sets[(line >> line_shift) & set_mask]
                tag = line >> tag_shift
                state = cache_set.pop(tag, None)
                if state is None:
                    stats.read_misses += 1
                    if k > 1:
                        stats.read_hits += k - 1
                    self._batched = batched
                    self._miss_line = line
                    flush_then(self._read_miss_begin_cb)
                    return
                cache_set[tag] = state  # MRU
                stats.read_hits += k
                if batched >= quantum:
                    self._batched = batched
                    flush_then(self._loop_cb)
                    return
            elif kind == "w":
                k = op[2] if len(op) > 2 else 1
                self.total_writes += k
                batched += cpr * k
                line = op[1] & _LINE_MASK
                entry = mshr_get(line)
                if entry is not None:
                    # Write-merge into the outstanding miss: no stall.
                    self.mshrs.merge_write(line)
                    if k > 1:
                        stats.write_hits += k - 1
                    if not entry.is_write:
                        entry.needs_upgrade = True
                    continue
                cache_set = sets[(line >> line_shift) & set_mask]
                tag = line >> tag_shift
                state = cache_set.pop(tag, None)
                if state is None:
                    stats.write_misses += 1
                    if k > 1:
                        stats.write_hits += k - 1
                    self._batched = batched
                    self._miss_line = line
                    self._miss_state = CacheState.INVALID
                    flush_then(self._write_miss_begin_cb)
                    return
                elif state == SHARED:
                    cache_set[tag] = state  # MRU; upgrade required
                    stats.write_misses += 1
                    if k > 1:
                        stats.write_hits += k - 1
                    self._batched = batched
                    self._miss_line = line
                    self._miss_state = SHARED
                    flush_then(self._write_miss_begin_cb)
                    return
                else:
                    cache_set[tag] = state  # MRU
                    stats.write_hits += k
                    if batched >= quantum:
                        self._batched = batched
                        flush_then(self._loop_cb)
                        return
            elif kind == "c":
                batched += op[1]
                if batched >= quantum:
                    self._batched = batched
                    flush_then(self._loop_cb)
                    return
            elif kind == "b":
                self._batched = batched
                self._op_arg = op[1]
                flush_then(self._barrier_fence_cb)
                return
            elif kind == "l":
                self._batched = batched
                self._op_arg = op[1]
                flush_then(self._lock_begin_cb)
                return
            elif kind == "u":
                self._batched = batched
                self._op_arg = op[1]
                flush_then(self._unlock_fence_cb)
                return
            elif kind == "s":
                self._batched = batched
                self._op = op
                flush_then(self._send_begin_cb)
                return
            elif kind == "v":
                self._batched = batched
                self._op_arg = op[1]
                flush_then(self._recv_begin_cb)
                return
            elif kind == "q":
                self._batched = batched
                self._op = op
                flush_then(self._req_begin_cb)
                return
            elif kind == "e":
                self._batched = batched
                flush_then(self._req_end_fence_cb)
                return
            else:
                raise WorkloadError(f"unknown operation {op!r}")
        self._batched = batched
        flush_then(self._finish_cb)

    def _loop_checked(self) -> None:
        # Oracle-instrumented twin of :meth:`_loop` — the identical state
        # machine and time accounting, plus a shadow-model observation per
        # retiring reference (reads that hit observe here; reads that miss
        # or merge observe at their wake-up sites; writes queue or perform
        # here).  The oracle only observes, so dispatch order and simulated
        # results match the uninstrumented loop exactly; the golden matrix
        # never runs with an oracle attached, so the two copies only need
        # to stay semantically in sync.
        oracle = self.oracle
        node_id = self.node_id
        cache = self.cache
        sets = cache._sets
        line_shift = cache.line_shift
        tag_shift = cache.tag_shift
        set_mask = cache.set_mask
        stats = cache.stats
        mshr_get = self.mshrs.entries.get
        quantum = self.quantum
        cpr = CYCLES_PER_REFERENCE
        SHARED = CacheState.SHARED
        flush_then = self._flush_then
        batched = self._batched
        for op in self._ops:
            kind = op[0]
            if kind == "r":
                k = op[2] if len(op) > 2 else 1
                self.total_reads += k
                batched += cpr * k
                line = op[1] & _LINE_MASK
                entry = mshr_get(line)
                if entry is not None:
                    self.read_merges += 1
                    if k > 1:
                        stats.read_hits += k - 1
                    self._batched = batched
                    self._pending_entry = entry
                    self._miss_line = line
                    flush_then(self._rmerge_after_flush_cb)
                    return
                cache_set = sets[(line >> line_shift) & set_mask]
                tag = line >> tag_shift
                state = cache_set.pop(tag, None)
                if state is None:
                    stats.read_misses += 1
                    if k > 1:
                        stats.read_hits += k - 1
                    self._batched = batched
                    self._miss_line = line
                    flush_then(self._read_miss_begin_cb)
                    return
                cache_set[tag] = state  # MRU
                stats.read_hits += k
                oracle.on_read(node_id, line)
                if batched >= quantum:
                    self._batched = batched
                    flush_then(self._loop_cb)
                    return
            elif kind == "w":
                k = op[2] if len(op) > 2 else 1
                self.total_writes += k
                batched += cpr * k
                line = op[1] & _LINE_MASK
                entry = mshr_get(line)
                if entry is not None:
                    self.mshrs.merge_write(line)
                    if k > 1:
                        stats.write_hits += k - 1
                    if not entry.is_write:
                        entry.needs_upgrade = True
                    oracle.on_write_queued(node_id, line)
                    continue
                cache_set = sets[(line >> line_shift) & set_mask]
                tag = line >> tag_shift
                state = cache_set.pop(tag, None)
                if state is None:
                    stats.write_misses += 1
                    if k > 1:
                        stats.write_hits += k - 1
                    self._batched = batched
                    self._miss_line = line
                    self._miss_state = CacheState.INVALID
                    oracle.on_write_queued(node_id, line)
                    flush_then(self._write_miss_begin_cb)
                    return
                elif state == SHARED:
                    cache_set[tag] = state  # MRU; upgrade required
                    stats.write_misses += 1
                    if k > 1:
                        stats.write_hits += k - 1
                    self._batched = batched
                    self._miss_line = line
                    self._miss_state = SHARED
                    oracle.on_write_queued(node_id, line)
                    flush_then(self._write_miss_begin_cb)
                    return
                else:
                    cache_set[tag] = state  # MRU
                    stats.write_hits += k
                    oracle.on_write_hit(node_id, line)
                    if batched >= quantum:
                        self._batched = batched
                        flush_then(self._loop_cb)
                        return
            elif kind == "c":
                batched += op[1]
                if batched >= quantum:
                    self._batched = batched
                    flush_then(self._loop_cb)
                    return
            elif kind == "b":
                self._batched = batched
                self._op_arg = op[1]
                flush_then(self._barrier_fence_cb)
                return
            elif kind == "l":
                self._batched = batched
                self._op_arg = op[1]
                flush_then(self._lock_begin_cb)
                return
            elif kind == "u":
                self._batched = batched
                self._op_arg = op[1]
                flush_then(self._unlock_fence_cb)
                return
            elif kind == "s":
                self._batched = batched
                self._op = op
                flush_then(self._send_begin_cb)
                return
            elif kind == "v":
                self._batched = batched
                self._op_arg = op[1]
                flush_then(self._recv_begin_cb)
                return
            elif kind == "q":
                self._batched = batched
                self._op = op
                flush_then(self._req_begin_cb)
                return
            elif kind == "e":
                self._batched = batched
                flush_then(self._req_end_fence_cb)
                return
            else:
                raise WorkloadError(f"unknown operation {op!r}")
        self._batched = batched
        flush_then(self._finish_cb)

    def _finish(self) -> None:
        self.times.finish_time = self.env.now
        self._done.succeed()

    @property
    def done(self) -> Event:
        return self._done

    # -- time accounting helpers ------------------------------------------------------

    def _flush_then(self, cont) -> None:
        """Convert batched hit/compute cycles into simulated time, then run
        ``cont``.  Each timing edge the old ``_flush`` expressed as a yield
        is one scheduled callback; with nothing to charge, ``cont`` runs
        inline — exactly like a ``yield from`` that never yielded."""
        batched = self._batched
        if batched > 0:
            self._batched = 0.0
            self.times.busy += batched
            self._after_flush = cont
            self.env.call_later(batched, self._flush_tail_cb)
            return
        now = self.env._now
        if now < self.cache_busy_until:
            # The controller is using the cache: the processor waits (Cont).
            wait = self.cache_busy_until - now
            self.times.cont += wait
            self.env.call_later(wait, cont)
            return
        cont()

    def _flush_tail(self) -> None:
        cont = self._after_flush
        self._after_flush = None
        now = self.env._now
        if now < self.cache_busy_until:
            wait = self.cache_busy_until - now
            self.times.cont += wait
            self.env.call_later(wait, cont)
            return
        cont()

    def _fence_then(self, cont) -> None:
        """Wait for every outstanding miss to complete, then run ``cont``."""
        if len(self.mshrs):
            self._fence_cont = cont
            self._any_completion().callbacks.append(self._fence_recheck_cb)
            return
        cont()

    def _fence_recheck(self, _event) -> None:
        if len(self.mshrs):
            self._any_completion().callbacks.append(self._fence_recheck_cb)
            return
        cont = self._fence_cont
        self._fence_cont = None
        cont()

    def _wait_event(self, event: Event, callback) -> None:
        """Register ``callback`` on ``event`` exactly as a process yield
        would (ready re-queue when already dispatched)."""
        callbacks = event.callbacks
        if callbacks is None:
            self.env._ready.append((callback, event))
        else:
            callbacks.append(callback)

    # -- read-merge stall ---------------------------------------------------------------

    def _rmerge_after_flush(self) -> None:
        entry = self._pending_entry
        self._pending_entry = None
        # The flush took time: the miss may have completed already.
        if self.mshrs.entries.get(self._miss_line) is entry:
            self._stall_start = self.env._now
            waiter = self.env.event()
            entry.waiters.append(waiter)
            waiter.callbacks.append(self._rmerge_done_cb)
            return
        if self.oracle is not None:
            self.oracle.on_read(self.node_id, self._miss_line)
        self._loop_cb()

    def _rmerge_done(self, _event) -> None:
        self.times.read_stall += self.env._now - self._stall_start
        if self.tracer is not None:
            self.tracer.cpu_wait(self.node_id, "r", self._stall_start,
                                 self.env._now)
        if self.oracle is not None:
            self.oracle.on_read(self.node_id, self._miss_line)
        self._loop_cb()

    # -- miss handling ------------------------------------------------------------------

    def _read_miss_begin(self) -> None:
        line = self._miss_line
        start = self.env._now
        self._stall_start = start
        if self.tracer is not None:
            self.tracer.txn_issue(self.node_id, line, False, start)
        if self.mshrs.is_full:
            self.mshrs.full_stalls += 1
            self._any_completion().callbacks.append(self._rm_space_cb)
            return
        self._rm_allocate()

    def _rm_space(self, _event) -> None:
        if self.mshrs.is_full:
            self._any_completion().callbacks.append(self._rm_space_cb)
            return
        self._rm_allocate()

    def _rm_allocate(self) -> None:
        entry = self.mshrs.allocate(self._miss_line, False, self.env._now)
        waiter = self.env.event()
        entry.waiters.append(waiter)
        self._miss_waiter = waiter
        self.env.call_later(self.lat.miss_detect_to_bus + self.lat.bus_transit,
                            self._rm_submit_cb)

    def _rm_submit(self) -> None:
        message = _acquire(MT.GET, self._miss_line, self.node_id, self.node_id,
                          self.node_id, is_write=False)
        self.controller.pi_submit_cb(message, self._rm_wait_cb)

    def _rm_wait(self) -> None:
        # Blocking read: park on the fill waiter.
        waiter = self._miss_waiter
        self._miss_waiter = None
        self._wait_event(waiter, self._rm_done_cb)

    def _rm_done(self, _event) -> None:
        self.times.read_stall += self.env._now - self._stall_start
        if self.tracer is not None:
            self.tracer.cpu_wait(self.node_id, "r", self._stall_start,
                                 self.env._now)
        if self.oracle is not None:
            self.oracle.on_read(self.node_id, self._miss_line)
        self._loop_cb()

    def _write_miss_begin(self) -> None:
        line = self._miss_line
        self._stall_start = self.env._now
        if self.tracer is not None:
            self.tracer.txn_issue(self.node_id, line, True, self._stall_start)
        # A write to a line that maps to the same index as, but a different
        # tag than, an outstanding miss stalls the processor.
        mshrs = self.mshrs
        if mshrs.index_conflict(line):
            mshrs.conflict_stalls += 1
            self._any_completion().callbacks.append(self._wm_conflict_cb)
            return
        self._wm_check_full()

    def _wm_conflict(self, _event) -> None:
        if self.mshrs.index_conflict(self._miss_line):
            self._any_completion().callbacks.append(self._wm_conflict_cb)
            return
        self._wm_check_full()

    def _wm_check_full(self) -> None:
        mshrs = self.mshrs
        if mshrs.is_full:
            mshrs.full_stalls += 1
            self._any_completion().callbacks.append(self._wm_space_cb)
            return
        self._wm_allocate()

    def _wm_space(self, _event) -> None:
        if self.mshrs.is_full:
            self._any_completion().callbacks.append(self._wm_space_cb)
            return
        self._wm_allocate()

    def _wm_allocate(self) -> None:
        self.mshrs.allocate(self._miss_line, True, self.env._now)
        self.env.call_later(self.lat.miss_detect_to_bus + self.lat.bus_transit,
                            self._wm_submit_cb)

    def _wm_submit(self) -> None:
        mtype = MT.UPGRADE if self._miss_state == CacheState.SHARED else MT.GETX
        message = _acquire(mtype, self._miss_line, self.node_id, self.node_id,
                          self.node_id, is_write=True)
        self.controller.pi_submit_cb(message, self._wm_done_cb)

    def _wm_done(self) -> None:
        # Non-blocking write: the processor continues; only the time spent
        # waiting for MSHR space / conflicts / queue space is write stall.
        self.times.write_stall += self.env._now - self._stall_start
        if self.tracer is not None:
            self.tracer.cpu_wait(self.node_id, "w", self._stall_start,
                                 self.env._now)
        self._loop_cb()

    # -- synchronization / transfers ----------------------------------------------------

    def _barrier_fence(self) -> None:
        self._stall_start = self.env._now
        self._sync_info = ("b", self._op_arg)
        # Release semantics: outstanding misses drain before the barrier
        # (otherwise a non-blocking write could race past it).
        self._fence_then(self._barrier_enter_cb)

    def _barrier_enter(self) -> None:
        if self.tracer is not None:
            self.tracer.barrier_arrive(self.node_id, self._op_arg,
                                       self.env._now)
        self._wait_event(self.sync.barrier(self._op_arg), self._sync_done_cb)

    def _lock_begin(self) -> None:
        self._stall_start = self.env._now
        self._sync_info = ("l", self._op_arg)
        self._wait_event(self.sync.acquire(self._op_arg), self._sync_done_cb)

    def _sync_done(self, _event=None) -> None:
        self.times.sync += self.env._now - self._stall_start
        if self.tracer is not None:
            kind, arg = self._sync_info
            self.tracer.cpu_wait(self.node_id, kind, self._stall_start,
                                 self.env._now, arg)
        self._loop_cb()

    def _unlock_fence(self) -> None:
        self._stall_start = self.env._now
        self._fence_then(self._unlock_release_cb)

    def _unlock_release(self) -> None:
        self.times.sync += self.env._now - self._stall_start
        if self.tracer is not None:
            self.tracer.cpu_wait(self.node_id, "u", self._stall_start,
                                 self.env._now, self._op_arg)
        self.sync.release(self._op_arg)
        if self.tracer is not None:
            self.tracer.lock_release(self.node_id, self._op_arg,
                                     self.env._now)
        self._loop_cb()

    def _send_begin(self) -> None:
        _k, dst, addr, nbytes = self._op
        self._op = None
        descriptor = Message(
            MT.XFER_SEND, line_address(addr), self.node_id,
            self.node_id, dst, nbytes=nbytes,
        )
        self._stall_start = self.env._now
        self.controller.pi_submit_cb(descriptor, self._send_done_cb)

    def _send_done(self) -> None:
        self.times.write_stall += self.env._now - self._stall_start
        if self.tracer is not None:
            self.tracer.cpu_wait(self.node_id, "w", self._stall_start,
                                 self.env._now)
        self._loop_cb()

    def _recv_begin(self) -> None:
        self._stall_start = self.env._now
        self._sync_info = ("v", self._op_arg)
        self._wait_event(self.transfers.receive(self.node_id, self._op_arg),
                         self._sync_done_cb)

    # -- open-loop request markers ------------------------------------------------------

    def _req_begin(self) -> None:
        # ('q', cls, t): pace to the pre-generated intended arrival time.
        # The wait is client idle time — the processor has no work — so it
        # is deliberately uncharged (no Figure 4.1 category grows).  Pacing
        # happens whether or not a monitor is attached: the op stream alone
        # determines timing, the monitor only observes.
        _k, cls, t_arrival = self._op
        self._op = None
        self._op_arg = (cls, t_arrival)
        now = self.env._now
        if now < t_arrival:
            if self.tracer is not None:
                self.tracer.cpu_wait(self.node_id, "i", now, t_arrival)
            self.env.call_later(t_arrival - now, self._req_start_cb)
            return
        self._req_start()

    def _req_start(self) -> None:
        cls, t_arrival = self._op_arg
        self._op_arg = 0
        if self.loadlat is not None:
            self.loadlat.request_begin(self.node_id, cls, t_arrival,
                                       self.env._now)
        self._loop_cb()

    def _req_end_fence(self) -> None:
        # ('e',): the request's non-blocking writes must land before the
        # latency clock stops (release semantics, like the barrier fence).
        self._stall_start = self.env._now
        self._fence_then(self._req_end_cb)

    def _req_end(self) -> None:
        self.times.write_stall += self.env._now - self._stall_start
        if self.tracer is not None:
            self.tracer.cpu_wait(self.node_id, "w", self._stall_start,
                                 self.env._now)
        if self.loadlat is not None:
            self.loadlat.request_end(self.node_id, self.env._now)
        self._loop_cb()

    # -- deferred issue (cold paths) ----------------------------------------------------

    def _issue_write_async(self, line: int):
        """Upgrade issued on behalf of a write that merged into a read."""
        if self.cache.state_of(line) == CacheState.DIRTY:
            return
        if self.mshrs.lookup(line) is None and self.mshrs.is_full:
            self.mshrs.full_stalls += 1
        while self.mshrs.lookup(line) is not None or self.mshrs.is_full:
            yield self._any_completion()
        state = self.cache.state_of(line)
        if state == CacheState.DIRTY:
            return
        if self.tracer is not None:
            self.tracer.txn_issue(self.node_id, line, True, self.env.now)
        self.mshrs.allocate(line, True, self.env.now)
        mtype = MT.UPGRADE if state == CacheState.SHARED else MT.GETX
        message = _acquire(mtype, line, self.node_id, self.node_id,
                          self.node_id, is_write=True)
        yield self.controller.pi_submit(message)

    def _any_completion(self) -> Event:
        """An event firing when any outstanding miss completes."""
        waiter = self.env.event()
        for line in self.mshrs.outstanding_lines():
            entry = self.mshrs.lookup(line)
            if entry is not None:
                entry.waiters.append(
                    _OneShotRelay(waiter)
                )
        if not self.mshrs.outstanding_lines():
            waiter.succeed()
        return waiter

    # -- evictions -------------------------------------------------------------------------

    def _post_eviction(self, victim: Tuple[int, str]) -> None:
        line, state = victim
        mtype = MT.WRITEBACK if state == CacheState.DIRTY else MT.REPL_HINT
        # Current-time hop mirrors the old poster process's start resume; the
        # PI put's completion was never waited on, so it is dropped.
        self.env.call_soon(self._evict_post_cb, (mtype, line))

    def _evict_post(self, pair) -> None:
        mtype, line = pair
        message = _acquire(mtype, line, self.node_id, self.node_id,
                          self.node_id)
        if self.oracle is not None:
            self.oracle.on_evict(self.node_id, line, mtype, message)
        self.controller.pi_submit_drop(message)


class _OneShotRelay:
    """Succeeds a target event the first time any of its sources fires."""

    __slots__ = ("target",)

    def __init__(self, target: Event):
        self.target = target

    def succeed(self, value=None) -> None:
        if not self.target.triggered:
            self.target.succeed(value)
