"""The compute processor model.

Section 3.2: an aggressive 400-MIPS processor (up to 4 instructions, hence up
to 4 memory references, per 10 ns system cycle) with blocking reads and
non-blocking writes, up to 4 outstanding misses, write-merging into an
outstanding miss to the same line, and a stall when a write maps to the same
cache index as — but a different tag than — an outstanding miss.

The processor consumes an *operation stream* from a workload generator:

    ('r', addr)        read one word
    ('r', addr, k)     k spatially-local reads within the word's line
    ('w', addr)        write one word
    ('w', addr, k)     k spatially-local writes within the word's line
    ('c', cycles)      compute for N cycles without touching memory
    ('b', barrier_id)  global barrier
    ('l', lock_id)     acquire lock
    ('u', lock_id)     release lock
    ('s', dst, addr, nbytes)  post a block-transfer send (non-blocking)
    ('v', src)         wait for a block transfer from node src to arrive

The k-reference forms model code that walks every word of a line (16 8-byte
words per 128-byte line): one cache access decides hit/miss, the remaining
k-1 references are same-line hits charged only issue time.

Cache hits and compute are batched locally and yielded to the simulator in
bounded quanta; misses, interventions and synchronization are fully
event-accurate.  Time is charged to the Figure 4.1 categories (Busy, Cont,
Read, Write, Sync).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

from ..caches.mshr import MSHRFile
from ..caches.setassoc import CacheState, SetAssocCache
from ..common.errors import WorkloadError
from ..common.params import MachineConfig
from ..common.units import CACHE_LINE_BYTES, line_address
from ..protocol.messages import Message, MessageType as MT
from ..sim.engine import Environment, Event
from ..stats.breakdown import CpuTimes
from .sync import SyncDomain

__all__ = ["CPU", "CYCLES_PER_REFERENCE"]

#: Each reference is one instruction slot of the 4-issue 400-MIPS processor.
CYCLES_PER_REFERENCE = 0.25

#: ``addr & _LINE_MASK == line_address(addr)`` for non-negative addresses
#: (CACHE_LINE_BYTES is a power of two) — the branch-free form the hit-run
#: inner loop uses.
_LINE_MASK = -CACHE_LINE_BYTES


class CPU:
    """One compute processor plus its secondary cache and MSHRs."""

    def __init__(
        self,
        env: Environment,
        node_id: int,
        config: MachineConfig,
        controller,  # MagicChip or IdealController
        sync: SyncDomain,
        times: Optional[CpuTimes] = None,
    ):
        self.env = env
        self.node_id = node_id
        self.config = config
        self.controller = controller
        self.sync = sync
        self.times = times if times is not None else CpuTimes()
        self.cache = SetAssocCache(config.proc_cache, name=f"L2[{node_id}]")
        self.mshrs = MSHRFile(config.proc_cache.mshrs, self.cache)
        self.cache_busy_until = 0.0
        self.quantum = config.cpu_hit_quantum
        self.lat = config.latencies
        # Reference counters (cache.stats counts only primary misses).
        self.total_reads = 0
        self.total_writes = 0
        self.read_merges = 0
        controller.set_cpu_deliver(self.deliver)
        controller.set_cache_busy(self.note_cache_busy)
        self.transfers = getattr(controller, "transfers", None)
        self.tracer = None  # Tracer (repro.stats.trace), attached by the Machine
        self._done = Event(env)

    # -- controller-facing callbacks --------------------------------------------

    def note_cache_busy(self, cycles: float) -> None:
        """MAGIC (or the ideal controller) is using the processor cache."""
        self.cache_busy_until = max(self.cache_busy_until, self.env.now + cycles)

    def external_invalidate(self, line_addr: int) -> str:
        """Protocol invalidation of a line in this processor's cache."""
        prior = self.cache.invalidate(line_addr)
        if prior == CacheState.INVALID:
            entry = self.mshrs.lookup(line_addr)
            if entry is not None and not entry.is_write:
                entry.invalidate_on_fill = True
        return prior

    def external_downgrade(self, line_addr: int) -> None:
        """Protocol intervention: DIRTY -> SHARED."""
        if self.cache.state_of(line_addr) == CacheState.DIRTY:
            self.cache.set_state(line_addr, CacheState.SHARED)

    def cache_state_of(self, line_addr: int) -> str:
        return self.cache.state_of(line_addr)

    def deliver(self, message: Message) -> None:
        """A reply crossed the processor bus: fill the cache, retire the
        MSHR, and wake any stalled references."""
        line = message.line_addr
        if self.tracer is not None:
            self.tracer.txn_retire(self.node_id, line, self.env.now)
        entry = self.mshrs.complete(line)
        state = CacheState.SHARED if message.mtype == MT.PUT else CacheState.DIRTY
        victim = self.cache.fill(line, state)
        if entry.invalidate_on_fill:
            # The data is still consumed by the waiting reference(s); the
            # line just does not stay resident.
            self.cache.invalidate(line)
        if victim is not None:
            self._post_eviction(victim)
        for waiter in entry.waiters:
            waiter.succeed()
        if (
            entry.needs_upgrade
            and state == CacheState.SHARED
        ):
            # A write merged into this read miss: it still needs ownership.
            self.env.process(self._issue_write_async(line),
                             name=f"cpu.upg[{self.node_id}]")

    # -- the execution loop ---------------------------------------------------------

    def run(self, ops: Iterable[Tuple]) -> Event:
        """Spawn the processor executing ``ops``; returns its completion
        process (an event)."""
        process = self.env.process(self._run(iter(ops)),
                                   name=f"cpu[{self.node_id}]")
        return process

    def _run(self, ops: Iterator[Tuple]):
        # Hit-run inner loop: consecutive hitting references and compute ops
        # are consumed in plain Python — cache geometry as local shift/mask
        # bindings, hit/miss decision as one dict pop/insert, time charged in
        # bulk through ``batched`` — and the generator only yields to the
        # event kernel on a miss, an MSHR hit, a sync op, a block transfer,
        # or quantum expiry.  The kernel sees misses, not references.
        # Timing (and therefore every result) is identical to the unbatched
        # form; see DESIGN.md "Performance engineering".
        cache = self.cache
        sets = cache._sets
        line_shift = cache.line_shift
        tag_shift = cache.tag_shift
        set_mask = cache.set_mask
        stats = cache.stats
        mshr_get = self.mshrs.entries.get
        quantum = self.quantum
        cpr = CYCLES_PER_REFERENCE
        SHARED = CacheState.SHARED
        batched = 0.0
        for op in ops:
            kind = op[0]
            if kind == "r":
                k = op[2] if len(op) > 2 else 1
                self.total_reads += k
                batched += cpr * k
                line = op[1] & _LINE_MASK
                entry = mshr_get(line)
                if entry is not None:
                    # Secondary reference to an in-flight line.
                    self.read_merges += 1
                    if k > 1:
                        stats.read_hits += k - 1
                    batched = yield from self._flush(batched)
                    # The flush yielded: the miss may have completed already.
                    if mshr_get(line) is entry:
                        yield from self._wait_for_entry(entry, is_read=True)
                    continue
                cache_set = sets[(line >> line_shift) & set_mask]
                tag = line >> tag_shift
                state = cache_set.pop(tag, None)
                if state is None:
                    stats.read_misses += 1
                    if k > 1:
                        stats.read_hits += k - 1
                    batched = yield from self._flush(batched)
                    yield from self._read_miss(line)
                else:
                    cache_set[tag] = state  # MRU
                    stats.read_hits += k
                    if batched >= quantum:
                        batched = yield from self._flush(batched)
            elif kind == "w":
                k = op[2] if len(op) > 2 else 1
                self.total_writes += k
                batched += cpr * k
                line = op[1] & _LINE_MASK
                entry = mshr_get(line)
                if entry is not None:
                    # Write-merge into the outstanding miss: no stall.
                    self.mshrs.merge_write(line)
                    if k > 1:
                        stats.write_hits += k - 1
                    if not entry.is_write:
                        entry.needs_upgrade = True
                    continue
                cache_set = sets[(line >> line_shift) & set_mask]
                tag = line >> tag_shift
                state = cache_set.pop(tag, None)
                if state is None:
                    stats.write_misses += 1
                    if k > 1:
                        stats.write_hits += k - 1
                    batched = yield from self._flush(batched)
                    yield from self._write_miss(line, CacheState.INVALID)
                elif state == SHARED:
                    cache_set[tag] = state  # MRU; upgrade required
                    stats.write_misses += 1
                    if k > 1:
                        stats.write_hits += k - 1
                    batched = yield from self._flush(batched)
                    yield from self._write_miss(line, SHARED)
                else:
                    cache_set[tag] = state  # MRU
                    stats.write_hits += k
                    if batched >= quantum:
                        batched = yield from self._flush(batched)
            elif kind == "c":
                batched += op[1]
                if batched >= quantum:
                    batched = yield from self._flush(batched)
            elif kind == "b":
                batched = yield from self._flush(batched)
                start = self.env.now
                # Release semantics: outstanding misses drain before the
                # barrier (otherwise a non-blocking write could race past it).
                yield from self._fence()
                yield self.sync.barrier(op[1])
                self.times.sync += self.env.now - start
            elif kind == "l":
                batched = yield from self._flush(batched)
                start = self.env.now
                yield self.sync.acquire(op[1])
                self.times.sync += self.env.now - start
            elif kind == "u":
                batched = yield from self._flush(batched)
                start = self.env.now
                yield from self._fence()
                self.times.sync += self.env.now - start
                self.sync.release(op[1])
            elif kind == "s":
                batched = yield from self._flush(batched)
                _k, dst, addr, nbytes = op
                descriptor = Message(
                    MT.XFER_SEND, line_address(addr), self.node_id,
                    self.node_id, dst, nbytes=nbytes,
                )
                start = self.env.now
                yield self.controller.pi_submit(descriptor)
                self.times.write_stall += self.env.now - start
            elif kind == "v":
                batched = yield from self._flush(batched)
                start = self.env.now
                yield self.transfers.receive(self.node_id, op[1])
                self.times.sync += self.env.now - start
            else:
                raise WorkloadError(f"unknown operation {op!r}")
        yield from self._flush(batched)
        self.times.finish_time = self.env.now
        self._done.succeed()

    @property
    def done(self) -> Event:
        return self._done

    # -- time accounting helpers ------------------------------------------------------

    def _flush(self, batched: float):
        """Convert batched hit/compute cycles into simulated time."""
        if batched > 0:
            self.times.busy += batched
            yield self.env.timeout(batched)
        if self.env.now < self.cache_busy_until:
            # The controller is using the cache: the processor waits (Cont).
            wait = self.cache_busy_until - self.env.now
            self.times.cont += wait
            yield self.env.timeout(wait)
        return 0.0

    def _fence(self):
        """Wait for every outstanding miss to complete."""
        while len(self.mshrs):
            yield self._any_completion()

    def _wait_for_entry(self, entry, is_read: bool):
        start = self.env.now
        waiter = Event(self.env)
        entry.waiters.append(waiter)
        yield waiter
        elapsed = self.env.now - start
        if is_read:
            self.times.read_stall += elapsed
        else:
            self.times.write_stall += elapsed

    # -- miss handling ------------------------------------------------------------------

    def _read_miss(self, line: int):
        start = self.env.now
        if self.tracer is not None:
            self.tracer.txn_issue(self.node_id, line, False, start)
        if self.mshrs.is_full:
            self.mshrs.full_stalls += 1
        while self.mshrs.is_full:
            yield self._any_completion()
        entry = self.mshrs.allocate(line, False, self.env.now)
        waiter = Event(self.env)
        entry.waiters.append(waiter)
        yield self.env.timeout(self.lat.miss_detect_to_bus + self.lat.bus_transit)
        message = Message(MT.GET, line, self.node_id, self.node_id,
                          self.node_id, is_write=False)
        yield self.controller.pi_submit(message)
        yield waiter  # blocking read
        self.times.read_stall += self.env.now - start

    def _write_miss(self, line: int, state: str):
        start = self.env.now
        if self.tracer is not None:
            self.tracer.txn_issue(self.node_id, line, True, start)
        # A write to a line that maps to the same index as, but a different
        # tag than, an outstanding miss stalls the processor.
        if self.mshrs.index_conflict(line):
            self.mshrs.conflict_stalls += 1
        while self.mshrs.index_conflict(line):
            yield self._any_completion()
        if self.mshrs.is_full:
            self.mshrs.full_stalls += 1
        while self.mshrs.is_full:
            yield self._any_completion()
        entry = self.mshrs.allocate(line, True, self.env.now)
        yield self.env.timeout(self.lat.miss_detect_to_bus + self.lat.bus_transit)
        mtype = MT.UPGRADE if state == CacheState.SHARED else MT.GETX
        message = Message(mtype, line, self.node_id, self.node_id,
                          self.node_id, is_write=True)
        yield self.controller.pi_submit(message)
        # Non-blocking write: the processor continues; only the time spent
        # waiting for MSHR space / conflicts / queue space is write stall.
        self.times.write_stall += self.env.now - start

    def _issue_write_async(self, line: int):
        """Upgrade issued on behalf of a write that merged into a read."""
        if self.cache.state_of(line) == CacheState.DIRTY:
            return
        if self.mshrs.lookup(line) is None and self.mshrs.is_full:
            self.mshrs.full_stalls += 1
        while self.mshrs.lookup(line) is not None or self.mshrs.is_full:
            yield self._any_completion()
        state = self.cache.state_of(line)
        if state == CacheState.DIRTY:
            return
        if self.tracer is not None:
            self.tracer.txn_issue(self.node_id, line, True, self.env.now)
        self.mshrs.allocate(line, True, self.env.now)
        mtype = MT.UPGRADE if state == CacheState.SHARED else MT.GETX
        message = Message(mtype, line, self.node_id, self.node_id,
                          self.node_id, is_write=True)
        yield self.controller.pi_submit(message)

    def _any_completion(self) -> Event:
        """An event firing when any outstanding miss completes."""
        waiter = Event(self.env)
        for line in self.mshrs.outstanding_lines():
            entry = self.mshrs.lookup(line)
            if entry is not None:
                entry.waiters.append(
                    _OneShotRelay(waiter)
                )
        if not self.mshrs.outstanding_lines():
            waiter.succeed()
        return waiter

    # -- evictions -------------------------------------------------------------------------

    def _post_eviction(self, victim: Tuple[int, str]) -> None:
        line, state = victim
        mtype = MT.WRITEBACK if state == CacheState.DIRTY else MT.REPL_HINT

        def poster():
            message = Message(mtype, line, self.node_id, self.node_id,
                              self.node_id)
            yield self.controller.pi_submit(message)

        self.env.process(poster(), name=f"cpu.evict[{self.node_id}]")


class _OneShotRelay:
    """Succeeds a target event the first time any of its sources fires."""

    __slots__ = ("target",)

    def __init__(self, target: Event):
        self.target = target

    def succeed(self, value=None) -> None:
        if not self.target.triggered:
            self.target.succeed(value)
