"""Check specs and the single-run checker driver.

A :class:`CheckSpec` is one fully-determined checked run: the machine
shape, protocol variant, backend, fusion mode, fault plan, seed and
traffic volume.  :func:`run_check` builds the machine, attaches the
:class:`~repro.check.oracle.CoherenceOracle`, runs the seeded
:class:`~repro.apps.randmem.RandMemWorkload`, performs the strict
end-of-run invariant walk, and returns a :class:`CheckReport` — never
raising: protocol bugs surface as structured failures so the sweep and
shrinking layers can treat them as data.

Specs round-trip through plain dicts (``to_dict`` / ``from_dict``), which
is what makes shrunk failure reproducers replayable JSON artifacts.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, replace
from typing import Iterator, Optional

from ..common.errors import CoherenceViolation
from ..common.params import flash_config, ideal_config

__all__ = ["CheckSpec", "CheckReport", "run_check", "iter_specs",
           "PROTOCOLS", "KINDS"]

#: Protocol axis of the sweep.  ``transfer`` is the base protocol plus the
#: block-transfer lane in the workload (send/recv traffic interleaved with
#: the contended cached lines).
PROTOCOLS = ("base", "migratory", "transfer")
KINDS = ("flash", "ideal")

#: Generous watchdog budget for checked runs: a wedged protocol (e.g. the
#: ``no_ack`` mutation) must terminate with a diagnosis, not hang CI.
_WATCHDOG = {"event_budget": 5_000_000}


@dataclass(frozen=True)
class CheckSpec:
    """One deterministic checked run."""

    seed: int = 0
    ops: int = 400              # per-processor operation count
    nodes: int = 4
    lines: int = 8              # contended-line working set
    kind: str = "flash"         # "flash" | "ideal"
    protocol: str = "base"      # "base" | "migratory" | "transfer"
    backend: str = "table"      # PP cost backend (flash only)
    fusion: bool = True         # macro-op fusion in the controllers
    fault_rate: float = 0.0     # FaultPlan.uniform rate (flash+table only)
    cache_bytes: int = 4096     # small cache => evictions stay in play
    write_frac: float = 0.35
    zipf_theta: float = 0.8
    barrier_every: int = 64     # quiesce-point cadence (ops per episode)
    mutation: Optional[str] = None  # test-only protocol mutation hook

    def validate(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown kind {self.kind!r}")
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.fault_rate and (self.kind != "flash"
                                or self.backend != "table"):
            raise ValueError(
                "fault injection requires the flash machine with the "
                "table backend")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, state: dict) -> "CheckSpec":
        return cls(**{k: state[k] for k in cls.__dataclass_fields__
                      if k in state})

    def with_changes(self, **kwargs) -> "CheckSpec":
        return replace(self, **kwargs)

    def describe(self) -> str:
        tags = [f"seed={self.seed}", f"ops={self.ops}",
                f"nodes={self.nodes}", f"lines={self.lines}",
                self.kind, self.protocol,
                "fused" if self.fusion else "stepwise"]
        if self.fault_rate:
            tags.append(f"faults={self.fault_rate:g}")
        if self.mutation:
            tags.append(f"mutation={self.mutation}")
        return " ".join(tags)


@dataclass
class CheckReport:
    """Outcome of one checked run."""

    spec: CheckSpec
    ok: bool
    checked_ops: int = 0
    quiesce_checks: int = 0
    execution_time: float = 0.0
    #: failure classification: "violation" (oracle/invariant), "stall"
    #: (watchdog or drained-unfinished schedule), "error" (anything else).
    failure_kind: Optional[str] = None
    error_type: Optional[str] = None
    error: Optional[str] = None
    violation: Optional[dict] = None
    shrunk: Optional[dict] = None   # filled in by the shrinking layer

    def to_dict(self) -> dict:
        state = {
            "spec": self.spec.to_dict(),
            "ok": self.ok,
            "checked_ops": self.checked_ops,
            "quiesce_checks": self.quiesce_checks,
            "execution_time": self.execution_time,
        }
        if not self.ok:
            state["failure_kind"] = self.failure_kind
            state["error_type"] = self.error_type
            state["error"] = self.error
            if self.violation is not None:
                state["violation"] = self.violation
            if self.shrunk is not None:
                state["shrunk"] = self.shrunk
        return state


def _build_machine(spec: CheckSpec):
    from ..machine import Machine

    make = flash_config if spec.kind == "flash" else ideal_config
    kwargs = {"cache_size": spec.cache_bytes, "protocol":
              ("migratory" if spec.protocol == "migratory" else "base")}
    if spec.kind == "flash":
        kwargs["pp_backend"] = spec.backend
    config = make(spec.nodes, **kwargs)
    faults = None
    if spec.fault_rate:
        from ..faults import FaultPlan
        faults = FaultPlan.uniform(spec.fault_rate, seed=spec.seed)
    # Fusion is a construction-time env knob (deliberately not a config
    # field); toggle it around the build only.
    prior = os.environ.get("REPRO_FUSION")
    os.environ["REPRO_FUSION"] = "on" if spec.fusion else "off"
    try:
        machine = Machine(config, faults=faults, watchdog=dict(_WATCHDOG),
                          trace=True)
    finally:
        if prior is None:
            os.environ.pop("REPRO_FUSION", None)
        else:
            os.environ["REPRO_FUSION"] = prior
    return machine


def _workload(spec: CheckSpec):
    from ..apps.randmem import RandMemWorkload

    return RandMemWorkload(
        seed=spec.seed, ops=spec.ops, lines=spec.lines,
        write_frac=spec.write_frac, zipf_theta=spec.zipf_theta,
        barrier_every=spec.barrier_every,
        transfers=(spec.protocol == "transfer"),
    )


def run_check(spec: CheckSpec) -> CheckReport:
    """Execute one checked run; failures come back as data, not raises."""
    from .oracle import CoherenceOracle

    spec.validate()
    machine = _build_machine(spec)
    for node in machine.nodes:
        node.engine.mutation = spec.mutation
    oracle = CoherenceOracle(machine)
    oracle.attach(machine)
    streams = _workload(spec).build(machine.config)
    try:
        result = machine.run(streams)
        machine.assert_quiesced()
        leaked = {key: count for key, count in oracle.queued.items() if count}
        if leaked:
            raise CoherenceViolation(
                "queued writes never performed (no exclusive fill arrived)",
                dump={"leaked": {f"node {n} line {l:#x}": c
                                 for (n, l), c in leaked.items()}})
    except CoherenceViolation as exc:
        return CheckReport(
            spec, ok=False, checked_ops=oracle.checked_ops,
            quiesce_checks=oracle.quiesce_checks,
            failure_kind="violation", error_type=type(exc).__name__,
            error=str(exc), violation=exc.to_dict())
    except Exception as exc:  # stalls, NAK storms, anything unexpected
        from ..sim.watchdog import SimStalledError

        kind = "stall" if isinstance(exc, (SimStalledError, RuntimeError)) \
            else "error"
        return CheckReport(
            spec, ok=False, checked_ops=oracle.checked_ops,
            quiesce_checks=oracle.quiesce_checks,
            failure_kind=kind, error_type=type(exc).__name__,
            error=str(exc))
    return CheckReport(
        spec, ok=True, checked_ops=oracle.checked_ops,
        quiesce_checks=oracle.quiesce_checks,
        execution_time=result.execution_time)


def iter_specs(seeds, ops: int, nodes: int, lines: int,
               protocols=PROTOCOLS, kinds=KINDS, fusion_modes=(True, False),
               fault_rates=(0.0,), backend: str = "table",
               mutation: Optional[str] = None) -> Iterator[CheckSpec]:
    """The sweep grid, skipping combinations the machine cannot build
    (fault injection targets flash with the table backend)."""
    for seed in seeds:
        for kind in kinds:
            for protocol in protocols:
                for fusion in fusion_modes:
                    for rate in fault_rates:
                        if rate and (kind != "flash" or backend != "table"):
                            continue
                        yield CheckSpec(
                            seed=seed, ops=ops, nodes=nodes, lines=lines,
                            kind=kind, protocol=protocol, backend=backend,
                            fusion=fusion, fault_rate=rate,
                            mutation=mutation)
