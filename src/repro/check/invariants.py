"""Directory / cache / MSHR cross-state invariant walks.

Two strengths of the same walk over every node's directory entries, cache
tag arrays, and MSHR files:

* :func:`check_invariants` (``strict=False``) — the **quiesce-point** walk,
  run at barrier completions while fire-and-forget traffic (writebacks,
  replacement hints, sharing writebacks, ownership transfers) may still be
  in flight.  It tolerates ``pending`` directory entries and asserts only
  the directions that hold at any handler boundary: at most one modified
  copy per line machine-wide, a modified copy implies dirty-at-home (or a
  pending three-hop), a shared copy implies a recorded sharer (or a
  transient the entry's ``pending``/``dirty`` flags explain), per-entry
  directory consistency, exact link-store accounting, and empty MSHRs
  (every participant fenced before the barrier).
* :func:`check_invariants` (``strict=True``) — the **end-of-run** walk,
  after the event schedule has fully drained.  Everything above, plus: no
  pending or deferred directory state anywhere, and a dirty entry's owner
  must actually hold the line modified.

Violations raise :class:`~repro.common.errors.CoherenceViolation` carrying
a minimal state dump for the offending line and, when the run is traced,
the tracer's recent span tail (see :func:`repro.sim.watchdog.trace_tail`).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..caches.setassoc import CacheState
from ..common.errors import CoherenceViolation
from ..sim.watchdog import trace_tail

__all__ = ["check_invariants", "line_dump"]


def line_dump(machine, line_addr: Optional[int],
              home: Optional[int] = None) -> Dict[str, Any]:
    """Minimal machine-readable snapshot of one line's global state: the
    directory entry at its home, every cache's state for the line, and any
    MSHR entries outstanding on it."""
    dump: Dict[str, Any] = {}
    if line_addr is None:
        return dump
    dump["line"] = f"{line_addr:#x}"
    for node in machine.nodes:
        entry = node.directory._entries.get(line_addr)
        if entry is not None:
            dump["home"] = node.node_id
            dump["directory"] = {
                "dirty": entry.dirty, "owner": entry.owner,
                "pending": entry.pending,
                "sharers": node.directory.sharers(line_addr),
                "deferred": len(entry.deferred),
            }
            break
    cache_states = {}
    mshrs = {}
    for node in machine.nodes:
        state = node.cpu.cache.state_of(line_addr)
        if state != CacheState.INVALID:
            cache_states[node.node_id] = state
        entry = node.cpu.mshrs.entries.get(line_addr)
        if entry is not None:
            mshrs[node.node_id] = entry.describe()
    dump["caches"] = cache_states
    if mshrs:
        dump["mshrs"] = mshrs
    return dump


def _violation(machine, reason: str, line_addr: Optional[int] = None,
               extra: Optional[Dict[str, Any]] = None) -> CoherenceViolation:
    dump = line_dump(machine, line_addr)
    if extra:
        dump.update(extra)
    return CoherenceViolation(reason, dump=dump,
                              trace_tail=trace_tail(machine.env, line_addr))


def check_invariants(machine, strict: bool = False,
                     where: str = "quiesce") -> int:
    """Walk the whole machine's coherence state; raise
    :class:`CoherenceViolation` on the first inconsistency.  Returns the
    number of directory entries examined."""
    entries_seen = 0
    # Home side: per-entry consistency, pending/deferred policy, and exact
    # link-store reconciliation (allocated - freed == links live on sharer
    # lists; anything else is a leak the counters would silently absorb).
    for node in machine.nodes:
        directory = node.directory
        live_links = 0
        for line_addr, entry in directory._entries.items():
            entries_seen += 1
            directory.check_invariants(line_addr)
            live_links += len(directory.sharers(line_addr))
            if strict and entry.pending:
                raise _violation(
                    machine, f"[{where}] directory entry still pending after "
                    f"the run drained (home {node.node_id})", line_addr)
            if strict and entry.deferred:
                raise _violation(
                    machine, f"[{where}] {len(entry.deferred)} deferred "
                    f"request(s) orphaned at home {node.node_id}", line_addr)
            if strict and entry.dirty:
                owner_state = machine.nodes[entry.owner].cpu.cache_state_of(
                    line_addr)
                if owner_state != CacheState.DIRTY:
                    raise _violation(
                        machine, f"[{where}] directory says node "
                        f"{entry.owner} owns the line dirty but its cache "
                        f"holds it {owner_state!r}", line_addr)
        links = directory.links
        if links.total_allocated - links.total_freed != links.used:
            raise _violation(
                machine, f"[{where}] link-store counters disagree at node "
                f"{node.node_id}: allocated {links.total_allocated} - freed "
                f"{links.total_freed} != used {links.used}", None,
                extra={"node": node.node_id})
        if links.used != live_links:
            raise _violation(
                machine, f"[{where}] link-store leak at node {node.node_id}: "
                f"{links.used} link(s) allocated but only {live_links} "
                "reachable from sharer lists", None,
                extra={"node": node.node_id,
                       "allocated": links.total_allocated,
                       "freed": links.total_freed})
    # Cache side: every resident copy must be explicable by its home entry.
    # Index entries once (a line's entry lives only at its home node).
    entry_at: Dict[int, tuple] = {}
    for node in machine.nodes:
        for line_addr, entry in node.directory._entries.items():
            entry_at[line_addr] = (node.node_id, entry, node.directory)
    modified_holder: Dict[int, int] = {}
    for node in machine.nodes:
        for line_addr, state in node.cpu.cache.resident_lines():
            located = entry_at.get(line_addr)
            if located is None:
                raise _violation(
                    machine, f"[{where}] node {node.node_id} caches a line "
                    "no directory has ever seen", line_addr)
            home, entry, directory = located
            if state == CacheState.DIRTY:
                other = modified_holder.get(line_addr)
                if other is not None:
                    raise _violation(
                        machine, f"[{where}] two modified copies: nodes "
                        f"{other} and {node.node_id} (SWMR broken)", line_addr)
                modified_holder[line_addr] = node.node_id
                owned_here = entry.dirty and entry.owner == node.node_id
                if not owned_here and not (entry.pending and not strict):
                    raise _violation(
                        machine, f"[{where}] node {node.node_id} holds the "
                        f"line modified but home {home} records dirty="
                        f"{entry.dirty} owner={entry.owner}", line_addr)
            elif state == CacheState.SHARED:
                recorded = node.node_id in directory.sharers(line_addr)
                excused = not strict and (entry.pending or entry.dirty)
                if not recorded and not excused:
                    raise _violation(
                        machine, f"[{where}] node {node.node_id} holds a "
                        f"shared copy that home {home} does not record "
                        "(sharer list not a superset)", line_addr)
    # MSHR side: at a barrier every participant has fenced; after a drained
    # run every miss has retired.  Either way nothing may be outstanding.
    for node in machine.nodes:
        for line_addr, entry in node.cpu.mshrs.entries.items():
            raise _violation(
                machine, f"[{where}] node {node.node_id} still has an MSHR "
                "outstanding", line_addr,
                extra={"mshr": entry.describe()})
    return entries_seen
