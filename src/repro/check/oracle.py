"""SWMR + per-location sequential-consistency oracle.

The simulator is data-less — caches track states, not contents — so the
oracle runs a *shadow value model* beside the protocol: every performed
write mints a fresh per-line version token (monotone in perform order, so a
token pins exactly which write a read observed), and the oracle propagates
tokens along the same paths the protocol claims data moves:

* ``mem[line]`` — the version the home memory holds,
* ``copy[(node, line)]`` — the version a processor cache holds,
* ``msgval[uid]`` — the version carried by an in-flight data reply,

stamped from the protocol engine's returned :class:`Action` lists (the
semantic layer both the fused and stepwise execution paths share) and
consumed by the processor-interface hooks the CPU exposes.

On top of the propagation the oracle asserts, at every retiring access:

* **per-location SC** — the versions each processor observes for a line
  never go backwards (a legal total order per line exists iff every
  processor's observation sequence is a monotone walk of the perform
  order, given SWMR below);
* **SWMR** — at the instant a write performs, no other cache holds the
  line in any valid state (all invalidation acks are collected before an
  exclusive grant is delivered, so a surviving copy is a protocol bug);
* **no conflicting fill** — a shared (PUT) fill while another cache holds
  the line modified means the home replied with stale memory data.

Attaching the oracle is free when unused: every hook sits behind an
``is None`` test on attributes that default to ``None``, and checked runs
are timing-identical to unchecked ones (the oracle only observes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..caches.setassoc import CacheState
from ..common.errors import CoherenceViolation
from ..protocol.coherence import Action, Handler
from ..protocol.messages import MessageType as MT
from ..sim.watchdog import trace_tail
from .invariants import check_invariants, line_dump

__all__ = ["CoherenceOracle"]

#: Reply types that grant exclusive ownership.
_EXCLUSIVE_REPLIES = (MT.PUTX, MT.UPGRADE_ACK)


class CoherenceOracle:
    """Shadow value model + consistency checks for one machine."""

    def __init__(self, machine):
        self.machine = machine
        #: line -> version held by home memory (absent = initial, version 0).
        self.mem: Dict[int, int] = {}
        #: (node, line) -> version that node's cache holds.
        self.copy: Dict[Tuple[int, int], int] = {}
        #: message uid -> version an in-flight data reply carries.
        self.msgval: Dict[int, int] = {}
        #: (node, line) -> version stashed when a protocol invalidation
        #: popped the copy inside a handler, before the handler's actions
        #: (which tell us where the data went) are visible.
        self._invalidated: Dict[Tuple[int, int], int] = {}
        #: (node, line) -> version of the most recent fill (reads that
        #: consumed a fill whose line did not stay resident observe this).
        self.last_fill: Dict[Tuple[int, int], int] = {}
        #: (node, line) -> count of writes queued behind an outstanding
        #: miss; they perform, minting versions, at the exclusive fill.
        self.queued: Dict[Tuple[int, int], int] = {}
        #: (node, line) -> last version observed there (monotonicity).
        self.last_read: Dict[Tuple[int, int], int] = {}
        #: line -> perform-order version counter.
        self.seq: Dict[int, int] = {}
        #: (line, version) -> writer node, for violation dumps.
        self.writer_of: Dict[Tuple[int, int], int] = {}
        self.checked_ops = 0
        self.quiesce_checks = 0

    # -- wiring ------------------------------------------------------------------

    def attach(self, machine) -> None:
        """Hook every node's engine and CPU, and wrap the barrier so each
        completed episode runs the quiesce-point invariant walk."""
        for node in machine.nodes:
            node.engine.checker = self
            cpu = node.cpu
            cpu.oracle = self
            cpu._loop_cb = cpu._loop_checked
        sync = machine.sync
        inner_barrier = sync.barrier
        oracle = self

        def barrier_checked(barrier_id, participants=0):
            before = sync.barrier_episodes
            event = inner_barrier(barrier_id, participants)
            if sync.barrier_episodes > before:
                oracle.on_quiesce()
            return event

        sync.barrier = barrier_checked

    # -- violation plumbing ------------------------------------------------------

    def _fail(self, reason: str, line: Optional[int] = None,
              extra: Optional[dict] = None) -> None:
        dump = line_dump(self.machine, line)
        if line is not None:
            dump["shadow"] = self.describe_line(line)
        if extra:
            dump.update(extra)
        raise CoherenceViolation(
            reason, dump=dump,
            trace_tail=trace_tail(self.machine.env, line))

    def describe_line(self, line: int) -> dict:
        """Shadow state of one line, for dumps."""
        return {
            "mem": self.mem.get(line, 0),
            "copies": {n: v for (n, l), v in self.copy.items() if l == line},
            "queued": {n: c for (n, l), c in self.queued.items() if l == line},
            "last_writer": self.writer_of.get((line, self.seq.get(line, 0))),
        }

    # -- write perform -----------------------------------------------------------

    def _perform_write(self, node: int, line: int) -> int:
        version = self.seq.get(line, 0) + 1
        self.seq[line] = version
        self.writer_of[(line, version)] = node
        self.copy[(node, line)] = version
        self.checked_ops += 1
        return version

    def _assert_swmr(self, node: int, line: int, what: str) -> None:
        for other in self.machine.nodes:
            if other.node_id == node:
                continue
            state = other.cpu.cache.state_of(line)
            if state != CacheState.INVALID:
                self._fail(
                    f"SWMR violated at {what}: node {node} performs a write "
                    f"while node {other.node_id} still holds the line "
                    f"{state!r}", line,
                    extra={"writer": node, "survivor": other.node_id})

    # -- CPU-side hooks (retiring references) ------------------------------------

    def on_read(self, node: int, line: int) -> None:
        """A read retired at ``node``; pin and order the version it saw."""
        key = (node, line)
        version = self.copy.get(key)
        if version is None:
            version = self.last_fill.get(key, 0)
        prior = self.last_read.get(key)
        if prior is not None and version < prior:
            self._fail(
                f"per-location SC violated: node {node} read version "
                f"{version} (written by node "
                f"{self.writer_of.get((line, version), 'init')}) after "
                f"having observed version {prior}", line,
                extra={"reader": node, "saw": version, "had_seen": prior})
        self.last_read[key] = version
        self.checked_ops += 1

    def on_write_hit(self, node: int, line: int) -> None:
        """A write retired against a modified line: performs immediately."""
        self._assert_swmr(node, line, "a write hit on an exclusive line")
        version = self._perform_write(node, line)
        self.last_read[(node, line)] = version

    def on_write_queued(self, node: int, line: int) -> None:
        """A write missed (or merged into an outstanding miss): it performs
        when the exclusive fill arrives."""
        key = (node, line)
        self.queued[key] = self.queued.get(key, 0) + 1

    def on_fill(self, node: int, message, entry, shared: bool) -> None:
        """A reply crossed the processor bus at ``node``.  Consume the
        carried version, install the copy, and perform any queued writes
        when the grant is exclusive."""
        line = message.line_addr
        key = (node, line)
        version = self.msgval.pop(message.uid, None)
        if version is None:
            # An UPGRADE_ACK carries no data: the requester's existing copy
            # (or, degenerately, memory) is what it writes over.
            version = self.copy.get(key, self.mem.get(line, 0))
        self.last_fill[key] = version
        if shared:
            # A shared fill while someone holds the line modified means the
            # home replied around a dirty owner (stale data).
            for other in self.machine.nodes:
                if other.node_id == node:
                    continue
                if other.cpu.cache.state_of(line) == CacheState.DIRTY:
                    self._fail(
                        f"stale shared fill: node {node} received a PUT for "
                        f"a line node {other.node_id} holds modified", line,
                        extra={"reader": node, "owner": other.node_id})
            if entry.invalidate_on_fill:
                self.copy.pop(key, None)
            else:
                self.copy[key] = version
            return
        # Exclusive fill: all invalidation acks are in, so nobody else may
        # hold a copy; then the queued writes perform in program order.
        self._assert_swmr(node, line, "an exclusive fill")
        self.copy[key] = version
        pending = self.queued.pop(key, 0)
        if entry.needs_upgrade and message.mtype == MT.PUT:
            # Cannot happen (shared fills return above); defensive.
            pending = 0
        last = version
        for _ in range(pending):
            last = self._perform_write(node, line)
        if pending:
            self.last_read[key] = last
            # Reads merged into this miss observe the line *after* the
            # queued writes applied; the copy can be invalidated again (a
            # same-cycle replay at the home) before their wake callbacks
            # run, so the fill record must carry the post-write version.
            self.last_fill[key] = last
        if entry.invalidate_on_fill:
            self.copy.pop(key, None)

    def on_invalidate(self, node: int, line: int, prior: str) -> None:
        """A protocol invalidation popped ``node``'s copy; stash the version
        so the handler's actions can route it (a GETX against a dirty line
        forwards the invalidated copy to the new owner)."""
        version = self.copy.pop((node, line), None)
        if version is not None:
            self._invalidated[(node, line)] = version

    def on_evict(self, node: int, line: int, mtype: str, message) -> None:
        """The CPU evicted a line: a dirty victim's version rides the
        WRITEBACK home; a clean victim just drops its copy."""
        version = self.copy.pop((node, line), None)
        if mtype == MT.WRITEBACK and version is not None:
            self.msgval[message.uid] = version

    # -- quiesce points ----------------------------------------------------------

    def on_quiesce(self) -> None:
        """Barrier completed with every participant fenced: run the
        pending-tolerant invariant walk."""
        self.quiesce_checks += 1
        check_invariants(self.machine, strict=False, where="quiesce")

    # -- engine-side hook (value propagation along handler actions) --------------

    def on_actions(self, engine, actions: List[Action]) -> None:
        for action in actions:
            if action.checked:
                continue  # already stamped eagerly by a replay cascade
            action.checked = True
            stamp = _STAMPS.get(action.handler)
            if stamp is not None:
                stamp(self, engine, action)

    # -- per-handler stamping ----------------------------------------------------

    def _reply_of(self, engine, action: Action, line: int):
        """The data/grant reply an exclusive-granting home handler
        produced: delivered locally, sent remotely, or parked in the
        engine's pending-write table until the acks arrive."""
        if action.cpu_deliver is not None:
            return action.cpu_deliver
        for message in action.sends:
            if message.mtype in _EXCLUSIVE_REPLIES or message.mtype == MT.PUT:
                return message
        pending = engine._pending_writes.get(line)
        if pending is not None:
            return pending.reply
        return None

    def _stamp(self, message, version: int) -> None:
        if message is not None:
            self.msgval[message.uid] = version

    def _get_home_clean(self, engine, action: Action) -> None:
        line = action.message.line_addr
        self._stamp(self._reply_of(engine, action, line),
                    self.mem.get(line, 0))

    def _get_home_dirty_local(self, engine, action: Action) -> None:
        # Home's own cache was downgraded (copy survives); memory absorbs.
        line = action.message.line_addr
        version = self.copy.get((engine.node_id, line), self.mem.get(line, 0))
        self.mem[line] = version
        self._stamp(self._reply_of(engine, action, line), version)

    def _getx_home_dirty_local(self, engine, action: Action) -> None:
        # Home's own cache was invalidated inside the handler; the stash
        # holds the version, memory absorbs it, the new owner receives it.
        line = action.message.line_addr
        version = self._invalidated.pop((engine.node_id, line), None)
        if version is None:
            version = self.mem.get(line, 0)
        self.mem[line] = version
        self._stamp(self._reply_of(engine, action, line), version)

    def _getx_home_clean(self, engine, action: Action) -> None:
        line = action.message.line_addr
        self._stamp(self._reply_of(engine, action, line),
                    self.mem.get(line, 0))

    def _get_owner(self, engine, action: Action) -> None:
        # Forwarded GET at the owner: NAK if the line left; otherwise the
        # downgraded copy rides both the sharing writeback and the reply.
        if action.sends and action.sends[0].mtype == MT.NAK:
            return
        line = action.message.line_addr
        version = self.copy.get((engine.node_id, line), self.mem.get(line, 0))
        for message in action.sends:
            self._stamp(message, version)

    def _getx_owner(self, engine, action: Action) -> None:
        if action.sends and action.sends[0].mtype == MT.NAK:
            return
        line = action.message.line_addr
        version = self._invalidated.pop((engine.node_id, line), None)
        if version is None:
            version = self.mem.get(line, 0)
        for message in action.sends:
            if message.mtype == MT.PUTX:
                self._stamp(message, version)

    def _absorb_writeback(self, engine, action: Action) -> None:
        line = action.message.line_addr
        version = self.msgval.pop(action.message.uid, None)
        if version is not None:
            self.mem[line] = version

    def _forward_writeback(self, engine, action: Action) -> None:
        # Requester-side relay of a WRITEBACK/hint to a remote home: the
        # version moves from the incoming to the outgoing message.
        version = self.msgval.pop(action.message.uid, None)
        if version is not None and action.sends:
            self.msgval[action.sends[0].uid] = version


_STAMPS = {
    Handler.GET_HOME_CLEAN: CoherenceOracle._get_home_clean,
    Handler.GET_HOME_DIRTY_LOCAL: CoherenceOracle._get_home_dirty_local,
    Handler.GETX_HOME_DIRTY_LOCAL: CoherenceOracle._getx_home_dirty_local,
    Handler.GETX_HOME_CLEAN: CoherenceOracle._getx_home_clean,
    Handler.GET_OWNER: CoherenceOracle._get_owner,
    Handler.GETX_OWNER: CoherenceOracle._getx_owner,
    Handler.SHARING_WB: CoherenceOracle._absorb_writeback,
    Handler.WRITEBACK_LOCAL: CoherenceOracle._absorb_writeback,
    Handler.WRITEBACK_REMOTE: CoherenceOracle._absorb_writeback,
    Handler.WRITEBACK_FORWARD: CoherenceOracle._forward_writeback,
}
