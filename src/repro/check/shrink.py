"""Greedy failure shrinking and replayable reproducer artifacts.

When a checked run fails, the sweep hands the failing
:class:`~repro.check.workload.CheckReport` to :func:`shrink`, which
searches for a smaller spec that still fails *the same way* (same
failure kind): halve the per-processor op count, then the node count,
then the contended-line set, to a greedy fixed point under a bounded
re-run budget.  Because ``randmem`` is deterministic in the spec, the
shrunk spec IS the reproducer — :func:`save_reproducer` writes it (plus
the violation details) as a JSON artifact that :func:`replay` re-runs
bit-for-bit.
"""

from __future__ import annotations

import json
import os
from typing import Optional, Tuple

from .workload import CheckReport, CheckSpec, run_check

__all__ = ["shrink", "save_reproducer", "load_reproducer", "replay",
           "SCHEMA", "MIN_OPS"]

SCHEMA = "repro-check-repro/1"

#: floors for the shrink dimensions — below these the traffic can no
#: longer express a coherence race at all.
MIN_OPS = 8
MIN_NODES = 2
MIN_LINES = 1


def _same_failure(candidate: CheckReport, reference: CheckReport) -> bool:
    return (not candidate.ok
            and candidate.failure_kind == reference.failure_kind)


def shrink(failed: CheckReport, budget: int = 24) -> Tuple[CheckReport, int]:
    """Greedily minimise a failing spec; returns (best report, attempts).

    Each pass tries one halving step per dimension in priority order
    (ops, then nodes, then lines) and restarts from the first step that
    still reproduces; the loop ends at a fixed point or when ``budget``
    re-runs are spent.  The result is the original report unchanged if
    nothing smaller reproduces.
    """
    if failed.ok:
        raise ValueError("shrink() wants a failing report")
    best = failed
    attempts = 0
    improved = True
    while improved and attempts < budget:
        improved = False
        spec = best.spec
        steps = []
        if spec.ops > MIN_OPS:
            steps.append({"ops": max(MIN_OPS, spec.ops // 2)})
        if spec.nodes > MIN_NODES:
            steps.append({"nodes": max(MIN_NODES, spec.nodes // 2)})
        if spec.lines > MIN_LINES:
            steps.append({"lines": max(MIN_LINES, spec.lines // 2)})
        for change in steps:
            if attempts >= budget:
                break
            attempts += 1
            candidate = run_check(spec.with_changes(**change))
            if _same_failure(candidate, failed):
                best = candidate
                improved = True
                break
    return best, attempts


# -- artifacts -------------------------------------------------------------------


def save_reproducer(shrunk: CheckReport, original: CheckSpec,
                    attempts: int, out_dir: str) -> str:
    """Write a replayable JSON reproducer; returns its path."""
    spec = shrunk.spec
    os.makedirs(out_dir, exist_ok=True)
    name = (f"check-repro-{spec.kind}-{spec.protocol}-seed{spec.seed}"
            f"-{shrunk.failure_kind or 'fail'}.json")
    path = os.path.join(out_dir, name)
    payload = {
        "schema": SCHEMA,
        "spec": spec.to_dict(),
        "original_spec": original.to_dict(),
        "attempts": attempts,
        "failure_kind": shrunk.failure_kind,
        "error_type": shrunk.error_type,
        "error": shrunk.error,
        "violation": shrunk.violation,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_reproducer(path: str) -> CheckSpec:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, found {schema!r}")
    return CheckSpec.from_dict(payload["spec"])


def replay(path: str) -> CheckReport:
    """Re-run a saved reproducer and return the fresh report."""
    return run_check(load_reproducer(path))
