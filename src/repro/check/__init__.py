"""Coherence model checker: random traffic, oracles, invariants, shrinking.

Three layers (see docs/robustness.md, "Model checking"):

1. :mod:`repro.apps.randmem` drives seeded concurrent loads / stores /
   lock RMWs over a small Zipf-skewed contended line set, while the
   :class:`~repro.check.oracle.CoherenceOracle` shadows every performed
   write with a version token and asserts SWMR and per-location SC at
   each retiring access.
2. :mod:`repro.check.invariants` cross-validates directory state against
   cache tags, MSHRs and the link store at every barrier quiesce point
   (pending-tolerant) and at end of run (strict, via
   :meth:`repro.machine.Machine.assert_quiesced`).
3. :mod:`repro.check.workload` sweeps seeds x machine shapes x protocols
   x fault plans x fusion modes, and :mod:`repro.check.shrink` reduces
   any failure to a minimal replayable JSON reproducer.

Everything here is strictly observational: with no oracle attached the
simulation is byte-identical to an unchecked run (the golden matrix
enforces this).
"""

from .invariants import check_invariants, line_dump
from .oracle import CoherenceOracle
from .shrink import load_reproducer, replay, save_reproducer, shrink
from .workload import (
    KINDS, PROTOCOLS, CheckReport, CheckSpec, iter_specs, run_check,
)

__all__ = [
    "CoherenceOracle",
    "CheckReport",
    "CheckSpec",
    "KINDS",
    "PROTOCOLS",
    "check_invariants",
    "iter_specs",
    "line_dump",
    "load_reproducer",
    "replay",
    "run_check",
    "save_reproducer",
    "shrink",
]
