"""The MAGIC node controller (Figure 2.2)."""

from .chip import MagicChip, SPECULATIVE_TYPES
from .costmodel import TableCostModel
from .mdc import MagicDataCache, MagicInstructionCache

__all__ = ["MagicChip", "SPECULATIVE_TYPES", "TableCostModel",
           "MagicDataCache", "MagicInstructionCache"]
