"""The MAGIC data cache (MDC) and instruction cache.

Protocol code and data live in main memory (Section 2); the PP reaches the
directory headers and sharing-list links through the 64 KB, 2-way, 128-byte-
line MDC.  An MDC miss costs the PP 29 cycles and consumes memory bandwidth;
a dirty victim adds a memory writeback.  Directory operations are
read-modify-writes, so MDC write misses are ~zero (Section 5.2) — every
access here is modeled as a read that leaves the line dirty.

The MAGIC instruction cache (32 KB) sees only cold misses for the 14.8 KB
protocol code, so it is modeled as a per-handler cold-miss counter with no
timing effect beyond the first invocations.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..caches.setassoc import CacheState, SetAssocCache
from ..common.params import CacheConfig, MagicCacheConfig

__all__ = ["MagicDataCache", "MagicInstructionCache"]


class MagicDataCache:
    """Presence/dirtiness model of the MDC over protocol-memory addresses."""

    def __init__(self, config: MagicCacheConfig):
        self.enabled = config.enabled
        geometry = CacheConfig(
            size_bytes=config.mdc_size_bytes,
            associativity=config.mdc_associativity,
            line_bytes=config.mdc_line_bytes,
            mshrs=1,
        )
        self._cache = SetAssocCache(geometry, name="mdc")
        self.accesses = 0
        self.read_misses = 0
        self.writeback_victims = 0

    @property
    def miss_rate(self) -> float:
        return self.read_misses / self.accesses if self.accesses else 0.0

    def access(self, addr: int) -> Tuple[bool, bool]:
        """Read-modify-write one protocol-memory address.

        Returns ``(miss, victim_writeback)``.  When the MDC is disabled
        (ideal machine / perfect-cache ablation) everything hits.
        """
        if not self.enabled:
            return False, False
        return self._access_line(self._cache.line_address(addr))

    def _access_line(self, line: int) -> Tuple[bool, bool]:
        """RMW one resident-or-filled MDC line.  The hit path is a single
        fused dict operation (state check + MRU + dirty) in the cache."""
        self.accesses += 1
        if self._cache.rmw_touch(line):
            return False, False
        self.read_misses += 1
        victim = self._cache.fill(line, CacheState.DIRTY)
        victim_dirty = victim is not None and victim[1] == CacheState.DIRTY
        if victim_dirty:
            self.writeback_victims += 1
        return True, victim_dirty

    def access_sequence(self, addrs: List[int]) -> Tuple[int, int]:
        """Access several addresses; returns (misses, victim writebacks).
        Consecutive accesses to the same MDC line count once, as the handler
        keeps the header in registers."""
        if not self.enabled:
            return 0, 0
        misses = 0
        writebacks = 0
        last_line = None
        shift = self._cache.line_shift
        for addr in addrs:
            line = (addr >> shift) << shift
            if line == last_line:
                continue
            last_line = line
            miss, wb = self._access_line(line)
            misses += miss          # bools are 0/1
            writebacks += wb
        return misses, writebacks


class MagicInstructionCache:
    """Cold-miss-only model: the protocol code (14.8 KB) fits in the 32 KB
    MAGIC instruction cache, so only first-touch misses occur."""

    def __init__(self, config: MagicCacheConfig):
        self.size_bytes = config.icache_size_bytes
        self._seen: Set[str] = set()
        self.cold_misses = 0
        self.fetches = 0

    def fetch(self, handler: str) -> bool:
        """Record a handler fetch; returns True on a (cold) miss."""
        self.fetches += 1
        if handler in self._seen:
            return False
        self._seen.add(handler)
        self.cold_misses += 1
        return True
