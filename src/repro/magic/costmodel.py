"""The table-driven PP cost model.

Maps a protocol :class:`~repro.protocol.coherence.Action` to a handler
occupancy in cycles, using the Table 3.4 numbers in
:class:`~repro.common.params.HandlerCosts`.  The emulator backend
(:mod:`repro.pp`) derives the same quantities by executing PP-assembly
handlers; the two backends are cross-validated in tests.

The Section 5.3 ablations (single-issue PP, no special instructions) are
expressed as multiplicative slowdowns of every handler, with factors taken
from the measured dual-issue efficiency (Table 5.2) and the DLX substitution
costs (Table 5.3).
"""

from __future__ import annotations

from ..common.params import HandlerCosts, MachineConfig
from ..protocol.coherence import Action, Handler

__all__ = ["TableCostModel", "DUAL_ISSUE_FACTOR", "SPECIAL_INSTR_FACTOR"]

# Dynamic dual-issue efficiency is ~1.53 (Table 5.2): a single-issue PP
# executes the same instruction stream in ~1.53x the cycles.
DUAL_ISSUE_FACTOR = 1.53
# 38% of ALU/branch instructions are bitfield/branch-on-bit (Table 5.2) and
# each costs 2-5 DLX instructions to substitute (Table 5.3); the measured
# handler-level inflation is ~1.35.
SPECIAL_INSTR_FACTOR = 1.35


class TableCostModel:
    """Handler occupancy lookup for the fast simulation backend."""

    def __init__(self, config: MachineConfig):
        self.costs = config.handler_costs
        scale = 1.0
        if not config.pp_dual_issue:
            scale *= DUAL_ISSUE_FACTOR
        if not config.pp_special_instructions:
            scale *= SPECIAL_INSTR_FACTOR
        self.scale = scale

    def cost(self, action: Action) -> int:
        """PP occupancy in cycles for one handler invocation, excluding MDC
        miss penalties (charged separately by the chip)."""
        c = self.costs
        handler = action.handler
        if handler == Handler.MISS_FORWARD:
            base = c.forward_to_home
        elif handler == Handler.GET_HOME_CLEAN:
            base = c.read_from_memory
        elif handler in (Handler.GET_HOME_DIRTY_LOCAL, Handler.GETX_HOME_DIRTY_LOCAL):
            # Retrieve from the local processor cache, reply, and update
            # memory + directory.
            base = c.retrieve_from_proc_cache + c.local_writeback
        elif handler in (Handler.GET_LOCAL_FORWARD, Handler.GETX_LOCAL_FORWARD):
            base = c.forward_to_home
        elif handler in (Handler.GET_HOME_FORWARD, Handler.GETX_HOME_FORWARD):
            base = c.forward_home_to_dirty
        elif handler in (Handler.GET_OWNER, Handler.GETX_OWNER):
            base = c.retrieve_from_proc_cache
        elif handler in (Handler.GETX_HOME_CLEAN, Handler.UPGRADE_HOME):
            base = c.write_from_memory + c.per_invalidation * action.n_invals
        elif handler == Handler.SHARING_WB:
            base = c.sharing_writeback
        elif handler == Handler.OWNERSHIP_XFER:
            base = c.remote_writeback
        elif handler == Handler.REPLY_TO_PROC:
            base = c.reply_net_to_proc
        elif handler == Handler.INVAL_RECEIVE:
            base = c.invalidation_receive
        elif handler == Handler.ACK_RECEIVE:
            base = c.ack_receive
        elif handler == Handler.WRITEBACK_LOCAL:
            base = c.local_writeback
        elif handler == Handler.WRITEBACK_REMOTE:
            base = c.remote_writeback
        elif handler in (Handler.WRITEBACK_FORWARD, Handler.HINT_FORWARD):
            base = c.forward_to_home
        elif handler == Handler.HINT_LOCAL:
            base = c.local_replacement_hint
        elif handler == Handler.HINT_REMOTE:
            position = action.list_position
            if position is None or position <= 1:
                base = c.remote_hint_only_sharer
            else:
                base = c.remote_hint_base + c.remote_hint_per_link * position
        elif handler == Handler.NAK_HOME:
            base = 4
        elif handler == Handler.DEFERRED:
            base = 3
        else:
            raise KeyError(f"no cost for handler {handler!r}")
        return max(1, int(round(base * self.scale)))
