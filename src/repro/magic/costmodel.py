"""The table-driven PP cost model.

Maps a protocol :class:`~repro.protocol.coherence.Action` to a handler
occupancy in cycles, using the Table 3.4 numbers in
:class:`~repro.common.params.HandlerCosts`.  The emulator backend
(:mod:`repro.pp`) derives the same quantities by executing PP-assembly
handlers; the two backends are cross-validated in tests.

The Section 5.3 ablations (single-issue PP, no special instructions) are
expressed as multiplicative slowdowns of every handler, with factors taken
from the measured dual-issue efficiency (Table 5.2) and the DLX substitution
costs (Table 5.3).
"""

from __future__ import annotations

from ..common.params import HandlerCosts, MachineConfig
from ..protocol.coherence import Action, Handler

__all__ = ["TableCostModel", "DUAL_ISSUE_FACTOR", "SPECIAL_INSTR_FACTOR"]

# Dynamic dual-issue efficiency is ~1.53 (Table 5.2): a single-issue PP
# executes the same instruction stream in ~1.53x the cycles.
DUAL_ISSUE_FACTOR = 1.53
# 38% of ALU/branch instructions are bitfield/branch-on-bit (Table 5.2) and
# each costs 2-5 DLX instructions to substitute (Table 5.3); the measured
# handler-level inflation is ~1.35.
SPECIAL_INSTR_FACTOR = 1.35


class TableCostModel:
    """Handler occupancy lookup for the fast simulation backend."""

    __slots__ = ("costs", "scale", "handler_scale", "_flat")

    def __init__(self, config: MachineConfig):
        self.costs = config.handler_costs
        scale = 1.0
        if not config.pp_dual_issue:
            scale *= DUAL_ISSUE_FACTOR
        if not config.pp_special_instructions:
            scale *= SPECIAL_INSTR_FACTOR
        self.scale = scale
        # Per-handler causal-profiling factors (``harness whatif``); None
        # keeps every cost expression identical to the unscaled model.
        factors = getattr(config, "handler_scale", None)
        self.handler_scale = dict(factors) if factors else None
        # Most handlers have a fixed occupancy, so their scaled cost is
        # precomputed into a flat lookup; only the invalidation- and
        # list-position-dependent handlers are computed per call.
        c = self.costs
        bases = {
            Handler.MISS_FORWARD: c.forward_to_home,
            Handler.GET_HOME_CLEAN: c.read_from_memory,
            # Retrieve from the local processor cache, reply, and update
            # memory + directory.
            Handler.GET_HOME_DIRTY_LOCAL: c.retrieve_from_proc_cache + c.local_writeback,
            Handler.GETX_HOME_DIRTY_LOCAL: c.retrieve_from_proc_cache + c.local_writeback,
            Handler.GET_LOCAL_FORWARD: c.forward_to_home,
            Handler.GETX_LOCAL_FORWARD: c.forward_to_home,
            Handler.GET_HOME_FORWARD: c.forward_home_to_dirty,
            Handler.GETX_HOME_FORWARD: c.forward_home_to_dirty,
            Handler.GET_OWNER: c.retrieve_from_proc_cache,
            Handler.GETX_OWNER: c.retrieve_from_proc_cache,
            Handler.SHARING_WB: c.sharing_writeback,
            Handler.OWNERSHIP_XFER: c.remote_writeback,
            Handler.REPLY_TO_PROC: c.reply_net_to_proc,
            Handler.INVAL_RECEIVE: c.invalidation_receive,
            Handler.ACK_RECEIVE: c.ack_receive,
            Handler.WRITEBACK_LOCAL: c.local_writeback,
            Handler.WRITEBACK_REMOTE: c.remote_writeback,
            Handler.WRITEBACK_FORWARD: c.forward_to_home,
            Handler.HINT_FORWARD: c.forward_to_home,
            Handler.HINT_LOCAL: c.local_replacement_hint,
            Handler.NAK_HOME: 4,
            Handler.DEFERRED: 3,
            # Fault-injected retry (repro.faults): re-issue the request, same
            # work as the original requester-side forward.
            Handler.RETRY_BOUNCE: c.forward_to_home,
        }
        if self.handler_scale:
            factors = self.handler_scale
            self._flat = {
                handler: max(1, int(round(
                    base * scale * factors.get(handler, 1.0))))
                for handler, base in bases.items()
            }
        else:
            self._flat = {
                handler: max(1, int(round(base * scale)))
                for handler, base in bases.items()
            }

    def cost(self, action: Action) -> int:
        """PP occupancy in cycles for one handler invocation, excluding MDC
        miss penalties (charged separately by the chip)."""
        handler = action.handler
        flat = self._flat.get(handler)
        if flat is not None:
            return flat
        c = self.costs
        if handler in (Handler.GETX_HOME_CLEAN, Handler.UPGRADE_HOME):
            base = c.write_from_memory + c.per_invalidation * action.n_invals
        elif handler == Handler.HINT_REMOTE:
            position = action.list_position
            if position is None or position <= 1:
                base = c.remote_hint_only_sharer
            else:
                base = c.remote_hint_base + c.remote_hint_per_link * position
        else:
            raise KeyError(f"no cost for handler {handler!r}")
        factor = self.scale
        if self.handler_scale:
            factor *= self.handler_scale.get(handler, 1.0)
        return max(1, int(round(base * factor)))
