"""The MAGIC node controller.

Models the control macropipeline of Figure 2.2: messages from the processor
interface (PI) and network interface (NI) are selected by the *inbox*
(1-cycle arbitration), looked up in the *jump table* (2 cycles, optionally
initiating a speculative memory read), and handed to the *protocol processor*
(PP), which runs one handler at a time.  Handler semantics come from the
shared :class:`~repro.protocol.coherence.NodeProtocolEngine`; handler
occupancy comes from a pluggable cost backend (table-driven or PP-emulator-
derived).  Outgoing messages pass through the outbox (1 cycle) into bounded
interface queues; data-bearing messages wait for their data buffer to fill
before the interface transmits them, which is how PP processing overlaps the
memory access (Figure 3.1).

The inbox, PP and outbound PI run in callback/state-machine form directly on
the event kernel: every timing edge that the coroutine form expressed as a
``yield`` is a scheduled bare callback, protocol handlers dispatch as plain
calls through an :class:`_ActionRunner` that carries the per-message
execution state, and occupancy (``pp_busy``, handler stats, tracer spans)
is accounted explicitly at the same simulated instants as before.  Dispatch
order — and therefore every simulated result — is identical to the original
process form.  Cold block-transfer flows stay as generators driven by
:class:`~repro.sim.engine.Subtask`.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Optional

from ..common.params import MachineConfig, fusion_from_env
from ..memory.controller import MemoryController, MemoryRequest, SubmitWhenReady
from ..network.mesh import NetworkPort
from ..msgpass.transfer import (
    XFER_DONE_COST, XFER_PER_LINE_COST, XFER_RECEIVE_COST, XFER_SETUP_COST,
)
from ..protocol.coherence import Action, NodeProtocolEngine
from ..protocol.messages import (
    FREE_LIST as _MSG_POOL,
    Message,
    MessageType as MT,
    RECYCLING as _MSG_RECYCLING,
    TRANSFER_TYPES,
)
from ..sim.engine import Environment, Event, NO_ARG, PENDING, Subtask
from ..sim.queues import BoundedQueue, CountingResource
from ..stats.breakdown import NodeStats
from .mdc import MagicDataCache, MagicInstructionCache

__all__ = ["MagicChip", "SPECULATIVE_TYPES"]

#: Message types for which the jump table initiates a speculative memory read
#: (requests that may be satisfied from local memory).
SPECULATIVE_TYPES = frozenset({MT.GET, MT.GETX, MT.REMOTE_GET, MT.REMOTE_GETX})

#: Macro-op fusion gate switches.  Each fusion family is individually
#: revertible: a golden-matrix failure flips one to False without losing the
#: other (see DESIGN.md §5h).  ``REPRO_FUSION=off`` disables both at runtime.
_FUSE_SENDS = True
_FUSE_DELIVER = True

# Message retirement (see repro.protocol.messages.FREE_LIST): only meaningful
# when the refcount proof is available.
_getrefcount = getattr(sys, "getrefcount", None) if _MSG_RECYCLING else None


class _ArbOnce:
    """One-shot inbox arbitration guard: when the first of the two
    outstanding gets fires, schedules the inbox's re-arbitration at exactly
    the ready position the old ``_EitherReady`` composite's trigger
    occupied.  The second child's dispatch finds the guard spent."""

    __slots__ = ("env", "callback", "fired")

    def __init__(self, env: Environment, callback: Callable[[], None]):
        self.env = env
        self.callback = callback
        self.fired = False

    def __call__(self, _event) -> None:
        if not self.fired:
            self.fired = True
            self.env._ready.append((self.callback, NO_ARG))


class _ActionRunner:
    """Runs one message's protocol actions on the PP as a callback chain.

    This is the old ``_execute`` coroutine with every ``yield`` turned into a
    scheduled continuation; the generator frame's locals live in slots.  One
    runner exists per message with actions (and per replay batch) — the PP's
    serial runner and a replay runner spawned by the outbound PI may
    interleave their memory/buffer waits, which is why this state cannot live
    on the chip itself.
    """

    __slots__ = (
        "chip", "actions", "idx", "n", "spec", "incoming_buffer", "done_cb",
        "action", "start", "trace_ctx", "cost", "wb_left", "miss_left",
        "mdc_stall_start", "fill", "req", "wreq", "data_ready", "send_idx",
        "pending_done", "_fuse_rel", "_fuse_release",
    )

    def __init__(self, chip: "MagicChip", actions, spec, incoming_buffer,
                 done_cb) -> None:
        self.chip = chip
        self.actions = actions
        self.idx = 0
        self.n = len(actions)
        self.spec = spec
        self.incoming_buffer = incoming_buffer
        self.done_cb = done_cb
        self.data_ready = None

    @property
    def name(self) -> str:  # watchdog stall-diagnosis label
        return f"pp[{self.chip.node_id}]"

    def run(self) -> None:
        self._action_start()

    # -- per-action chain: MDC directory traffic ---------------------------------

    def _action_start(self) -> None:
        chip = self.chip
        action = self.actions[self.idx]
        self.action = action
        self.start = chip.env._now
        self.trace_ctx = (action.message.requester, action.message.line_addr) \
            if chip.tracer is not None else None
        chip.icache.fetch(action.handler)
        # Directory accesses go through the MDC; misses stall the PP and
        # consume memory bandwidth.
        misses, writebacks = chip.mdc.access_sequence(action.dir_addrs)
        self.miss_left = misses
        self.wb_left = writebacks
        if not (misses or writebacks) and chip._fusion and self._try_fuse():
            return
        self._wb_next()

    def _wb_next(self) -> None:
        chip = self.chip
        if self.wb_left:
            self.wb_left -= 1
            victim = chip.memory.write(self.action.message.line_addr)
            victim.trace_ctx = self.trace_ctx
            chip.memory.submit_cb(victim, self._wb_next)
            return
        if self.miss_left:
            self.mdc_stall_start = chip.env._now
            self._fill_next()
            return
        self._run_handler()

    def _fill_next(self) -> None:
        chip = self.chip
        if self.miss_left:
            self.miss_left -= 1
            fill = chip.memory.read(self.action.message.line_addr)
            fill.trace_ctx = self.trace_ctx
            self.fill = fill
            chip.memory.submit_cb(fill, self._fill_submitted)
            return
        chip.stats.pp_mdc_stall += chip.env._now - self.mdc_stall_start
        self._run_handler()

    def _fill_submitted(self) -> None:
        event = self.fill.data_event
        self.fill = None
        callbacks = event.callbacks
        if callbacks is None:
            self.chip.env._ready.append((self._fill_data, event))
        else:
            callbacks.append(self._fill_data)

    def _fill_data(self, _event) -> None:
        chip = self.chip
        extra = chip.lat.mdc_miss_penalty - chip.lat.memory_access
        if extra > 0:
            chip.env.call_later(extra, self._fill_next)
        else:
            self._fill_next()

    # -- macro-op fusion (contention-free fast path) ------------------------------

    def _try_fuse(self) -> bool:
        """Route this action onto the fused chain: one calendar entry per
        pipeline *instant*, with the queue handoffs, event allocations, and
        trampoline hops between those instants all elided.

        Static eligibility mirrors every branch the stepwise chain could
        take before its first queue interaction: the action must be alone
        (single-action batch), free of observers (fault plan, tracer,
        metrics, watchdog — they hook intermediate instants), free of
        blocking resources (no memory read/write, no processor-cache
        retrieve), limited to one outgoing message (so the fused send never
        sits in the NI queue and FIFO order with concurrent producers is
        preserved by construction), and any attached data must already be
        resolved.  *Dynamic* contention is not checked here: the chain
        re-checks the NI/PO at each checkpoint instant and rejoins the
        stepwise machine mid-flight — at the identical instant and calendar
        position — the moment a unit turns out busy.
        """
        chip = self.chip
        if (self.n != 1 or chip.faults is not None or chip.tracer is not None
                or chip.metrics is not None
                or chip.env._watchdog is not None):
            return False
        action = self.action
        if action.writes_memory or action.cache_retrieve or action.send_delay:
            return False
        sends = action.sends
        n_sends = len(sends)
        if n_sends:
            if n_sends > 1 or not _FUSE_SENDS:
                return False
            if sends[0].dst == chip.node_id:
                return False  # stepwise raises; keep that diagnosable
        elif action.cpu_deliver is None or not _FUSE_DELIVER:
            # No outbound tail at all: stepwise is already a single calendar
            # entry (the handler cost), so fusing would save nothing.
            return False
        if action.needs_memory_data:
            spec = self.spec
            if (spec is None or action.memory_stale
                    or spec.data_event._value is PENDING):
                return False  # a blocking memory read (or data wait) follows
        net = chip.net_port._network
        if (net.faults is not None or net.tracer is not None
                or net.metrics is not None):
            return False
        cost = chip.cost_model.cost(action)
        chip.stats.note_handler(action.handler, cost)
        self.cost = cost
        chip.env.call_later(cost, self._fuse_after_cost)
        return True

    def _fuse_after_cost(self) -> None:
        """The stepwise ``_after_cost`` instant (handler cost elapsed)."""
        chip = self.chip
        action = self.action
        lat = chip.lat
        if action.cache_touched:
            chip._cache_busy(lat.cache_state_retrieve)
        spec = self.spec
        if action.needs_memory_data:
            self.data_ready = spec.data_event
            self.spec = None
        elif spec is not None:
            # Speculative read unused by this action: same bookkeeping as
            # ``_resolve_spec`` at the same instant.
            spec.useless = True
            chip.stats.spec_useless += 1
            self.spec = None
        self.send_idx = 0
        if action.sends:
            chip.env.call_later(lat.outbox, self._fuse_enq)
        else:
            chip.env.call_later(lat.outbox, self._fuse_d0)

    def _fuse_enq(self) -> None:
        """Checkpoint at the stepwise ``_send_after_outbox`` instant.

        Commit to the fused send only if the NI is verifiably idle *right
        now* — empty queue, no bundle in flight, and a parked getter (the
        getter doubles as the "unit is idle" flag).  Anything else means
        concurrent traffic claimed the unit during the outbox latency, and
        the stepwise method is invoked directly: same instant, same calendar
        position, so results are identical to never having fused at all.
        """
        chip = self.chip
        port = chip.net_port
        oq = port.out_queue
        mtype = self.action.message.mtype
        if oq._items or not oq._getters or port._out_bundle is not None:
            counts = chip.dispatch_stepwise
            counts[mtype] = counts.get(mtype, 0) + 1
            self._send_after_outbox()
            return
        counts = chip.dispatch_fused
        counts[mtype] = counts.get(mtype, 0) + 1
        oq._getters.popleft()   # NI occupied for the fused window
        oq.total_puts += 1
        if self.incoming_buffer and self.action.sends[0].carries_data:
            self._fuse_rel = True   # this send forwards the incoming buffer
            self.incoming_buffer = False
        else:
            self._fuse_rel = False
        chip.env._ready.append((self._fuse_send_hop, NO_ARG))

    def _fuse_send_hop(self) -> None:
        """Ready hop at the enqueue instant, merging the NI pickup
        (``_on_out_bundle`` — the data source is resolved, so it reduces to
        one ``call_later``) with the PP's ``_send_sent`` advance.  The two
        stepwise dispatches are adjacent in the ready queue, so one hop
        carries both side-effect sequences in their original order."""
        chip = self.chip
        env = chip.env
        env.call_later(chip.lat.ni_outbound, self._fuse_launch)
        if self.action.cpu_deliver is not None:
            env.call_later(chip.lat.outbox,
                           self._fuse_d0 if _FUSE_DELIVER
                           else self._deliver_after_outbox)
        else:
            self._fused_finish()

    def _fuse_launch(self) -> None:
        """The stepwise ``_out_fault_step`` instant: launch the message,
        free a forwarded buffer at the ready position its done-event
        dispatch occupied, and re-arm the NI — which picks up any traffic
        that queued behind the fused window, preserving FIFO order."""
        chip = self.chip
        port = chip.net_port
        port._network._launch(self.action.sends[0])
        if self._fuse_rel:
            chip.env._ready.append((chip._bufrel_cb, NO_ARG))
        port._outbound_next()
        if _getrefcount is not None and self.action.cpu_deliver is None:
            # Last calendar entry of the sends-only chain: the incoming
            # message is dead unless something beyond the enumerated
            # references (the action's attribute, our local, getrefcount's
            # argument) still holds it — e.g. the outbound message IS the
            # incoming one, in which case the network owns it and the count
            # stays high, skipping the recycle.
            message = self.action.message
            if _getrefcount(message) == 3:
                _MSG_POOL.append(message)

    def _fuse_d0(self) -> None:
        """Checkpoint at the stepwise ``_deliver_after_outbox`` instant —
        the same commit-or-rejoin discipline as ``_fuse_enq``, for the
        outbound PI."""
        chip = self.chip
        poq = chip.pi_out_q
        deliver_only = not self.action.sends
        if poq._items or not poq._getters or chip._po_bundle is not None:
            if deliver_only:
                mtype = self.action.message.mtype
                counts = chip.dispatch_stepwise
                counts[mtype] = counts.get(mtype, 0) + 1
            self._deliver_after_outbox()
            return
        if deliver_only:
            mtype = self.action.message.mtype
            counts = chip.dispatch_fused
            counts[mtype] = counts.get(mtype, 0) + 1
        poq._getters.popleft()  # outbound PI occupied for the fused window
        poq.total_puts += 1
        self._fuse_release = self.incoming_buffer
        self.incoming_buffer = False
        chip.env._ready.append((self._fuse_po_hop, NO_ARG))

    def _fuse_po_hop(self) -> None:
        """Ready hop at the deliver-enqueue instant, merging the PO pickup
        (``_po_on_bundle`` → ``_po_after_wait``, data resolved) with the PP
        epilogue (``_finish``) — adjacent stepwise dispatches."""
        chip = self.chip
        chip.env.call_later(chip._lat_po_out, self._fused_deliver)
        self._fused_finish()

    def _fused_finish(self) -> None:
        """PP epilogue at the instant stepwise ``_finish`` would run (the
        observer branches are statically absent: fusion required them off)."""
        chip = self.chip
        if self.incoming_buffer:
            chip.data_buffers.release()
            self.incoming_buffer = False
        chip.stats.pp_busy += chip.env._now - self.start
        done_cb = self.done_cb
        if done_cb is not None:
            done_cb()

    def _fused_deliver(self) -> None:
        """Outbound-PI epilogue at the instant stepwise ``_po_deliver`` would
        run: deliver to the CPU, free a forwarded buffer at the ready
        position its done-event dispatch occupied, replay deferred work,
        re-arm the outbound PI."""
        chip = self.chip
        message = self.action.cpu_deliver
        chip._cpu_deliver(message)
        if self._fuse_release:
            chip.env._ready.append((chip._bufrel_cb, NO_ARG))
        actions = chip.engine.replay_stable(message.line_addr)
        if actions:
            runner = _ActionRunner(chip, actions, None, False, None)
            chip.env.call_soon(runner.run)  # mirrors the replay process start
        chip._po_next()
        if _getrefcount is not None:
            # Last calendar entry of any deliver-bearing chain: retire the
            # delivered message and the incoming message once the enumerated
            # references (action attributes, our locals, getrefcount's
            # argument) are provably the only ones left.  REPLY_TO_PROC
            # delivers the incoming message itself, so the aliased case
            # counts both attributes and both locals against one object.
            incoming = self.action.message
            if message is incoming:
                if _getrefcount(message) == 5:
                    _MSG_POOL.append(message)
            else:
                if _getrefcount(message) == 3:
                    _MSG_POOL.append(message)
                if _getrefcount(incoming) == 3:
                    _MSG_POOL.append(incoming)

    # -- handler execution --------------------------------------------------------

    def _run_handler(self) -> None:
        chip = self.chip
        action = self.action
        counts = chip.dispatch_stepwise
        mtype = action.message.mtype
        counts[mtype] = counts.get(mtype, 0) + 1
        cost = chip.cost_model.cost(action)
        if chip.faults is not None:
            cost = chip.faults.pp_cost(chip.node_id, cost)
        chip.stats.note_handler(action.handler, cost)
        self.cost = cost
        chip.env.call_later(cost, self._after_cost)

    def _after_cost(self) -> None:
        chip = self.chip
        action = self.action
        env = chip.env
        lat = chip.lat
        # Resolve the data source for any outgoing data-bearing message.
        data_ready: Optional[Event] = None
        if action.cache_retrieve:
            data_ready = env.timeout(
                max(0, lat.intervention_data - (env._now - self.start))
            )
            chip._cache_busy(lat.cache_state_retrieve +
                             lat.cache_data_retrieve)
        elif action.cache_touched:
            chip._cache_busy(lat.cache_state_retrieve)
        self.data_ready = data_ready
        if action.needs_memory_data:
            spec = self.spec
            if spec is not None and not action.memory_stale:
                self.data_ready = spec.data_event
                self.spec = None
            else:
                request = chip.memory.read(action.message.line_addr)
                request.trace_ctx = self.trace_ctx
                self.req = request
                chip.data_buffers.acquire_cb(self._mem_buf_acquired)
                return
        self._resolve_spec()

    def _mem_buf_acquired(self) -> None:
        chip = self.chip
        request = self.req
        chip._release_buffer_after1(request.done_event)
        chip.memory.submit_cb(request, self._mem_submitted)

    def _mem_submitted(self) -> None:
        self.data_ready = self.req.data_event
        self.req = None
        self._resolve_spec()

    def _resolve_spec(self) -> None:
        chip = self.chip
        action = self.action
        spec = self.spec
        if spec is not None:
            # The speculative read was useless: the memory copy is stale, the
            # message was deferred, or no data was needed after all.  The
            # access still occupies the memory system.
            spec.useless = True
            chip.stats.spec_useless += 1
            self.spec = None
        if action.writes_memory:
            wreq = chip.memory.write(action.message.line_addr)
            wreq.trace_ctx = self.trace_ctx
            data_ready = self.data_ready
            if data_ready is None:
                if not self.incoming_buffer:
                    chip.memory.submit_cb(wreq, self._after_write)
                else:
                    self.wreq = wreq
                    chip.memory.submit_cb(wreq, self._wb_buffered)
                return
            chip._submit_after(wreq, data_ready)
        self._after_write()

    def _wb_buffered(self) -> None:
        chip = self.chip
        chip._release_buffer_after1(self.wreq.done_event)
        self.wreq = None
        self.incoming_buffer = False
        self._after_write()

    def _after_write(self) -> None:
        delay = self.action.send_delay
        if delay:
            # Fault-injected retry backoff (repro.faults); always 0 otherwise.
            self.chip.env.call_later(delay, self._begin_sends)
        else:
            self._begin_sends()

    # -- outgoing messages (outbox -> interface queues) ----------------------------

    def _begin_sends(self) -> None:
        self.send_idx = 0
        self._send_next()

    def _send_next(self) -> None:
        if self.send_idx < len(self.action.sends):
            self.chip.env.call_later(self.chip.lat.outbox,
                                     self._send_after_outbox)
            return
        self._deliver_check()

    def _send_after_outbox(self) -> None:
        chip = self.chip
        action = self.action
        out = action.sends[self.send_idx]
        attached = self.data_ready if out.carries_data else None
        done: Optional[Event] = None
        if out.carries_data:
            done = chip.env.event()
            if self.incoming_buffer:
                # Forwarding the data that arrived with the message.
                chip._release_buffer_after1(done)
                self.incoming_buffer = False
            elif action.cache_retrieve:
                self.pending_done = done
                chip.data_buffers.acquire_cb(self._send_buf_acquired)
                return
        chip.net_port.send_cb((out, attached, done), self._send_sent)

    def _send_buf_acquired(self) -> None:
        chip = self.chip
        done = self.pending_done
        self.pending_done = None
        chip._release_buffer_after1(done)
        out = self.action.sends[self.send_idx]
        chip.net_port.send_cb((out, self.data_ready, done), self._send_sent)

    def _send_sent(self) -> None:
        self.send_idx += 1
        self._send_next()

    def _deliver_check(self) -> None:
        if self.action.cpu_deliver is not None:
            self.chip.env.call_later(self.chip.lat.outbox,
                                     self._deliver_after_outbox)
            return
        self._finish()

    def _deliver_after_outbox(self) -> None:
        chip = self.chip
        done = chip.env.event()
        if self.incoming_buffer:
            chip._release_buffer_after1(done)
            self.incoming_buffer = False
        chip.pi_out_q.put_cb((self.action.cpu_deliver, self.data_ready, done),
                             self._finish)

    # -- per-action epilogue -------------------------------------------------------

    def _finish(self) -> None:
        chip = self.chip
        env = chip.env
        action = self.action
        if self.incoming_buffer:
            # Data arrived but was fully consumed by the handler (e.g. a
            # deferred writeback): free its buffer now.
            chip.data_buffers.release()
            self.incoming_buffer = False
        busy = env._now - self.start
        chip.stats.pp_busy += busy
        tracer = chip.tracer
        if tracer is not None:
            tracer.pp_span(chip.node_id, action.handler, action.message,
                           self.start, env._now)
        metrics = chip.metrics
        if metrics is not None:
            # Busy mirrors the ``pp_busy`` increment above exactly, so the
            # ``pp.handler_busy_cycles`` family totals reconcile with
            # ``RunResult.avg_pp_occupancy()``.
            metrics.handler_invocations.labels(chip.node_id,
                                               action.handler).inc()
            metrics.handler_busy.labels(chip.node_id,
                                        action.handler).add(busy)
            metrics.handler_cost.labels(chip.node_id,
                                        action.handler).add(self.cost)
            metrics.busy_per_invocation.observe(busy)
        self.data_ready = None
        self.idx += 1
        if self.idx < self.n:
            self._action_start()
            return
        done_cb = self.done_cb
        if done_cb is not None:
            done_cb()


class MagicChip:
    """One node's MAGIC controller (FLASH machine)."""

    def __init__(
        self,
        env: Environment,
        node_id: int,
        config: MachineConfig,
        engine: NodeProtocolEngine,
        memory: MemoryController,
        net_port: NetworkPort,
        cost_model,
        stats: NodeStats,
    ):
        self.env = env
        self.node_id = node_id
        self.config = config
        self.engine = engine
        self.memory = memory
        self.net_port = net_port
        self.cost_model = cost_model
        self.stats = stats
        lat = config.latencies
        limits = config.limits
        self.lat = lat
        self.name = f"magic[{node_id}]"
        self.pi_in_q = BoundedQueue(env, limits.incoming_pi_queue,
                                    name=f"pi.in[{node_id}]")
        self.pi_out_q = BoundedQueue(env, limits.outgoing_pi_queue,
                                     name=f"pi.out[{node_id}]")
        self.pp_q = BoundedQueue(env, limits.inbox_to_pp_queue,
                                 name=f"inbox.pp[{node_id}]")
        self.data_buffers = CountingResource(env, limits.data_buffers,
                                             name=f"bufs[{node_id}]")
        self.mdc = MagicDataCache(config.magic_caches)
        self.icache = MagicInstructionCache(config.magic_caches)
        self._spec: Dict[int, MemoryRequest] = {}
        self._cpu_deliver: Callable[[Message], None] = lambda msg: None
        self._cache_busy: Callable[[float], None] = lambda cycles: None
        self.transfers = None  # TransferDomain, attached by the Node
        self.faults = None     # FaultInjector (repro.faults), attached by the Machine
        self.tracer = None     # Tracer (repro.stats.trace), attached by the Machine
        self.metrics = None    # MetricsRegistry (repro.stats.metrics), attached by the Machine
        # Inbox / PP / outbound-PI state-machine state: each unit is serial,
        # so its in-flight message lives in instance fields.
        self._get_pi: Optional[Event] = None
        self._get_ni: Optional[Event] = None
        self._ib_msg: Optional[Message] = None
        self._ib_spec: Optional[MemoryRequest] = None
        self._ib_start = 0.0
        self._po_bundle = None
        self._po_start = 0.0
        # Inbox latency-chain sums: stages with no side effect between them
        # ride one calendar entry (see DESIGN.md "Performance engineering").
        self._lat_pi_arb = lat.pi_inbound + lat.inbox_arbitration
        self._lat_po_out = lat.pi_outbound + lat.pi_outbound_bus_transit
        self._spec_enabled = config.speculative_reads
        # Macro-op fusion (DESIGN.md §5h): contention-free actions schedule
        # their completion instants analytically instead of stepping through
        # the outbox/NI/PI state machines.  The census dicts count dispatch
        # decisions per message class (perf_smoke reports them; a fallback-
        # rate regression shows up as a growing stepwise share).
        self._fusion = fusion_from_env()
        self.dispatch_fused: Dict[MT, int] = {}
        self.dispatch_stepwise: Dict[MT, int] = {}
        self._bufrel_cb = self.data_buffers.release
        # Bound once; scheduled thousands of times.
        self._ib_next_cb = self._ib_next
        self._ib_acquire_cb = self._ib_acquire
        self._ib_acquired_cb = self._ib_acquired
        self._ib_jt_cb = self._ib_jt
        self._ib_postarb_cb = self._ib_postarb
        self._ib_spec_begin_cb = self._ib_spec_begin
        self._ib_spec_buf_cb = self._ib_spec_buf
        self._ib_spec_submitted_cb = self._ib_spec_submitted
        self._ib_enqueue_cb = self._ib_enqueue
        self._ib_done_cb = self._ib_done
        self._pp_next_cb = self._pp_next
        self._pp_on_msg_cb = self._pp_on_msg
        self._po_on_bundle_cb = self._po_on_bundle
        self._po_after_wait_cb = self._po_after_wait
        self._po_deliver_cb = self._po_deliver
        self._relbuf_step_cb = self._relbuf_step
        self._relbuf_fire_cb = self._relbuf_fire
        self._subafter_step_cb = self._subafter_step
        # Boot hops mirror the three process starts of the coroutine form.
        env.call_soon(self._ib_boot)
        env.call_soon(self._pp_next)
        env.call_soon(self._po_next)

    # -- wiring ------------------------------------------------------------------

    def set_cpu_deliver(self, fn: Callable[[Message], None]) -> None:
        self._cpu_deliver = fn

    def set_cache_busy(self, fn: Callable[[float], None]) -> None:
        """Callback marking the processor cache busy for N cycles (MAGIC
        interventions contend with the CPU: the "Cont" category)."""
        self._cache_busy = fn

    def pi_submit(self, message: Message):
        """CPU-side entry: the returned event fires when the incoming PI
        queue accepted the message (a full queue stalls the processor)."""
        return self.pi_in_q.put(message)

    def pi_submit_cb(self, message: Message,
                     callback: Callable[[], None]) -> None:
        """Callback form of :meth:`pi_submit`."""
        self.pi_in_q.put_cb(message, callback)

    def pi_submit_drop(self, message: Message) -> None:
        """Fire-and-forget :meth:`pi_submit` for messages whose acceptance
        is never waited on (eviction writebacks/hints)."""
        self.pi_in_q.put_drop(message)

    # -- inbox (callback state machine) -------------------------------------------

    def _ib_boot(self) -> None:
        self._get_pi = self.pi_in_q.get()
        self._get_ni = self.net_port.in_queue.get()
        self._ib_next()

    def _ib_next(self) -> None:
        get_pi = self._get_pi
        get_ni = self._get_ni
        # ``._value is not PENDING`` is ``.triggered`` with the property
        # call inlined (this check runs twice per arbitration).
        if get_pi._value is not PENDING:
            message, from_pi = get_pi._value, True
            self._get_pi = self.pi_in_q.get()
        elif get_ni._value is not PENDING:
            message, from_pi = get_ni._value, False
            self._get_ni = self.net_port.in_queue.get()
        else:
            arb = _ArbOnce(self.env, self._ib_next_cb)
            get_pi.callbacks.append(arb)
            get_ni.callbacks.append(arb)
            return
        self.stats.messages_in += 1
        if self.tracer is not None:
            self._ib_start = self.env._now
        self._ib_msg = message
        # Whether a message carries data and whether the jump table will
        # speculate on it are message-static, so the whole intake latency
        # chain is known at arbitration time: consecutive stages with no
        # side effect between them ride a single calendar entry, and the
        # chain only breaks where contention can stall it (buffer acquire,
        # speculative memory issue).
        if message.carries_data:
            # Data-bearing messages are never speculative-read candidates.
            if from_pi:
                self.env.call_later(self.lat.pi_inbound, self._ib_acquire_cb)
                return
            self._ib_acquire()
            return
        if (
            self._spec_enabled
            and message.mtype in SPECULATIVE_TYPES
            and self.engine.home_of(message.line_addr) == self.node_id
        ):
            self.env.call_later(
                self._lat_pi_arb if from_pi else self.lat.inbox_arbitration,
                self._ib_spec_begin_cb)
            return
        self.env.call_later(
            self._lat_pi_arb if from_pi else self.lat.inbox_arbitration,
            self._ib_jt_cb)

    def _ib_jt(self) -> None:
        self.env.call_later(self.lat.jump_table_lookup, self._ib_enqueue_cb)

    def _ib_acquire(self) -> None:
        self.data_buffers.acquire_cb(self._ib_acquired_cb)

    def _ib_acquired(self) -> None:
        self.env.call_later(self.lat.inbox_arbitration, self._ib_postarb_cb)

    def _ib_postarb(self) -> None:
        self.env.call_later(self.lat.jump_table_lookup, self._ib_enqueue_cb)

    def _ib_spec_begin(self) -> None:
        # The jump table output initiates a speculative memory read; it
        # issues as the 2-cycle lookup proceeds.
        message = self._ib_msg
        request = self.memory.read(message.line_addr)
        if self.tracer is not None:
            request.trace_ctx = (message.requester, message.line_addr)
        self._ib_spec = request
        self.data_buffers.acquire_cb(self._ib_spec_buf_cb)

    def _ib_spec_buf(self) -> None:
        # A full memory queue stalls the inbox here, exactly as the old
        # ``yield self.memory.submit(request)`` did.
        self.memory.submit_cb(self._ib_spec, self._ib_spec_submitted_cb)

    def _ib_spec_submitted(self) -> None:
        request = self._ib_spec
        self._ib_spec = None
        self._spec[self._ib_msg.uid] = request
        self.stats.spec_issued += 1
        self._release_buffer_after1(request.done_event)
        self.env.call_later(self.lat.jump_table_lookup, self._ib_enqueue_cb)

    def _ib_enqueue(self) -> None:
        self.pp_q.put_cb(self._ib_msg, self._ib_done_cb)

    def _ib_done(self) -> None:
        tracer = self.tracer
        if tracer is not None:
            message = self._ib_msg
            tracer.inbox_span(self.node_id, message, self._ib_start,
                              self.env._now)
            tracer.pp_enqueue(message.uid, self.env._now)
        self._ib_msg = None
        self._ib_next()

    # -- protocol processor (callback state machine) --------------------------------

    def _pp_next(self) -> None:
        self.pp_q.get_cb(self._pp_on_msg_cb)

    def _pp_on_msg(self, message: Message) -> None:
        if self.tracer is not None:
            self.tracer.pp_dequeue(self.node_id, message, self.env._now)
        spec = self._spec.pop(message.uid, None)
        if message.mtype in TRANSFER_TYPES:
            Subtask(self.env, self._execute_transfer(message),
                    self._pp_next_cb, name=f"xfer[{self.node_id}]").start()
            return
        actions = self.engine.process(message)
        if actions:
            _ActionRunner(self, actions, spec, message.carries_data,
                          self._pp_next_cb).run()
            return
        self._pp_next()

    # -- processor interface, outbound (callback state machine) ----------------------

    def _po_next(self) -> None:
        self.pi_out_q.get_cb(self._po_on_bundle_cb)

    def _po_on_bundle(self, bundle) -> None:
        self._po_bundle = bundle
        if self.tracer is not None:
            self._po_start = self.env._now
        data_ready = bundle[1]
        if data_ready is not None and data_ready._value is PENDING:
            data_ready.callbacks.append(self._po_after_wait_cb)
            return
        self._po_after_wait(None)

    def _po_after_wait(self, _event=None) -> None:
        # PI outbound processing and bus transit are a pure latency chain
        # (no side effect between them): one calendar entry carries both.
        self.env.call_later(self.lat.pi_outbound +
                            self.lat.pi_outbound_bus_transit,
                            self._po_deliver_cb)

    def _po_deliver(self) -> None:
        message, _data_ready, done = self._po_bundle
        self._po_bundle = None
        tracer = self.tracer
        if tracer is not None:
            tracer.pi_out_span(self.node_id, message, self._po_start,
                               self.env._now)
        self._cpu_deliver(message)
        if done is not None and done._value is PENDING:
            done.succeed()
        # Delivering a grant to the local processor may make a line's
        # directory state consistent again; replay anything deferred on it.
        actions = self.engine.replay_stable(message.line_addr)
        if actions:
            runner = _ActionRunner(self, actions, None, False, None)
            self.env.call_soon(runner.run)  # mirrors the replay process start
        self._po_next()

    # -- block-transfer handlers (message passing, [HGD+94]) ------------------------

    def _execute_transfer(self, message: Message):
        """Run the transfer handlers on the PP: setup + one short handler
        per payload line at the sender, a write handler per line at the
        receiver.  The data itself moves through the hardwired datapath
        (memory <-> data buffer <-> NI), overlapping the handlers.  Cold
        path: stays a generator, driven by a Subtask from the PP machine."""
        env = self.env
        start = env.now
        if message.mtype == MT.XFER_SEND:
            n_lines = self.transfers.start(message)
            yield env.timeout(XFER_SETUP_COST)
            receiver = message.requester
            for index in range(n_lines):
                yield env.timeout(XFER_PER_LINE_COST)
                line_addr = message.line_addr + index * 128
                request = self.memory.read(line_addr)
                yield self.data_buffers.acquire()
                yield self.memory.submit(request)
                out = Message(
                    MT.XFER_DATA, line_addr, self.node_id, receiver,
                    self.node_id, nbytes=message.nbytes, uid=message.uid,
                )
                done = Event(env)
                self._release_buffer_after1(done)
                yield env.timeout(self.lat.outbox)
                yield self.net_port.send((out, request.data_event, done))
        elif message.mtype == MT.XFER_DATA:
            last = self.transfers.line_arrived(message)
            yield env.timeout(XFER_RECEIVE_COST)
            wreq = self.memory.write(message.line_addr)
            yield self.memory.submit(wreq)
            # The inbox acquired a buffer for the payload; free it once the
            # line is in memory.
            self._release_buffer_after1(wreq.done_event)
            if last:
                yield env.timeout(XFER_DONE_COST)
                self.transfers.complete(self.node_id, message.src)
        self.stats.pp_busy += env.now - start
        if self.tracer is not None:
            self.tracer.pp_span(self.node_id, "xfer", message, start, env.now)
        metrics = self.metrics
        if metrics is not None:
            busy = env.now - start
            metrics.handler_invocations.labels(self.node_id, "xfer").inc()
            metrics.handler_busy.labels(self.node_id, "xfer").add(busy)
            metrics.busy_per_invocation.observe(busy)

    # -- helpers ----------------------------------------------------------------------

    def _release_buffer_after1(self, event: Event) -> None:
        """Free a data buffer once ``event`` fires.  The current-time hop
        mirrors the old waiter process's start resume; the release itself
        lands at the position the waiter's resume occupied."""
        self.env.call_soon(self._relbuf_step_cb, event)

    def _relbuf_step(self, event: Event) -> None:
        if event._value is not PENDING:
            self.data_buffers.release()
        else:
            event.callbacks.append(self._relbuf_fire_cb)

    def _relbuf_fire(self, _event) -> None:
        self.data_buffers.release()

    def _submit_after(self, request: MemoryRequest, data_ready: Event) -> None:
        """Submit a memory write once its data source fires (same hop
        structure as the old one-shot ``wb`` waiter process)."""
        self.env.call_soon(self._subafter_step_cb, (request, data_ready))

    def _subafter_step(self, pair) -> None:
        request, data_ready = pair
        if data_ready._value is not PENDING:
            self.memory.submit_drop(request)
        else:
            data_ready.callbacks.append(SubmitWhenReady(self.memory, request))
