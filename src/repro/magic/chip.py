"""The MAGIC node controller.

Models the control macropipeline of Figure 2.2: messages from the processor
interface (PI) and network interface (NI) are selected by the *inbox*
(1-cycle arbitration), looked up in the *jump table* (2 cycles, optionally
initiating a speculative memory read), and handed to the *protocol processor*
(PP), which runs one handler at a time.  Handler semantics come from the
shared :class:`~repro.protocol.coherence.NodeProtocolEngine`; handler
occupancy comes from a pluggable cost backend (table-driven or PP-emulator-
derived).  Outgoing messages pass through the outbox (1 cycle) into bounded
interface queues; data-bearing messages wait for their data buffer to fill
before the interface transmits them, which is how PP processing overlaps the
memory access (Figure 3.1).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..common.params import MachineConfig
from ..memory.controller import MemoryController, MemoryRequest
from ..network.mesh import NetworkPort
from ..msgpass.transfer import (
    XFER_DONE_COST, XFER_PER_LINE_COST, XFER_RECEIVE_COST, XFER_SETUP_COST,
)
from ..protocol.coherence import Action, NodeProtocolEngine
from ..protocol.messages import Message, MessageType as MT, TRANSFER_TYPES
from ..sim.engine import Environment, Event, PENDING
from ..sim.queues import BoundedQueue, CountingResource
from ..stats.breakdown import NodeStats
from .mdc import MagicDataCache, MagicInstructionCache

__all__ = ["MagicChip", "SPECULATIVE_TYPES"]

#: Message types for which the jump table initiates a speculative memory read
#: (requests that may be satisfied from local memory).
SPECULATIVE_TYPES = frozenset({MT.GET, MT.GETX, MT.REMOTE_GET, MT.REMOTE_GETX})


class _EitherReady(Event):
    """Lean two-child ``any_of`` for inbox arbitration: fires as soon as
    either queue's get-event fires.  Scheduling order is identical to
    ``env.any_of([a, b])`` — the child's dispatch queues this event's
    trigger at the same point — but without the per-wait list, enumerate
    and closure allocations.  The value (unused by the inbox) is None."""

    __slots__ = ()

    def __init__(self, env: Environment, a: Event, b: Event):
        Event.__init__(self, env)
        on_child = self._on_child
        a.add_callback(on_child)
        b.add_callback(on_child)

    def _on_child(self, event: Event) -> None:
        if self._value is PENDING:
            if event._ok:
                self.succeed(None)
            else:
                self.fail(event._value)


class MagicChip:
    """One node's MAGIC controller (FLASH machine)."""

    def __init__(
        self,
        env: Environment,
        node_id: int,
        config: MachineConfig,
        engine: NodeProtocolEngine,
        memory: MemoryController,
        net_port: NetworkPort,
        cost_model,
        stats: NodeStats,
    ):
        self.env = env
        self.node_id = node_id
        self.config = config
        self.engine = engine
        self.memory = memory
        self.net_port = net_port
        self.cost_model = cost_model
        self.stats = stats
        lat = config.latencies
        limits = config.limits
        self.lat = lat
        self.pi_in_q = BoundedQueue(env, limits.incoming_pi_queue,
                                    name=f"pi.in[{node_id}]")
        self.pi_out_q = BoundedQueue(env, limits.outgoing_pi_queue,
                                     name=f"pi.out[{node_id}]")
        self.pp_q = BoundedQueue(env, limits.inbox_to_pp_queue,
                                 name=f"inbox.pp[{node_id}]")
        self.data_buffers = CountingResource(env, limits.data_buffers,
                                             name=f"bufs[{node_id}]")
        self.mdc = MagicDataCache(config.magic_caches)
        self.icache = MagicInstructionCache(config.magic_caches)
        self._spec: Dict[int, MemoryRequest] = {}
        self._cpu_deliver: Callable[[Message], None] = lambda msg: None
        self._cache_busy: Callable[[float], None] = lambda cycles: None
        self.transfers = None  # TransferDomain, attached by the Node
        self.faults = None     # FaultInjector (repro.faults), attached by the Machine
        self.tracer = None     # Tracer (repro.stats.trace), attached by the Machine
        self.metrics = None    # MetricsRegistry (repro.stats.metrics), attached by the Machine
        env.process(self._inbox(), name=f"inbox[{node_id}]")
        env.process(self._pp(), name=f"pp[{node_id}]")
        env.process(self._pi_out(), name=f"pi.out[{node_id}]")

    # -- wiring ------------------------------------------------------------------

    def set_cpu_deliver(self, fn: Callable[[Message], None]) -> None:
        self._cpu_deliver = fn

    def set_cache_busy(self, fn: Callable[[float], None]) -> None:
        """Callback marking the processor cache busy for N cycles (MAGIC
        interventions contend with the CPU: the "Cont" category)."""
        self._cache_busy = fn

    def pi_submit(self, message: Message):
        """CPU-side entry: the returned event fires when the incoming PI
        queue accepted the message (a full queue stalls the processor)."""
        return self.pi_in_q.put(message)

    # -- inbox --------------------------------------------------------------------

    def _inbox(self):
        env = self.env
        timeout = env.timeout
        ni_in = self.net_port.in_queue
        pi_in = self.pi_in_q
        stats = self.stats
        lat = self.lat
        get_pi = pi_in.get()
        get_ni = ni_in.get()
        while True:
            # ``._value is not PENDING`` is ``.triggered`` with the property
            # call inlined (this check runs twice per arbitration).
            if get_pi._value is not PENDING:
                message, from_pi = get_pi._value, True
                get_pi = pi_in.get()
            elif get_ni._value is not PENDING:
                message, from_pi = get_ni._value, False
                get_ni = ni_in.get()
            else:
                yield _EitherReady(env, get_pi, get_ni)
                continue
            stats.messages_in += 1
            tracer = self.tracer
            inbox_start = env._now if tracer is not None else 0.0
            if from_pi:
                yield timeout(lat.pi_inbound)
            if message.carries_data:
                yield self.data_buffers.acquire()
            yield timeout(lat.inbox_arbitration)
            # The jump table output may initiate a speculative memory read;
            # it issues as the 2-cycle lookup proceeds.
            if (
                self.config.speculative_reads
                and message.mtype in SPECULATIVE_TYPES
                and self.engine.home_of(message.line_addr) == self.node_id
            ):
                request = self.memory.read(message.line_addr)
                if tracer is not None:
                    request.trace_ctx = (message.requester, message.line_addr)
                yield self.data_buffers.acquire()
                yield self.memory.submit(request)  # full queue stalls the inbox
                self._spec[message.uid] = request
                self.stats.spec_issued += 1
                self._release_buffer_after([request.done_event])
            yield timeout(lat.jump_table_lookup)
            yield self.pp_q.put(message)
            if tracer is not None:
                tracer.inbox_span(self.node_id, message, inbox_start, env._now)
                tracer.pp_enqueue(message.uid, env._now)

    # -- protocol processor ----------------------------------------------------------

    def _pp(self):
        get = self.pp_q.get
        spec_pop = self._spec.pop
        engine_process = self.engine.process
        execute = self._execute
        while True:
            message = yield get()
            if self.tracer is not None:
                self.tracer.pp_dequeue(self.node_id, message, self.env._now)
            spec = spec_pop(message.uid, None)
            if message.mtype in TRANSFER_TYPES:
                yield from self._execute_transfer(message)
                continue
            actions = engine_process(message)
            incoming_buffer = message.carries_data
            for action in actions:
                yield from execute(action, spec, incoming_buffer)
                spec = None
                incoming_buffer = False

    def _execute(self, action: Action, spec: Optional[MemoryRequest],
                 incoming_buffer: bool):
        env = self.env
        timeout = env.timeout
        lat = self.lat
        stats = self.stats
        memory = self.memory
        tracer = self.tracer
        trace_ctx = (action.message.requester, action.message.line_addr) \
            if tracer is not None else None
        start = env._now
        self.icache.fetch(action.handler)
        # Directory accesses go through the MDC; misses stall the PP and
        # consume memory bandwidth.
        mdc_misses, mdc_writebacks = self.mdc.access_sequence(action.dir_addrs)
        for _ in range(mdc_writebacks):
            victim = memory.write(action.message.line_addr)
            victim.trace_ctx = trace_ctx
            yield memory.submit(victim)
        if mdc_misses:
            mdc_stall_start = env._now
            for _ in range(mdc_misses):
                fill = memory.read(action.message.line_addr)
                fill.trace_ctx = trace_ctx
                yield memory.submit(fill)
                yield fill.data_event
                extra = lat.mdc_miss_penalty - lat.memory_access
                if extra > 0:
                    yield timeout(extra)
            stats.pp_mdc_stall += env._now - mdc_stall_start
        # Handler execution.
        cost = self.cost_model.cost(action)
        if self.faults is not None:
            cost = self.faults.pp_cost(self.node_id, cost)
        stats.note_handler(action.handler, cost)
        yield timeout(cost)
        # Resolve the data source for any outgoing data-bearing message.
        data_ready: Optional[Event] = None
        if action.cache_retrieve:
            data_ready = timeout(
                max(0, lat.intervention_data - (env._now - start))
            )
            self._cache_busy(lat.cache_state_retrieve +
                             lat.cache_data_retrieve)
        elif action.cache_touched:
            self._cache_busy(lat.cache_state_retrieve)
        if action.needs_memory_data:
            if spec is not None and not action.memory_stale:
                data_ready = spec.data_event
                spec = None
            else:
                request = memory.read(action.message.line_addr)
                request.trace_ctx = trace_ctx
                yield self.data_buffers.acquire()
                self._release_buffer_after([request.done_event])
                yield memory.submit(request)
                data_ready = request.data_event
        if spec is not None:
            # The speculative read was useless: the memory copy is stale, the
            # message was deferred, or no data was needed after all.  The
            # access still occupies the memory system.
            spec.useless = True
            stats.spec_useless += 1
        if action.writes_memory:
            wreq = memory.write(action.message.line_addr)
            wreq.trace_ctx = trace_ctx
            if data_ready is None and not incoming_buffer:
                yield memory.submit(wreq)
            elif data_ready is None:
                yield memory.submit(wreq)
                self._release_buffer_after([wreq.done_event])
                incoming_buffer = False
            else:
                self._submit_after(wreq, data_ready)
        if action.send_delay:
            # Fault-injected retry backoff (repro.faults); always 0 otherwise.
            yield timeout(action.send_delay)
        # Outgoing messages leave through the outbox into interface queues.
        for out in action.sends:
            yield timeout(lat.outbox)
            attached = data_ready if out.carries_data else None
            done: Optional[Event] = None
            if out.carries_data:
                done = Event(env)
                if incoming_buffer:
                    # Forwarding the data that arrived with the message.
                    self._release_buffer_after([done])
                    incoming_buffer = False
                elif action.cache_retrieve:
                    yield self.data_buffers.acquire()
                    self._release_buffer_after([done])
            yield self.net_port.send((out, attached, done))
        if action.cpu_deliver is not None:
            yield timeout(lat.outbox)
            done = Event(env)
            if incoming_buffer:
                self._release_buffer_after([done])
                incoming_buffer = False
            yield self.pi_out_q.put((action.cpu_deliver, data_ready, done))
        if incoming_buffer:
            # Data arrived but was fully consumed by the handler (e.g. a
            # deferred writeback): free its buffer now.
            self.data_buffers.release()
        stats.pp_busy += env._now - start
        if tracer is not None:
            tracer.pp_span(self.node_id, action.handler, action.message,
                           start, env._now)
        metrics = self.metrics
        if metrics is not None:
            # Busy mirrors the ``pp_busy`` increment above exactly, so the
            # ``pp.handler_busy_cycles`` family totals reconcile with
            # ``RunResult.avg_pp_occupancy()``.
            busy = env._now - start
            metrics.handler_invocations.labels(self.node_id,
                                               action.handler).inc()
            metrics.handler_busy.labels(self.node_id,
                                        action.handler).add(busy)
            metrics.handler_cost.labels(self.node_id,
                                        action.handler).add(cost)
            metrics.busy_per_invocation.observe(busy)

    # -- processor interface, outbound ------------------------------------------------

    def _pi_out(self):
        env = self.env
        timeout = env.timeout
        get = self.pi_out_q.get
        pi_outbound = self.lat.pi_outbound
        bus_transit = self.lat.pi_outbound_bus_transit
        while True:
            message, data_ready, done = yield get()
            tracer = self.tracer
            pi_start = env._now if tracer is not None else 0.0
            if data_ready is not None and data_ready._value is PENDING:
                yield data_ready
            yield timeout(pi_outbound)
            yield timeout(bus_transit)
            if tracer is not None:
                tracer.pi_out_span(self.node_id, message, pi_start, env._now)
            self._cpu_deliver(message)
            if done is not None and done._value is PENDING:
                done.succeed()
            # Delivering a grant to the local processor may make a line's
            # directory state consistent again; replay anything deferred on it.
            actions = self.engine.replay_stable(message.line_addr)
            if actions:
                env.process(self._run_actions(actions),
                            name=f"replay[{self.node_id}]")

    def _run_actions(self, actions):
        for action in actions:
            yield from self._execute(action, None, False)

    # -- block-transfer handlers (message passing, [HGD+94]) ------------------------

    def _execute_transfer(self, message: Message):
        """Run the transfer handlers on the PP: setup + one short handler
        per payload line at the sender, a write handler per line at the
        receiver.  The data itself moves through the hardwired datapath
        (memory <-> data buffer <-> NI), overlapping the handlers."""
        env = self.env
        start = env.now
        if message.mtype == MT.XFER_SEND:
            n_lines = self.transfers.start(message)
            yield env.timeout(XFER_SETUP_COST)
            receiver = message.requester
            for index in range(n_lines):
                yield env.timeout(XFER_PER_LINE_COST)
                line_addr = message.line_addr + index * 128
                request = self.memory.read(line_addr)
                yield self.data_buffers.acquire()
                yield self.memory.submit(request)
                out = Message(
                    MT.XFER_DATA, line_addr, self.node_id, receiver,
                    self.node_id, nbytes=message.nbytes, uid=message.uid,
                )
                done = Event(env)
                self._release_buffer_after([done])
                yield env.timeout(self.lat.outbox)
                yield self.net_port.send((out, request.data_event, done))
        elif message.mtype == MT.XFER_DATA:
            last = self.transfers.line_arrived(message)
            yield env.timeout(XFER_RECEIVE_COST)
            wreq = self.memory.write(message.line_addr)
            yield self.memory.submit(wreq)
            # The inbox acquired a buffer for the payload; free it once the
            # line is in memory.
            self._release_buffer_after([wreq.done_event])
            if last:
                yield env.timeout(XFER_DONE_COST)
                self.transfers.complete(self.node_id, message.src)
        self.stats.pp_busy += env.now - start
        if self.tracer is not None:
            self.tracer.pp_span(self.node_id, "xfer", message, start, env.now)
        metrics = self.metrics
        if metrics is not None:
            busy = env.now - start
            metrics.handler_invocations.labels(self.node_id, "xfer").inc()
            metrics.handler_busy.labels(self.node_id, "xfer").add(busy)
            metrics.busy_per_invocation.observe(busy)

    # -- helpers ----------------------------------------------------------------------

    def _release_buffer_after(self, events: List[Event]) -> None:
        def waiter():
            for event in events:
                if not event.triggered:
                    yield event
            self.data_buffers.release()
        self.env.process(waiter(), name=f"bufrel[{self.node_id}]")

    def _submit_after(self, request: MemoryRequest, data_ready: Event) -> None:
        def waiter():
            if not data_ready.triggered:
                yield data_ready
            yield self.memory.submit(request)
        self.env.process(waiter(), name=f"wb[{self.node_id}]")
