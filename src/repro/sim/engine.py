"""Discrete-event simulation kernel.

A small, dependency-free event engine in the style of SimPy: simulation
*processes* are Python generators that ``yield`` events (timeouts, one-shot
events, other processes, or composites) and are resumed when those events
fire.  The engine provides deterministic execution: events scheduled for the
same simulation time fire in scheduling order.

This kernel is the substrate for every timed component in the FLASH
reproduction (processors, MAGIC units, memory controllers, the network).
"""

from __future__ import annotations

import heapq
import sys
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Subtask",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "NO_ARG",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


PENDING = object()

#: Sentinel for "call the queued callback with no argument".
_NO_ARG = object()
#: Public alias: callback-mode subsystems (queues, state machines) use it to
#: schedule argument-less continuations through the same tuple fast path.
NO_ARG = _NO_ARG

# Under mypyc the module's __file__ is the compiled extension; native code
# may hold references the interpreter-level refcount proof does not see, so
# the pools stay empty there (draws degrade to plain allocation).
_COMPILED = not __file__.endswith(".py")

# Timeout pooling relies on CPython reference-count semantics to prove that
# nobody else can observe the recycled object (see Environment.run).
_REFCOUNT_POOLING = sys.implementation.name == "cpython" and not _COMPILED
#: getrefcount(event) when the run loop's local + getrefcount's own argument
#: are the only remaining references.
_FREE_REFCOUNT = 2


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    triggers it, scheduling all registered callbacks at the current
    simulation time.  Waiting on an already-triggered event resumes the
    waiter immediately (at the current time).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True

    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event has not been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self.env._ready.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.env._queue_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already fired and dispatched: run at current time.
            self.env._queue_callback(callback, self)
        else:
            self.callbacks.append(callback)

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks or ():
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at t={self.env.now}>"


class Timeout(Event):
    """An event that fires ``delay`` cycles in the future.

    Dead timeouts that provably have no remaining references are recycled by
    the run loop through :attr:`Environment._timeout_pool`, so the dominant
    ``yield env.timeout(d)`` pattern usually reuses an existing object
    instead of allocating a fresh one.
    """

    __slots__ = ("delay", "_pending_value")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._pending_value = value
        env._schedule_at(env._now + delay, self)

    def _reinit(self, delay: float, value: Any) -> None:
        """Re-arm a recycled (fired, unreferenced) timeout."""
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self.delay = delay
        self._pending_value = value
        # _schedule_at, inlined (this is the hot timeout path).  Routing on
        # ``when <= now`` (not ``delay == 0``) keeps the run loop's invariant
        # airtight: the calendar never receives an entry due at the current
        # time.
        env = self.env
        when = env._now + delay
        if when <= env._now:
            env._ready.append(self)
        else:
            buckets = env._buckets
            bucket = buckets.get(when)
            if bucket is None:
                pool = env._bucket_pool
                if pool:
                    bucket = pool.pop()
                    bucket.append(self)
                    buckets[when] = bucket
                else:
                    buckets[when] = [self]
                heapq.heappush(env._whens, when)
            else:
                bucket.append(self)

    def _dispatch(self) -> None:
        # Fused Event._dispatch: one call saved per fired timeout.
        if self._value is PENDING:
            self._value = self._pending_value
            self._ok = True
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks or ():
            callback(self)


class Process(Event):
    """Wraps a generator; fires (with the generator's return value) when the
    generator finishes.  The process is itself an event other processes can
    wait on."""

    __slots__ = ("_generator", "_send", "_resume", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError(f"process target must be a generator, got {generator!r}")
        self._generator = generator
        self._send = generator.send  # bound once; called every resume
        self._resume = self._on_event  # bound once; appended once per yield
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off at the current time.
        env._queue_callback(self._resume_initial)

    def _resume_initial(self) -> None:
        self._step(None, None)

    def _on_event(self, event: Event) -> None:
        # Single-frame resume: runs once per yield in every process, so the
        # success path unpacks the event and advances the generator without
        # going through _step.  Failures take the cold _step path.
        if not event._ok:
            self._step(None, event._value)
            return
        try:
            target = self._send(event._value)
        except StopIteration as stop:
            if self._value is PENDING:
                self.succeed(stop.value)
            return
        except BaseException as error:
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise
            if self._value is PENDING:
                self.fail(error)
                return
            raise
        cls = target.__class__
        if cls is not Timeout and cls is not Event and not isinstance(target, Event):
            self._generator.throw(
                SimulationError(f"process {self.name!r} yielded non-event {target!r}")
            )
            return
        # target.add_callback(self._resume), inlined (hot resume path).
        callbacks = target.callbacks
        if callbacks is None:
            self.env._ready.append((self._resume, target))
        else:
            callbacks.append(self._resume)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._send(value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except BaseException as error:
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise
            if not self.triggered:
                self.fail(error)
                return
            raise
        cls = target.__class__
        if cls is not Timeout and cls is not Event and not isinstance(target, Event):
            self._generator.throw(
                SimulationError(f"process {self.name!r} yielded non-event {target!r}")
            )
            return
        callbacks = target.callbacks
        if callbacks is None:
            self.env._ready.append((self._resume, target))
        else:
            callbacks.append(self._resume)


class Subtask:
    """Drives a generator without a :class:`Process` wrapper.

    Callback-core state machines use this for cold sub-flows that used to run
    via ``yield from`` inside a process (e.g. block transfers on the PP): the
    first step runs inline at :meth:`start` — exactly like ``yield from`` —
    each yielded event registers the resume at the same callbacks-list /
    ready-deque position ``Process._on_event`` would, and on completion
    ``done_cb`` runs inline where the enclosing generator would have
    continued.  No completion event is created, so a finished subtask adds no
    dispatch the process form would not have added (its process-end event
    carried no callbacks).
    """

    __slots__ = ("env", "_send", "_step_cb", "done_cb", "name")

    def __init__(self, env: "Environment", generator: Generator,
                 done_cb: Optional[Callable[[], None]] = None,
                 name: str = "") -> None:
        self.env = env
        self._send = generator.send
        self._step_cb = self._step  # bound once; registered once per yield
        self.done_cb = done_cb
        self.name = name or getattr(generator, "__name__", "subtask")

    def start(self) -> None:
        self._advance(None)

    def _step(self, event: Event) -> None:
        self._advance(event._value)

    def _advance(self, value: Any) -> None:
        try:
            target = self._send(value)
        except StopIteration:
            done_cb = self.done_cb
            if done_cb is not None:
                done_cb()
            return
        # target.add_callback(self._step), inlined — identical registration
        # to the Process resume path.
        callbacks = target.callbacks
        if callbacks is None:
            self.env._ready.append((self._step_cb, target))
        else:
            callbacks.append(self._step_cb)


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("_pending_count", "_events")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._pending_count = len(self._events)
        if self._pending_count == 0:
            self.succeed([])
        else:
            for event in self._events:
                event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(Event):
    """Fires as soon as one child event fires; value is (index, value)."""

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf requires at least one event")
        for index, event in enumerate(self._events):
            event.add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Event], None]:
        def on_child(event: Event) -> None:
            if self.triggered:
                return
            if not event.ok:
                self.fail(event.value)
            else:
                self.succeed((index, event.value))

        return on_child


class Environment:
    """The simulation environment: clock plus scheduler.

    Scheduling is split across two structures:

    * ``_ready`` — a FIFO deque of work at the *current* simulation time
      (event triggers, process resumes, zero-delay timeouts).  This is the
      dominant traffic, and a deque append/popleft is O(1) where the old
      single-heap scheduler paid O(log n) tuple-comparison churn per event.
    * ``_buckets``/``_whens`` — a calendar of strictly-future timeouts:
      a dict mapping each distinct firing time to the list of events due
      then (in scheduling order), plus a heap of the distinct times.  Heap
      traffic is one push/pop per *timestamp* instead of per event, and the
      heap compares bare floats instead of ``(when, seq, event)`` tuples.

    No explicit sequence numbers are needed for determinism: same-time work
    fires in exactly the order it was scheduled because every structure is
    FIFO, the scheduling paths route anything due now to ``_ready``
    (so nothing ever joins a bucket at the current time), and the clock only
    advances when ``_ready`` is empty — hence a due bucket always predates
    (and fully fires before) anything in ``_ready``.  Observable behaviour,
    including every tie-break, is identical to the single-heap scheduler.
    """

    def __init__(self) -> None:
        self._now: float = 0
        self._buckets: dict = {}     # when -> [event, ...] in scheduling order
        self._whens: List[float] = []  # heap of distinct future times
        self._ready: deque = deque()  # events / (callback, arg) at current time
        self._timeout_pool: List[Timeout] = []
        # Drained calendar buckets recycled by the run loop: a new distinct
        # timestamp reuses a spent list instead of allocating one.  List
        # identity is invisible to simulation semantics.
        self._bucket_pool: List[list] = []
        # Dead plain Events recycled by the run loop (same refcount proof as
        # the timeout pool); drawn on by the queue/memory hot paths.
        self._event_pool: List[Event] = []
        # Robustness hooks (repro.sim.watchdog): every BoundedQueue /
        # CountingResource registers itself here for stall diagnosis, and an
        # attached watchdog routes run() through the instrumented loop.
        self._queues: List[Any] = []
        self._watchdog = None
        # Observability anchor (repro.stats.trace): the Machine parks its
        # Tracer here so stall diagnosis can attach the trace tail of the
        # oldest in-flight transactions.  The run loop never consults it.
        self._tracer = None

    @property
    def now(self) -> float:
        return self._now

    # -- scheduling internals ------------------------------------------------

    def _schedule_at(self, when: float, event: Event) -> None:
        if when <= self._now:
            # Zero-delay fast path: current-time work never joins the calendar.
            self._ready.append(event)
        else:
            buckets = self._buckets
            bucket = buckets.get(when)
            if bucket is None:
                pool = self._bucket_pool
                if pool:
                    bucket = pool.pop()
                    bucket.append(event)
                    buckets[when] = bucket
                else:
                    buckets[when] = [event]
                heapq.heappush(self._whens, when)
            else:
                bucket.append(event)

    def _queue_event(self, event: Event) -> None:
        """Schedule a just-triggered event's dispatch at the current time."""
        self._ready.append(event)

    def _queue_callback(self, callback: Callable[..., None], arg: Any = _NO_ARG) -> None:
        self._ready.append((callback, arg))

    # -- public API ----------------------------------------------------------

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool:
            # Timeout._reinit, inlined: one call saved per recycled timeout,
            # and this is the single hottest allocation site in a run.
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            # Pooled objects arrive with an empty callbacks list (see the
            # run-loop recycle sites), so only value/state need resetting.
            timeout = pool.pop()
            timeout._value = PENDING
            timeout._ok = True
            timeout.delay = delay
            timeout._pending_value = value
            when = self._now + delay
            if when <= self._now:
                self._ready.append(timeout)
            else:
                buckets = self._buckets
                bucket = buckets.get(when)
                if bucket is None:
                    bpool = self._bucket_pool
                    if bpool:
                        bucket = bpool.pop()
                        bucket.append(timeout)
                        buckets[when] = bucket
                    else:
                        buckets[when] = [timeout]
                    heapq.heappush(self._whens, when)
                else:
                    bucket.append(timeout)
            return timeout
        return Timeout(self, delay, value)

    def call_later(self, delay: float, callback: Callable[..., None],
                   arg: Any = _NO_ARG) -> None:
        """Schedule ``callback(arg)`` (or ``callback()`` with the default
        sentinel) ``delay`` cycles from now.

        This is the callback-core replacement for ``yield env.timeout(d)``:
        the continuation is stored as a bare ``(callback, arg)`` tuple —
        no Timeout object, no callbacks list, no pooling bookkeeping — and
        fires at exactly the position a Timeout scheduled at the same
        instant would have fired (ready deque for ``delay <= 0``, calendar
        bucket otherwise), so dispatch order is identical to the event form.
        """
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        entry = (callback, arg)
        when = self._now + delay
        if when <= self._now:
            self._ready.append(entry)
        else:
            buckets = self._buckets
            bucket = buckets.get(when)
            if bucket is None:
                pool = self._bucket_pool
                if pool:
                    bucket = pool.pop()
                    bucket.append(entry)
                    buckets[when] = bucket
                else:
                    buckets[when] = [entry]
                heapq.heappush(self._whens, when)
            else:
                bucket.append(entry)

    def call_at(self, when: float, callback: Callable[..., None],
                arg: Any = _NO_ARG) -> None:
        """Schedule ``callback(arg)`` at the *absolute* instant ``when``.

        ``call_later`` derives the firing time as ``now + delay``; float
        addition is not associative, so a caller that precomputed a chain of
        stepwise instants (the macro-op fusion layer) cannot express them as
        a summed delay without risking a different calendar-bucket key.
        This primitive takes the exact float the stepwise chain would have
        produced.  ``when`` in the past is a kernel-misuse error; ``when``
        equal to the current time routes to the ready deque like any other
        current-time work.
        """
        if when < self._now:
            raise SimulationError(
                f"call_at into the past: {when} < now {self._now}")
        entry = (callback, arg)
        if when <= self._now:
            self._ready.append(entry)
        else:
            buckets = self._buckets
            bucket = buckets.get(when)
            if bucket is None:
                pool = self._bucket_pool
                if pool:
                    bucket = pool.pop()
                    bucket.append(entry)
                    buckets[when] = bucket
                else:
                    buckets[when] = [entry]
                heapq.heappush(self._whens, when)
            else:
                bucket.append(entry)

    def call_soon(self, callback: Callable[..., None], arg: Any = _NO_ARG) -> None:
        """Schedule ``callback(arg)`` at the current simulation time — the
        callback-core replacement for the process-start hop (a new Process
        queues its first resume the same way)."""
        self._ready.append((callback, arg))

    def event(self) -> Event:
        pool = self._event_pool
        if pool:
            # Recycled by the run loop once the refcount proved it dead;
            # pooled objects carry an empty callbacks list, so only the
            # trigger state needs resetting.
            event = pool.pop()
            event._value = PENDING
            event._ok = True
            return event
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def attach_watchdog(self, watchdog) -> None:
        """Route ``run()`` through the instrumented loop that ticks
        ``watchdog`` (see :class:`repro.sim.watchdog.Watchdog`); pass None
        to detach and return to the fast loop."""
        self._watchdog = watchdog

    def run(self, until: Optional[float] = None) -> float:
        """Run until the schedule drains or the clock reaches ``until``.

        Returns the final simulation time.  If the schedule drains before
        ``until``, the clock still advances to ``until`` (callers rely on
        ``now == until`` for rate and occupancy computations).
        """
        if self._watchdog is not None:
            return self._run_watched(until)
        ready = self._ready
        whens = self._whens
        buckets = self._buckets
        pool = self._timeout_pool
        event_pool = self._event_pool
        bucket_pool = self._bucket_pool
        heappop = heapq.heappop
        refcount = sys.getrefcount if _REFCOUNT_POOLING else None
        # Local bindings for names the dispatch loop reads per event: a
        # LOAD_FAST per iteration instead of a global/builtin lookup.
        cls_tuple = tuple
        cls_timeout = Timeout
        cls_event = Event
        no_arg = _NO_ARG
        pending = PENDING
        free_refcount = _FREE_REFCOUNT
        # A ready entry is either an Event itself or a ``(callback, arg)``
        # tuple for queued callbacks — the event-as-entry form saves a tuple
        # allocation and unpack on the dominant trigger path.
        #
        # Ordering needs no sequence numbers.  The scheduling paths route
        # anything due at the current time to the ready deque, so while the
        # clock stands still no calendar bucket can become due; and the clock
        # only advances once ``ready`` is empty, so everything in the due
        # bucket was scheduled before anything the bucket's own dispatches
        # push onto ``ready``.  Draining the bucket FIFO and then the deque
        # FIFO therefore reproduces global scheduling order exactly.
        while True:
            # Fast drain: fire current-time work back to back.  Dispatch is
            # inlined per concrete class (exact-type checks, so subclasses
            # with custom _dispatch still take the generic branch), and dead
            # Timeouts/Events are recycled into their pools when the
            # refcount proves nobody else can see them.
            while ready:
                event = ready.popleft()
                cls = event.__class__
                if cls is cls_tuple:
                    callback, arg = event
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
                    continue
                if cls is cls_timeout:
                    # Timeout._dispatch, inlined.
                    if event._value is pending:
                        event._value = event._pending_value
                        event._ok = True
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if (
                        refcount is not None
                        and refcount(event) == free_refcount
                    ):
                        # Pool invariant: a pooled object carries an empty
                        # callbacks list, so reuse spares consumers a fresh
                        # allocation per draw.
                        if callbacks:
                            callbacks.clear()
                        event.callbacks = callbacks
                        pool.append(event)
                    continue
                if cls is cls_event:
                    # Event._dispatch, inlined.
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if (
                        refcount is not None
                        and refcount(event) == free_refcount
                    ):
                        if callbacks:
                            callbacks.clear()
                        event.callbacks = callbacks
                        event_pool.append(event)
                    continue
                # Processes and composites (a died-process error check
                # only applies here: plain Events and Timeouts can never
                # satisfy isinstance(event, Process)).
                if (
                    not event._ok
                    and not event.callbacks
                    and event._value is not pending
                    and isinstance(event, Process)
                ):
                    # A process died with nobody waiting on it: surface
                    # the error instead of silently swallowing it.
                    raise event._value
                event._dispatch()
            if not whens:
                break
            # Ready empty: advance the clock to the earliest future bucket
            # and fire its entries in scheduling order.  Entries are popped
            # off the (reversed) list so the run-loop local holds the only
            # reference left when a dead timeout reaches the recycle check.
            when = whens[0]
            if until is not None and when > until:
                self._now = until
                return until
            heappop(whens)
            self._now = when
            bucket = buckets.pop(when)
            bucket.reverse()
            while bucket:
                event = bucket.pop()
                cls = event.__class__
                if cls is cls_tuple:
                    # A call_later continuation: bare (callback, arg).
                    callback, arg = event
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
                elif cls is cls_timeout:
                    # Timeout._dispatch, inlined.
                    if event._value is pending:
                        event._value = event._pending_value
                        event._ok = True
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if (
                        refcount is not None
                        and refcount(event) == free_refcount
                    ):
                        if callbacks:
                            callbacks.clear()
                        event.callbacks = callbacks
                        pool.append(event)
                else:
                    event._dispatch()
            # The drained list is empty: recycle it for the next distinct
            # timestamp (the watched loop skips this, like the object pools).
            bucket_pool.append(bucket)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _run_watched(self, until: Optional[float] = None) -> float:
        """``run()`` with a watchdog attached: dispatches every event
        generically (no inlining, no object pooling) and ticks the watchdog
        every ``check_interval`` events.

        Dispatch *order* is identical to the fast loop — same ready-deque /
        calendar-bucket structure, same died-process check — so observable
        results are byte-identical; only wall-clock speed differs.  Pools
        are never refilled here, which is safe: ``timeout()``/queue draws
        degrade to plain allocation when the pools are empty.
        """
        ready = self._ready
        whens = self._whens
        buckets = self._buckets
        heappop = heapq.heappop
        watchdog = self._watchdog
        interval = watchdog.check_interval
        countdown = interval
        while True:
            while ready:
                countdown -= 1
                if countdown <= 0:
                    countdown = interval
                    watchdog.events_dispatched += interval
                    watchdog.check()
                event = ready.popleft()
                if event.__class__ is tuple:
                    callback, arg = event
                    if arg is _NO_ARG:
                        callback()
                    else:
                        callback(arg)
                    continue
                if (
                    not event._ok
                    and not event.callbacks
                    and event._value is not PENDING
                    and isinstance(event, Process)
                ):
                    raise event._value
                event._dispatch()
            if not whens:
                break
            when = whens[0]
            if until is not None and when > until:
                self._now = until
                return until
            heappop(whens)
            self._now = when
            bucket = buckets.pop(when)
            bucket.reverse()
            while bucket:
                countdown -= 1
                if countdown <= 0:
                    countdown = interval
                    watchdog.events_dispatched += interval
                    watchdog.check()
                event = bucket.pop()
                if event.__class__ is tuple:
                    callback, arg = event
                    if arg is _NO_ARG:
                        callback()
                    else:
                        callback(arg)
                else:
                    event._dispatch()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Convenience: spawn ``generator`` and run; returns its value."""
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError("process did not finish before the run ended")
        if not proc.ok:
            raise proc.value
        return proc.value
