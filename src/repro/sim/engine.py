"""Discrete-event simulation kernel.

A small, dependency-free event engine in the style of SimPy: simulation
*processes* are Python generators that ``yield`` events (timeouts, one-shot
events, other processes, or composites) and are resumed when those events
fire.  The engine provides deterministic execution: events scheduled for the
same simulation time fire in scheduling order.

This kernel is the substrate for every timed component in the FLASH
reproduction (processors, MAGIC units, memory controllers, the network).
"""

from __future__ import annotations

import heapq
import sys
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


PENDING = object()

#: Sentinel for "call the queued callback with no argument".
_NO_ARG = object()

# Timeout pooling relies on CPython reference-count semantics to prove that
# nobody else can observe the recycled object (see Environment._run_heap_head).
_REFCOUNT_POOLING = sys.implementation.name == "cpython"
#: getrefcount(event) when the run loop's local + getrefcount's own argument
#: are the only remaining references.
_FREE_REFCOUNT = 2


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    triggers it, scheduling all registered callbacks at the current
    simulation time.  Waiting on an already-triggered event resumes the
    waiter immediately (at the current time).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True

    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event has not been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self.env._queue_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.env._queue_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already fired and dispatched: run at current time.
            self.env._queue_callback(callback, self)
        else:
            self.callbacks.append(callback)

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks or ():
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at t={self.env.now}>"


class Timeout(Event):
    """An event that fires ``delay`` cycles in the future.

    Dead timeouts that provably have no remaining references are recycled by
    the run loop through :attr:`Environment._timeout_pool`, so the dominant
    ``yield env.timeout(d)`` pattern usually reuses an existing object
    instead of allocating a fresh one.
    """

    __slots__ = ("delay", "_pending_value")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._pending_value = value
        env._schedule_at(env._now + delay, self)

    def _reinit(self, delay: float, value: Any) -> None:
        """Re-arm a recycled (fired, unreferenced) timeout."""
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self.delay = delay
        self._pending_value = value
        env = self.env
        env._schedule_at(env._now + delay, self)

    def _dispatch(self) -> None:
        if self._value is PENDING:
            self._value = self._pending_value
            self._ok = True
        super()._dispatch()


class Process(Event):
    """Wraps a generator; fires (with the generator's return value) when the
    generator finishes.  The process is itself an event other processes can
    wait on."""

    __slots__ = ("_generator", "name", "_waiting_on")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError(f"process target must be a generator, got {generator!r}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off at the current time.
        env._queue_callback(self._resume_initial)

    def _resume_initial(self) -> None:
        self._step(None, None)

    def _on_event(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(event.value, None)
        else:
            self._step(None, event.value)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except BaseException as error:
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise
            if not self.triggered:
                self.fail(error)
                return
            raise
        if not isinstance(target, Event):
            self._generator.throw(
                SimulationError(f"process {self.name!r} yielded non-event {target!r}")
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_event)


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("_pending_count", "_events")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._pending_count = len(self._events)
        if self._pending_count == 0:
            self.succeed([])
        else:
            for event in self._events:
                event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(Event):
    """Fires as soon as one child event fires; value is (index, value)."""

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf requires at least one event")
        for index, event in enumerate(self._events):
            event.add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Event], None]:
        def on_child(event: Event) -> None:
            if self.triggered:
                return
            if not event.ok:
                self.fail(event.value)
            else:
                self.succeed((index, event.value))

        return on_child


class Environment:
    """The simulation environment: clock plus scheduler.

    Scheduling is split across two structures:

    * ``_ready`` — a FIFO deque of work at the *current* simulation time
      (event triggers, process resumes, zero-delay timeouts).  This is the
      dominant traffic, and a deque append/popleft is O(1) where the old
      single-heap scheduler paid O(log n) tuple-comparison churn per event.
    * ``_heap`` — a binary heap of strictly-future timeouts.

    Both carry a global sequence number, so interleaved same-time work still
    fires in exactly the order it was scheduled — observable behaviour
    (including tie-breaking) is identical to the single-heap scheduler.
    """

    def __init__(self) -> None:
        self._now: float = 0
        self._heap: List = []        # (when, seq, event) — future work only
        self._sequence = 0
        self._ready: deque = deque()  # (seq, event, callback, arg) at current time
        self._timeout_pool: List[Timeout] = []

    @property
    def now(self) -> float:
        return self._now

    # -- scheduling internals ------------------------------------------------

    def _schedule_at(self, when: float, event: Event) -> None:
        self._sequence += 1
        if when <= self._now:
            # Zero-delay fast path: current-time work never touches the heap.
            self._ready.append((self._sequence, event, None, None))
        else:
            heapq.heappush(self._heap, (when, self._sequence, event))

    def _queue_event(self, event: Event) -> None:
        """Schedule a just-triggered event's dispatch at the current time."""
        self._sequence += 1
        self._ready.append((self._sequence, event, None, None))

    def _queue_callback(self, callback: Callable[..., None], arg: Any = _NO_ARG) -> None:
        self._sequence += 1
        self._ready.append((self._sequence, None, callback, arg))

    # -- public API ----------------------------------------------------------

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
            timeout._reinit(delay, value)
            return timeout
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the schedule drains or the clock reaches ``until``.

        Returns the final simulation time.  If the schedule drains before
        ``until``, the clock still advances to ``until`` (callers rely on
        ``now == until`` for rate and occupancy computations).
        """
        heap = self._heap
        ready = self._ready
        pool = self._timeout_pool
        heappop = heapq.heappop
        refcount = sys.getrefcount if _REFCOUNT_POOLING else None
        while ready or heap:
            # Same-time FIFO fast path: fire ready work unless a heap entry
            # at the current time carries an earlier sequence number.
            if ready and not (
                heap and heap[0][0] <= self._now and heap[0][1] < ready[0][0]
            ):
                _seq, event, callback, arg = ready.popleft()
                if callback is not None:
                    if arg is _NO_ARG:
                        callback()
                    else:
                        callback(arg)
                    continue
                if (
                    isinstance(event, Process)
                    and event.triggered
                    and not event._ok
                    and not event.callbacks
                ):
                    # A process died with nobody waiting on it: surface the
                    # error instead of silently swallowing it.
                    raise event._value
                event._dispatch()
            else:
                when, _seq, event = heap[0]
                if until is not None and when > until:
                    self._now = until
                    return until
                heappop(heap)
                self._now = when
                event._dispatch()
            if (
                refcount is not None
                and type(event) is Timeout
                and refcount(event) == _FREE_REFCOUNT
            ):
                # Fired and provably unreferenced: recycle the object so the
                # next env.timeout() call skips allocation entirely.
                pool.append(event)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Convenience: spawn ``generator`` and run; returns its value."""
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError("process did not finish before the run ended")
        if not proc.ok:
            raise proc.value
        return proc.value
