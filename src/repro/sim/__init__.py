"""Discrete-event simulation kernel."""

from .engine import AllOf, AnyOf, Environment, Event, Process, SimulationError, Timeout
from .queues import BoundedQueue, CountingResource
from .watchdog import SimStalledError, StallDiagnosis, Watchdog

__all__ = ["AllOf", "AnyOf", "Environment", "Event", "Process",
           "SimulationError", "Timeout", "BoundedQueue", "CountingResource",
           "SimStalledError", "StallDiagnosis", "Watchdog"]
