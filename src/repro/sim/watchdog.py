"""Stall detection and diagnosis for the simulation kernel.

A wedged simulation fails in one of two ways:

* **Livelock** — the schedule keeps firing events (retries, polling loops,
  ping-ponging messages) but no processor retires another reference.  The
  run loop would spin forever.
* **Deadlock** — a cyclic wait (e.g. two bounded queues whose producers each
  block on the other) drains the event schedule entirely while the workload
  is still incomplete.  ``env.run()`` returns, but the machine never
  finished.

:class:`Watchdog` covers both: attached to an :class:`Environment` it routes
``run()`` through an instrumented loop that checks a configurable event /
virtual-time budget against a caller-supplied forward-progress counter, and
:meth:`Watchdog.check_complete` turns a drained-but-unfinished run into the
same typed error.  Either path raises :class:`SimStalledError` carrying a
:class:`StallDiagnosis` — per-queue occupancy high-water marks, blocked
process wait edges, and the oldest in-flight message per node — instead of
hanging pytest forever.

The instrumented loop dispatches events in exactly the same order as the
fast loop in :mod:`repro.sim.engine` (it only skips the object-pooling fast
paths), so results with a watchdog attached are byte-identical to results
without one.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .engine import Environment, Event, Process, SimulationError
from .queues import BoundedQueue, CountingResource

__all__ = ["Watchdog", "SimStalledError", "StallDiagnosis", "diagnose",
           "trace_tail"]

#: Default no-progress event budget.  Full app runs dispatch tens of events
#: per memory reference, so two million events without a single reference
#: retiring is far beyond any legitimate protocol excursion.
DEFAULT_EVENT_BUDGET = 2_000_000
#: How many dispatched events between watchdog checks.
DEFAULT_CHECK_INTERVAL = 4096

_NODE_PATTERN = re.compile(r"\[(\d+)\]")


class SimStalledError(SimulationError):
    """The simulation stopped making forward progress (livelock or
    deadlock).  ``diagnosis`` holds the structured machine state."""

    def __init__(self, diagnosis: "StallDiagnosis"):
        self.diagnosis = diagnosis
        super().__init__(diagnosis.render())


@dataclass
class StallDiagnosis:
    """Structured snapshot of a stalled simulation."""

    reason: str
    sim_time: float
    events_dispatched: int
    progress: Optional[int] = None
    #: One entry per registered BoundedQueue/CountingResource: occupancy,
    #: high-water marks, and the names of processes blocked on it.
    queues: List[Dict[str, Any]] = field(default_factory=list)
    #: ``{"process": name, "queue": name, "op": "put"|"get"|"acquire"}`` for
    #: every process blocked on a queue or resource.
    wait_edges: List[Dict[str, str]] = field(default_factory=list)
    #: Per node: the oldest (lowest-uid) message sitting in any of its
    #: queues — usually the transaction the machine is wedged on.
    oldest_messages: List[Dict[str, Any]] = field(default_factory=list)
    #: When the stalled run was traced (``env._tracer`` attached): the
    #: oldest in-flight transactions with their recent span tails.
    trace_tail: List[Dict[str, Any]] = field(default_factory=list)
    artifact_path: Optional[str] = None

    @property
    def offending_queues(self) -> List[str]:
        """Queues implicated in the stall: anything with a blocked process
        or undrained items."""
        names = []
        for entry in self.queues:
            if entry.get("blocked_putters") or entry.get("blocked_getters") \
                    or entry.get("blocked_acquirers") or entry.get("depth"):
                names.append(entry["name"])
        return names

    def to_dict(self) -> Dict[str, Any]:
        return {
            "reason": self.reason,
            "sim_time": self.sim_time,
            "events_dispatched": self.events_dispatched,
            "progress": self.progress,
            "queues": self.queues,
            "wait_edges": self.wait_edges,
            "oldest_messages": self.oldest_messages,
            "trace_tail": self.trace_tail,
        }

    def render(self) -> str:
        lines = [
            f"simulation stalled at t={self.sim_time:g} "
            f"after {self.events_dispatched} events: {self.reason}",
        ]
        offending = self.offending_queues
        if offending:
            lines.append("offending queues: " + ", ".join(offending))
        for edge in self.wait_edges:
            lines.append(
                f"  blocked: {edge['process']} waiting to "
                f"{edge['op']} {edge['queue']}")
        for entry in self.oldest_messages:
            lines.append(
                f"  node {entry['node']}: oldest in-flight message "
                f"{entry['message']} (uid={entry['uid']}, in {entry['queue']})")
        for txn in self.trace_tail:
            lines.append(
                f"  traced txn: node {txn['node']} {txn['kind']} "
                f"{txn['line']} (age {txn['age']:g} cycles)")
            for label in txn.get("tail", ()):
                lines.append(f"    {label}")
        if self.artifact_path:
            lines.append(f"  full diagnosis written to {self.artifact_path}")
        return "\n".join(lines)


def _callback_owner_name(callback) -> Optional[str]:
    """Best-effort name for the agent behind a resume callback: a Process's
    name, a state machine's ``name`` attribute (callback core), or — for
    one-shot guard objects like the inbox arbiter — the name behind the
    continuation they schedule."""
    owner = getattr(callback, "__self__", None)
    if owner is None:
        inner = getattr(callback, "callback", None)
        if inner is not None:
            owner = getattr(inner, "__self__", inner)
        else:
            owner = callback
    name = getattr(owner, "name", None)
    return name if isinstance(name, str) and name else None


def _waiter_names(waiters) -> List[str]:
    """Names of the processes/state machines blocked on ``waiters``.

    A waiter deque entry is either a pending :class:`Event` (coroutine form —
    the blocked party's resume sits on its callbacks), a plain callable
    (callback core — the blocked party *is* the continuation), or ``None``
    (a fire-and-forget ``put_drop`` with nobody to name)."""
    names = []
    for waiter in waiters:
        if waiter is None:
            continue
        if isinstance(waiter, Event):
            for callback in waiter.callbacks or ():
                owner = getattr(callback, "__self__", None)
                if isinstance(owner, Process):
                    names.append(owner.name)
                else:
                    name = _callback_owner_name(callback)
                    if name is not None:
                        names.append(name)
        else:
            name = _callback_owner_name(waiter)
            if name is not None:
                names.append(name)
    return names


def _queue_message(item: Any):
    """Extract the protocol message from a queue item (queues carry either
    bare messages or ``(message, ...)`` bundles)."""
    candidate = item[0] if isinstance(item, tuple) and item else item
    return candidate if hasattr(candidate, "uid") else None


def trace_tail(env: Environment, line_addr: Optional[int] = None,
               limit: int = 4) -> List[Dict[str, Any]]:
    """Recent span tails of the oldest in-flight transactions — the same
    view a traced stall attaches to :class:`StallDiagnosis`, reusable by
    any diagnostic (the coherence checker attaches it to
    :class:`~repro.common.errors.CoherenceViolation`).  ``line_addr``
    filters to one line's transactions (falling back to the unfiltered
    tail when none match, so a violation never loses its context); an
    untraced run returns ``[]``."""
    tracer = getattr(env, "_tracer", None)
    if tracer is None:
        return []
    tail = tracer.in_flight_tail(limit=limit)
    if line_addr is not None:
        needle = f"{line_addr:#x}"
        matching = [txn for txn in tail if txn.get("line") == needle]
        if matching:
            return matching
    return tail


def diagnose(env: Environment, reason: str, events_dispatched: int = 0,
             progress: Optional[int] = None) -> StallDiagnosis:
    """Snapshot every registered queue/resource of ``env`` into a
    :class:`StallDiagnosis`."""
    diagnosis = StallDiagnosis(
        reason=reason, sim_time=env.now,
        events_dispatched=events_dispatched, progress=progress,
    )
    oldest_per_node: Dict[int, Dict[str, Any]] = {}
    for queue in getattr(env, "_queues", ()):
        if isinstance(queue, BoundedQueue):
            putters = _waiter_names(event for event, _item in queue._putters)
            getters = _waiter_names(queue._getters)
            entry = {
                "name": queue.name or repr(queue),
                "kind": "queue",
                "depth": len(queue),
                "capacity": queue.capacity,
                "peak_depth": queue.peak_depth,
                "total_puts": queue.total_puts,
                "full_stalls": queue.full_stalls,
                "blocked_putters": putters,
                "blocked_getters": getters,
            }
            for name, op in ((putters, "put"), (getters, "get")):
                for process_name in name:
                    diagnosis.wait_edges.append(
                        {"process": process_name, "queue": entry["name"],
                         "op": op})
            match = _NODE_PATTERN.search(queue.name or "")
            if match is not None:
                node = int(match.group(1))
                for item in queue._items:
                    message = _queue_message(item)
                    if message is None:
                        continue
                    seen = oldest_per_node.get(node)
                    if seen is None or message.uid < seen["uid"]:
                        oldest_per_node[node] = {
                            "node": node, "queue": entry["name"],
                            "uid": message.uid, "message": repr(message),
                        }
        elif isinstance(queue, CountingResource):
            acquirers = _waiter_names(queue._waiters)
            entry = {
                "name": queue.name or repr(queue),
                "kind": "resource",
                "in_use": queue.in_use,
                "count": queue.count,
                "peak_in_use": queue.peak_in_use,
                "acquire_stalls": queue.acquire_stalls,
                "blocked_acquirers": acquirers,
            }
            for process_name in acquirers:
                diagnosis.wait_edges.append(
                    {"process": process_name, "queue": entry["name"],
                     "op": "acquire"})
        else:  # pragma: no cover - future queue kinds
            continue
        diagnosis.queues.append(entry)
    diagnosis.oldest_messages = [
        oldest_per_node[node] for node in sorted(oldest_per_node)
    ]
    tracer = getattr(env, "_tracer", None)
    if tracer is not None:
        diagnosis.trace_tail = tracer.in_flight_tail()
    return diagnosis


class Watchdog:
    """No-forward-progress detector for one :class:`Environment`.

    Parameters
    ----------
    event_budget:
        Raise after this many dispatched events without progress (None
        disables the event budget).
    time_budget:
        Raise after this many simulated cycles without progress (None
        disables the virtual-time budget).
    check_interval:
        Dispatched events between checks; smaller catches stalls sooner at
        slightly more overhead.
    progress_fn:
        Zero-argument callable returning a monotonically-increasing counter
        (e.g. total references retired).  Any change resets both budgets.
        With no ``progress_fn`` the budgets are absolute run limits.
    stall_dir:
        Directory for the JSON stall-diagnosis artifact (defaults to the
        ``REPRO_STALL_DIR`` environment variable; unset means no artifact).

    Constructing a watchdog attaches it to the environment: subsequent
    ``env.run()`` calls use the instrumented (order-identical) loop.
    """

    def __init__(
        self,
        env: Environment,
        event_budget: Optional[int] = DEFAULT_EVENT_BUDGET,
        time_budget: Optional[float] = None,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        progress_fn: Optional[Callable[[], int]] = None,
        stall_dir: Optional[str] = None,
    ):
        if event_budget is not None and event_budget < 1:
            raise SimulationError(f"event_budget must be >= 1, got {event_budget}")
        if time_budget is not None and time_budget <= 0:
            raise SimulationError(f"time_budget must be > 0, got {time_budget}")
        self.env = env
        self.event_budget = event_budget
        self.time_budget = time_budget
        self.check_interval = max(1, int(check_interval))
        self.progress_fn = progress_fn
        self.stall_dir = stall_dir
        self.events_dispatched = 0
        self._last_progress: Optional[int] = None
        self._events_at_progress = 0
        self._time_at_progress = env.now
        env.attach_watchdog(self)

    def check(self) -> None:
        """Called by the instrumented run loop every ``check_interval``
        events; raises :class:`SimStalledError` when a budget is exhausted
        without forward progress."""
        if self.progress_fn is not None:
            progress = self.progress_fn()
            if progress != self._last_progress:
                self._last_progress = progress
                self._events_at_progress = self.events_dispatched
                self._time_at_progress = self.env.now
                return
        if (
            self.event_budget is not None
            and self.events_dispatched - self._events_at_progress
            >= self.event_budget
        ):
            raise self.stalled(
                f"no forward progress in {self.event_budget} dispatched "
                "events (livelock?)")
        if (
            self.time_budget is not None
            and self.env.now - self._time_at_progress >= self.time_budget
        ):
            raise self.stalled(
                f"no forward progress in {self.time_budget:g} simulated "
                "cycles (livelock?)")

    def check_complete(self, event: Optional[Event],
                       what: str = "the workload") -> None:
        """After ``env.run()`` returns, raise if ``event`` (the completion
        event) never fired: the schedule drained with processes still
        blocked — a deadlock."""
        if event is not None and not event.triggered:
            raise self.stalled(
                f"event schedule drained before {what} completed "
                "(cyclic wait / deadlock)")

    def run(self, until: Optional[float] = None,
            complete: Optional[Event] = None) -> float:
        """Convenience: ``env.run(until)`` followed by
        :meth:`check_complete`."""
        result = self.env.run(until=until)
        self.check_complete(complete)
        return result

    def stalled(self, reason: str) -> SimStalledError:
        """Build the full diagnosis (and artifact, if configured) for a
        detected stall; returns the exception for the caller to raise."""
        diagnosis = diagnose(
            self.env, reason, events_dispatched=self.events_dispatched,
            progress=self._last_progress)
        diagnosis.artifact_path = self._dump(diagnosis)
        return SimStalledError(diagnosis)

    def _dump(self, diagnosis: StallDiagnosis) -> Optional[str]:
        directory = self.stall_dir or os.environ.get("REPRO_STALL_DIR")
        if not directory:
            return None
        try:
            os.makedirs(directory, exist_ok=True)
            base = f"stall-{os.getpid()}"
            path = os.path.join(directory, f"{base}.json")
            suffix = 0
            while os.path.exists(path):
                suffix += 1
                path = os.path.join(directory, f"{base}-{suffix}.json")
            with open(path, "w") as fh:
                json.dump(diagnosis.to_dict(), fh, indent=2, sort_keys=True)
            tracer = getattr(self.env, "_tracer", None)
            if tracer is not None:
                # A traced stall also dumps the Chrome trace next to the
                # diagnosis, so "why is it wedged" opens in a timeline.
                trace_path = path[:-5] + "-trace.json"
                with open(trace_path, "w") as fh:
                    json.dump(tracer.to_trace_events(), fh)
            return path
        except OSError:  # diagnosis must never mask the stall itself
            return None
