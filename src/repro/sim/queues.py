"""Blocking queues and counting resources for the simulation kernel.

These model MAGIC's bounded queues (Table 3.1 of the paper): a full queue
stalls the producer, an empty queue stalls the consumer.  ``capacity=None``
gives an unbounded queue, which is how the ideal machine's "infinite depth
for all network and memory system queues" is expressed.

``put``/``get``/``acquire`` are on the per-message hot path, so the common
no-stall cases trigger their events inline (the event is created pending and
completed immediately, exactly as ``Event.succeed`` would, but without the
extra calls), and event objects are drawn from the environment's recycled
event pool when one is available.  Scheduling order is identical to the
call-based form.

Every blocking operation also has a *callback form* (``put_cb``/``get_cb``/
``acquire_cb``) used by the callback-core subsystems: instead of returning an
event to wait on, the continuation is scheduled as a bare ``(callback, value)``
tuple at exactly the ready-deque position where the event would have fired,
so coroutine and callback consumers can share a queue with identical
dispatch order.  Waiter deques may therefore hold either pending
:class:`Event` objects or plain callables; the wake paths dispatch on the
concrete type.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Any, Callable, Deque, Optional

from .engine import NO_ARG, PENDING, Environment, Event, SimulationError

__all__ = ["BoundedQueue", "CountingResource", "node_of_queue"]

_NODE_SUFFIX = re.compile(r"\[(\d+)\]")


def node_of_queue(queue) -> Optional[int]:
    """Owning node id parsed from a queue/resource name (``pi.in[3]`` -> 3);
    None for machine-global queues.  Used by stall diagnosis and the
    time-series sampler — never on the put/get hot path."""
    match = _NODE_SUFFIX.search(queue.name or "")
    return int(match.group(1)) if match is not None else None


class BoundedQueue:
    """FIFO queue with blocking ``put``/``get`` expressed as events.

    ``put(item)`` returns an event that fires once the item has been accepted
    (immediately if there is space).  ``get()`` returns an event whose value
    is the item, firing once one is available.  Waiters are served in FIFO
    order, so the queue is fair and deterministic.
    """

    __slots__ = (
        "env", "capacity", "name", "_items", "_getters", "_putters",
        "total_puts", "full_stalls", "peak_depth",
    )

    def __init__(self, env: Environment, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"queue capacity must be >= 1 or None, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque = deque()  # (event, item)
        # Statistics.
        self.total_puts = 0
        self.full_stalls = 0  # puts that had to wait for space
        self.peak_depth = 0
        env._queues.append(self)  # registry for stall diagnosis (watchdog)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        env = self.env
        pool = env._event_pool
        if pool:
            # Reset a recycled event (same fields Event.__init__ sets).
            event = pool.pop()
            event._value = PENDING
            event._ok = True
        else:
            event = Event(env)
        self.total_puts += 1
        items = self._items
        getters = self._getters
        if getters and not items:
            # Hand the item straight to the oldest waiting consumer.
            getter = getters.popleft()
            if getter.__class__ is Event:
                getter.succeed(item)
            else:
                env._ready.append((getter, item))
            event._value = None  # succeed(None), inlined
            env._ready.append(event)
        elif self.capacity is None or len(items) < self.capacity:
            items.append(item)
            if len(items) > self.peak_depth:
                self.peak_depth = len(items)
            event._value = None  # succeed(None), inlined
            env._ready.append(event)
        else:
            self.full_stalls += 1
            self._putters.append((event, item))
        return event

    def put_cb(self, item: Any, callback: Callable[[], None]) -> None:
        """Callback form of :meth:`put`: ``callback()`` is scheduled at
        exactly the ready position where the put event would have fired."""
        env = self.env
        self.total_puts += 1
        items = self._items
        getters = self._getters
        if getters and not items:
            getter = getters.popleft()
            if getter.__class__ is Event:
                getter.succeed(item)
            else:
                env._ready.append((getter, item))
            env._ready.append((callback, NO_ARG))
        elif self.capacity is None or len(items) < self.capacity:
            items.append(item)
            if len(items) > self.peak_depth:
                self.peak_depth = len(items)
            env._ready.append((callback, NO_ARG))
        else:
            self.full_stalls += 1
            self._putters.append((callback, item))

    def put_drop(self, item: Any) -> None:
        """Fire-and-forget :meth:`put`: identical admission semantics, but no
        completion notification is scheduled (the event a plain ``put`` would
        have fired carries no callbacks in these call sites, so dropping it
        removes a no-op dispatch without reordering anything else)."""
        env = self.env
        self.total_puts += 1
        items = self._items
        getters = self._getters
        if getters and not items:
            getter = getters.popleft()
            if getter.__class__ is Event:
                getter.succeed(item)
            else:
                env._ready.append((getter, item))
        elif self.capacity is None or len(items) < self.capacity:
            items.append(item)
            if len(items) > self.peak_depth:
                self.peak_depth = len(items)
        else:
            self.full_stalls += 1
            self._putters.append((None, item))

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False (and drops nothing) when full."""
        if self.is_full and not (self._getters and not self._items):
            return False
        self.put(item)
        return True

    def get(self) -> Event:
        env = self.env
        pool = env._event_pool
        if pool:
            event = pool.pop()
            event._value = PENDING
            event._ok = True
        else:
            event = Event(env)
        items = self._items
        if items:
            item = items.popleft()
            # A waiting putter is admitted (and its event triggered) before
            # the getter's own event, exactly as in the call-based form
            # (_admit_waiting_putter, inlined: put stalls are rare, so the
            # common case is a single falsy deque check).
            if self._putters and not self.is_full:
                self._admit_waiting_putter()
            event._value = item  # succeed(item), inlined
            env._ready.append(event)
        else:
            self._getters.append(event)
        return event

    def get_cb(self, callback: Callable[[Any], None]) -> None:
        """Callback form of :meth:`get`: ``callback(item)`` is scheduled at
        exactly the ready position where the get event would have fired."""
        items = self._items
        if items:
            item = items.popleft()
            if self._putters and not self.is_full:
                self._admit_waiting_putter()
            self.env._ready.append((callback, item))
        else:
            self._getters.append(callback)

    def _admit_waiting_putter(self) -> None:
        putter, item = self._putters.popleft()
        self._items.append(item)
        if len(self._items) > self.peak_depth:
            self.peak_depth = len(self._items)
        if putter.__class__ is Event:
            putter.succeed(None)
        elif putter is not None:
            self.env._ready.append((putter, NO_ARG))


class CountingResource:
    """A pool of ``count`` identical units (e.g. MAGIC's 16 data buffers).

    ``acquire()`` yields an event that fires when a unit is available;
    ``release()`` returns a unit to the pool.  FIFO granting order.
    """

    __slots__ = (
        "env", "count", "name", "_in_use", "_waiters",
        "total_acquires", "acquire_stalls", "peak_in_use",
    )

    def __init__(self, env: Environment, count: Optional[int], name: str = ""):
        if count is not None and count < 1:
            raise SimulationError(f"resource count must be >= 1 or None, got {count}")
        self.env = env
        self.count = count
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self.total_acquires = 0
        self.acquire_stalls = 0
        self.peak_in_use = 0
        env._queues.append(self)  # registry for stall diagnosis (watchdog)

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> Optional[int]:
        if self.count is None:
            return None
        return self.count - self._in_use

    def acquire(self) -> Event:
        env = self.env
        pool = env._event_pool
        if pool:
            event = pool.pop()
            event._value = PENDING
            event._ok = True
        else:
            event = Event(env)
        self.total_acquires += 1
        if self.count is None or self._in_use < self.count:
            self._in_use += 1
            if self._in_use > self.peak_in_use:
                self.peak_in_use = self._in_use
            event._value = None  # succeed(None), inlined
            env._ready.append(event)
        else:
            self.acquire_stalls += 1
            self._waiters.append(event)
        return event

    def acquire_cb(self, callback: Callable[[], None]) -> None:
        """Callback form of :meth:`acquire`: ``callback()`` is scheduled at
        exactly the ready position where the acquire event would have
        fired."""
        self.total_acquires += 1
        if self.count is None or self._in_use < self.count:
            self._in_use += 1
            if self._in_use > self.peak_in_use:
                self.peak_in_use = self._in_use
            self.env._ready.append((callback, NO_ARG))
        else:
            self.acquire_stalls += 1
            self._waiters.append(callback)

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the unit straight to the oldest waiter; _in_use unchanged.
            waiter = self._waiters.popleft()
            if waiter.__class__ is Event:
                waiter.succeed(None)
            else:
                self.env._ready.append((waiter, NO_ARG))
        else:
            self._in_use -= 1
