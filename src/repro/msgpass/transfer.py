"""Block-transfer message passing.

FLASH integrates message passing with cache coherence by running *transfer
handlers* on the same protocol processor ([HGD+94], referenced by Section 1;
the data transfer logic's pipelined buffers make "the latency of a data
transfer independent of the transfer size", Section 2).  This module
implements that mechanism:

* the sending processor posts a send descriptor (``('s', dst, addr, nbytes)``
  in the op stream) and continues computing;
* the sender's controller runs a setup handler, then streams the payload a
  cache line at a time: each line is read from local memory (consuming
  memory bandwidth and a data buffer) and injected into the network, with a
  short per-line PP handler programming the data transfer logic;
* the receiver's controller writes each arriving line to its memory and, on
  the final line, posts a completion the receiving processor can wait on
  (``('v', src)``).

On the ideal machine the same transfers run with zero controller occupancy —
the per-line memory and network costs remain, so comparing the two isolates
the flexibility cost of *message passing*, complementing the paper's
cache-coherence study.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..common.units import CACHE_LINE_BYTES
from ..protocol.messages import Message, MessageType as MT
from ..sim.engine import Environment, Event

__all__ = ["TransferDomain", "XFER_SETUP_COST", "XFER_PER_LINE_COST",
           "XFER_RECEIVE_COST", "XFER_DONE_COST"]

# PP handler occupancies for the transfer path, in cycles.  The setup handler
# parses the descriptor and programs the data transfer logic; per-line
# handlers are short because the hardwired datapath moves the bytes.
XFER_SETUP_COST = 16
XFER_PER_LINE_COST = 4
XFER_RECEIVE_COST = 6     # receiver: write line to memory, bump counters
XFER_DONE_COST = 8        # receiver: final accounting + CPU notification


class _Mailbox:
    """Arrival bookkeeping for one (receiver, sender) channel."""

    __slots__ = ("completions", "waiters")

    def __init__(self) -> None:
        self.completions = 0
        self.waiters = []


class TransferDomain:
    """Machine-wide registry of in-flight block transfers."""

    def __init__(self, env: Environment):
        self.env = env
        self._mailboxes: Dict[Tuple[int, int], _Mailbox] = {}
        self._incoming: Dict[Tuple[int, int, int], int] = {}  # lines left
        self.transfers_started = 0
        self.transfers_completed = 0
        self.lines_moved = 0

    @staticmethod
    def lines_for(nbytes: int) -> int:
        return max(1, (nbytes + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES)

    def _mailbox(self, receiver: int, sender: int) -> _Mailbox:
        key = (receiver, sender)
        box = self._mailboxes.get(key)
        if box is None:
            box = _Mailbox()
            self._mailboxes[key] = box
        return box

    # -- sender side -----------------------------------------------------------

    def start(self, message: Message) -> int:
        """Register an outgoing transfer; returns the number of lines."""
        self.transfers_started += 1
        return self.lines_for(message.nbytes)

    # -- receiver side ----------------------------------------------------------

    def line_arrived(self, message: Message) -> bool:
        """Account one payload line; True when it was the last one."""
        key = (message.dst, message.src, message.uid)
        self.lines_moved += 1
        left = self._incoming.get(key)
        if left is None:
            left = self.lines_for(message.nbytes)
        left -= 1
        if left <= 0:
            self._incoming.pop(key, None)
            return True
        self._incoming[key] = left
        return False

    def complete(self, receiver: int, sender: int) -> None:
        """The final line landed: wake any waiting receive."""
        self.transfers_completed += 1
        box = self._mailbox(receiver, sender)
        box.completions += 1
        if box.waiters and box.completions > 0:
            box.completions -= 1
            box.waiters.pop(0).succeed()

    def receive(self, receiver: int, sender: int) -> Event:
        """Event for a ('v', sender) op: fires when a transfer has fully
        arrived (immediately, if one already has)."""
        box = self._mailbox(receiver, sender)
        event = Event(self.env)
        if box.completions > 0:
            box.completions -= 1
            event.succeed()
        else:
            box.waiters.append(event)
        return event
