"""Block-transfer message passing (the [HGD+94] mechanism)."""

from .transfer import TransferDomain

__all__ = ["TransferDomain"]
