"""Miss Status Holding Registers for the compute processor.

The paper's processor supports up to 4 outstanding cache misses, merges a
write into an outstanding miss to the same line, and stalls a write whose
line maps to the same cache index as — but has a different tag than — an
outstanding miss (Section 3.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .setassoc import SetAssocCache

__all__ = ["MSHREntry", "MSHRFile"]


class MSHREntry:
    """One outstanding miss."""

    __slots__ = (
        "line_addr", "is_write", "issue_time", "merged_writes", "waiters",
        "invalidate_on_fill", "needs_upgrade",
    )

    def __init__(self, line_addr: int, is_write: bool, issue_time: float):
        self.line_addr = line_addr
        self.is_write = is_write
        self.issue_time = issue_time
        self.merged_writes = 0
        self.waiters: List = []  # events to trigger on completion
        # An invalidation raced past the reply: install then drop the line.
        self.invalidate_on_fill = False
        # A write merged into an outstanding read: upgrade after the fill.
        self.needs_upgrade = False


class MSHRFile:
    """A small fully-associative file of outstanding misses."""

    def __init__(self, capacity: int, cache: SetAssocCache):
        self.capacity = capacity
        self._cache = cache
        self._entries: Dict[int, MSHREntry] = {}
        self.peak_outstanding = 0
        self.total_allocations = 0
        self.total_merges = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, line_addr: int) -> Optional[MSHREntry]:
        return self._entries.get(line_addr)

    def index_conflict(self, line_addr: int) -> bool:
        """True when an outstanding miss maps to the same cache index but a
        different tag — the case that stalls even a non-blocking write."""
        index = self._cache.set_index(line_addr)
        for other in self._entries:
            if other != line_addr and self._cache.set_index(other) == index:
                return True
        return False

    def allocate(self, line_addr: int, is_write: bool, now: float) -> MSHREntry:
        if line_addr in self._entries:
            raise KeyError(f"duplicate MSHR for line {line_addr:#x}")
        if self.is_full:
            raise OverflowError("MSHR file full")
        entry = MSHREntry(line_addr, is_write, now)
        self._entries[line_addr] = entry
        self.total_allocations += 1
        self.peak_outstanding = max(self.peak_outstanding, len(self._entries))
        return entry

    def merge_write(self, line_addr: int) -> MSHREntry:
        entry = self._entries[line_addr]
        entry.merged_writes += 1
        self.total_merges += 1
        return entry

    def complete(self, line_addr: int) -> MSHREntry:
        """Retire the miss; caller fires ``entry.waiters``."""
        return self._entries.pop(line_addr)

    def outstanding_lines(self) -> List[int]:
        return list(self._entries)
