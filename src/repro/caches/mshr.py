"""Miss Status Holding Registers for the compute processor.

The paper's processor supports up to 4 outstanding cache misses, merges a
write into an outstanding miss to the same line, and stalls a write whose
line maps to the same cache index as — but has a different tag than — an
outstanding miss (Section 3.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .setassoc import SetAssocCache

__all__ = ["MSHREntry", "MSHRFile"]


class MSHREntry:
    """One outstanding miss."""

    __slots__ = (
        "line_addr", "is_write", "issue_time", "merged_writes", "waiters",
        "invalidate_on_fill", "needs_upgrade",
    )

    def __init__(self, line_addr: int, is_write: bool, issue_time: float):
        self.line_addr = line_addr
        self.is_write = is_write
        self.issue_time = issue_time
        self.merged_writes = 0
        self.waiters: List = []  # events to trigger on completion
        # An invalidation raced past the reply: install then drop the line.
        self.invalidate_on_fill = False
        # A write merged into an outstanding read: upgrade after the fill.
        self.needs_upgrade = False

    def describe(self) -> Dict[str, object]:
        """Machine-readable snapshot for invariant walks and stall dumps."""
        return {
            "line": f"{self.line_addr:#x}",
            "kind": "write" if self.is_write else "read",
            "issued": self.issue_time,
            "merged_writes": self.merged_writes,
            "waiters": len(self.waiters),
            "invalidate_on_fill": self.invalidate_on_fill,
            "needs_upgrade": self.needs_upgrade,
        }


class MSHRFile:
    """A small fully-associative file of outstanding misses.

    ``entries`` (line address -> entry) is deliberately public: the CPU's
    hit-run inner loop binds ``entries.get`` once and probes it per
    reference without a method call.
    """

    __slots__ = (
        "capacity", "_cache", "entries",
        "peak_outstanding", "total_allocations", "total_merges",
        "full_stalls", "conflict_stalls",
    )

    def __init__(self, capacity: int, cache: SetAssocCache):
        self.capacity = capacity
        self._cache = cache
        self.entries: Dict[int, MSHREntry] = {}
        self.peak_outstanding = 0
        self.total_allocations = 0
        self.total_merges = 0
        # Stall counters, incremented by the CPU when a reference actually
        # blocks on a full file / an index conflict (Section 3.2).
        self.full_stalls = 0
        self.conflict_stalls = 0

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def is_full(self) -> bool:
        return len(self.entries) >= self.capacity

    def lookup(self, line_addr: int) -> Optional[MSHREntry]:
        return self.entries.get(line_addr)

    def index_conflict(self, line_addr: int) -> bool:
        """True when an outstanding miss maps to the same cache index but a
        different tag — the case that stalls even a non-blocking write."""
        shift = self._cache.line_shift
        mask = self._cache.set_mask
        index = (line_addr >> shift) & mask
        for other in self.entries:
            if other != line_addr and ((other >> shift) & mask) == index:
                return True
        return False

    def allocate(self, line_addr: int, is_write: bool, now: float) -> MSHREntry:
        if line_addr in self.entries:
            raise KeyError(f"duplicate MSHR for line {line_addr:#x}")
        if self.is_full:
            raise OverflowError("MSHR file full")
        entry = MSHREntry(line_addr, is_write, now)
        self.entries[line_addr] = entry
        self.total_allocations += 1
        self.peak_outstanding = max(self.peak_outstanding, len(self.entries))
        return entry

    def merge_write(self, line_addr: int) -> MSHREntry:
        entry = self.entries[line_addr]
        entry.merged_writes += 1
        self.total_merges += 1
        return entry

    def complete(self, line_addr: int) -> MSHREntry:
        """Retire the miss; caller fires ``entry.waiters``."""
        return self.entries.pop(line_addr)

    def outstanding_lines(self) -> List[int]:
        return list(self.entries)
