"""Set-associative caches and miss status holding registers."""

from .mshr import MSHREntry, MSHRFile
from .setassoc import CacheState, CacheStats, SetAssocCache

__all__ = ["MSHREntry", "MSHRFile", "CacheState", "CacheStats", "SetAssocCache"]
