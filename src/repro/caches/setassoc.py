"""Set-associative cache with LRU replacement.

Used for the processor's secondary cache (coherence states INVALID / SHARED /
DIRTY) and, with plain valid/dirty states, for the MAGIC data cache.  The
cache tracks *presence and state* only — the simulator never needs data
values, just like a timing-accurate trace-driven simulator.

Address decomposition is pure shift/mask arithmetic: ``line_bytes`` and
``n_sets`` are validated as powers of two at :class:`CacheConfig`
construction, so the per-reference hot path (``access``) is a single dict
pop/insert with precomputed shifts — no division, no separate
``state_of``/``touch`` round trips.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..common.errors import ConfigError
from ..common.params import CacheConfig

__all__ = ["CacheState", "SetAssocCache", "CacheStats"]


class CacheState:
    """Line states.  SHARED = clean, readable; DIRTY = modified, exclusive."""

    INVALID = "I"
    SHARED = "S"
    DIRTY = "M"


class CacheStats:
    """Hit/miss counters for one cache."""

    __slots__ = (
        "read_hits", "read_misses", "write_hits", "write_misses",
        "evictions_clean", "evictions_dirty", "invalidations_received",
    )

    def __init__(self) -> None:
        self.read_hits = 0
        self.read_misses = 0
        self.write_hits = 0
        self.write_misses = 0
        self.evictions_clean = 0
        self.evictions_dirty = 0
        self.invalidations_received = 0

    @property
    def references(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        refs = self.references
        return self.misses / refs if refs else 0.0

    @property
    def read_miss_rate(self) -> float:
        reads = self.read_hits + self.read_misses
        return self.read_misses / reads if reads else 0.0

    # -- aggregation / serialization ------------------------------------------

    def to_dict(self) -> Dict[str, int]:
        """Plain-dict counter snapshot (profile report, cache round-trips)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, state: Dict[str, int]) -> "CacheStats":
        stats = cls()
        for slot in cls.__slots__:
            setattr(stats, slot, state[slot])
        return stats

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Accumulate another cache's counters into this one (in place)."""
        for slot in self.__slots__:
            setattr(self, slot, getattr(self, slot) + getattr(other, slot))
        return self


class SetAssocCache:
    """LRU set-associative cache keyed by *line address* (byte address of the
    first byte of the line)."""

    __slots__ = (
        "config", "name", "line_bytes", "n_sets", "associativity",
        "line_shift", "set_mask", "tag_shift", "set_span", "_sets", "stats",
    )

    def __init__(self, config: CacheConfig, name: str = "cache"):
        if config.associativity < 1:
            raise ConfigError("associativity must be >= 1")
        self.config = config
        self.name = name
        self.line_bytes = config.line_bytes
        self.n_sets = config.n_sets
        self.associativity = config.associativity
        # Shift/mask geometry (powers of two guaranteed by CacheConfig).
        self.line_shift = self.line_bytes.bit_length() - 1
        self.set_mask = self.n_sets - 1
        self.tag_shift = self.line_shift + (self.n_sets.bit_length() - 1)
        #: Byte span of one full pass over the sets (line_bytes * n_sets):
        #: the stride between two addresses that share a set index.
        self.set_span = self.line_bytes * self.n_sets
        # Each set: ordered dict-like list of (tag, state); index 0 = MRU.
        self._sets: List[Dict[int, str]] = [dict() for _ in range(self.n_sets)]
        self.stats = CacheStats()

    # -- address helpers ------------------------------------------------------

    def line_address(self, address: int) -> int:
        return (address >> self.line_shift) << self.line_shift

    def set_index(self, line_addr: int) -> int:
        return (line_addr >> self.line_shift) & self.set_mask

    def tag_of(self, line_addr: int) -> int:
        return line_addr >> self.tag_shift

    # -- state queries ---------------------------------------------------------

    def state_of(self, line_addr: int) -> str:
        """Current state of the line; INVALID when absent."""
        cache_set = self._sets[(line_addr >> self.line_shift) & self.set_mask]
        return cache_set.get(line_addr >> self.tag_shift, CacheState.INVALID)

    def contains(self, line_addr: int) -> bool:
        return self.state_of(line_addr) != CacheState.INVALID

    def lines_in_set(self, line_addr: int) -> List[int]:
        """Line addresses resident in the set that ``line_addr`` maps to."""
        index = (line_addr >> self.line_shift) & self.set_mask
        base = index << self.line_shift
        span = self.set_span
        return [tag * span + base for tag in self._sets[index]]

    def set_is_full(self, line_addr: int) -> bool:
        index = (line_addr >> self.line_shift) & self.set_mask
        return len(self._sets[index]) >= self.associativity

    # -- mutation ----------------------------------------------------------------

    def touch(self, line_addr: int) -> None:
        """Mark the line MRU (it must be present)."""
        cache_set = self._sets[(line_addr >> self.line_shift) & self.set_mask]
        tag = line_addr >> self.tag_shift
        state = cache_set.pop(tag)
        cache_set[tag] = state  # re-insert at MRU position (dicts are ordered)

    def access(self, line_addr: int, is_write: bool) -> str:
        """Look up a CPU reference: updates LRU and hit/miss statistics.

        Returns the *pre-access* state.  A write to a SHARED line is counted
        as a write miss (it needs an upgrade); the caller performs the
        coherence action and then updates the state.

        State lookup, LRU update and statistics are fused into one dict
        pop/insert — this is the per-reference fast path.
        """
        cache_set = self._sets[(line_addr >> self.line_shift) & self.set_mask]
        tag = line_addr >> self.tag_shift
        state = cache_set.pop(tag, None)
        stats = self.stats
        if state is None:
            if is_write:
                stats.write_misses += 1
            else:
                stats.read_misses += 1
            return CacheState.INVALID
        cache_set[tag] = state  # MRU
        if not is_write:
            stats.read_hits += 1
        elif state == CacheState.SHARED:
            stats.write_misses += 1  # upgrade required
        else:
            stats.write_hits += 1
        return state

    def rmw_touch(self, line_addr: int) -> bool:
        """Fused hit path of a read-modify-write (the MDC's access pattern):
        if the line is resident, mark it MRU and DIRTY in one dict operation.
        Returns True on a hit; a miss leaves the cache untouched (the caller
        fills).  No statistics are updated (the MDC keeps its own)."""
        cache_set = self._sets[(line_addr >> self.line_shift) & self.set_mask]
        tag = line_addr >> self.tag_shift
        if cache_set.pop(tag, None) is None:
            return False
        cache_set[tag] = CacheState.DIRTY
        return True

    def fill(self, line_addr: int, state: str) -> Optional[Tuple[int, str]]:
        """Install a line; returns ``(victim_line_addr, victim_state)`` if a
        resident line had to be evicted, else None."""
        index = (line_addr >> self.line_shift) & self.set_mask
        tag = line_addr >> self.tag_shift
        cache_set = self._sets[index]
        victim: Optional[Tuple[int, str]] = None
        if (
            cache_set.pop(tag, None) is None
            and len(cache_set) >= self.associativity
        ):
            victim_tag = next(iter(cache_set))  # LRU = oldest insertion
            victim_state = cache_set.pop(victim_tag)
            victim_addr = victim_tag * self.set_span + (index << self.line_shift)
            if victim_state == CacheState.DIRTY:
                self.stats.evictions_dirty += 1
            else:
                self.stats.evictions_clean += 1
            victim = (victim_addr, victim_state)
        cache_set[tag] = state
        return victim

    def set_state(self, line_addr: int, state: str) -> None:
        """Change the state of a resident line (no LRU update)."""
        cache_set = self._sets[(line_addr >> self.line_shift) & self.set_mask]
        tag = line_addr >> self.tag_shift
        if tag not in cache_set:
            raise KeyError(f"line {line_addr:#x} not resident in {self.name}")
        cache_set[tag] = state

    def invalidate(self, line_addr: int) -> str:
        """Remove a line (external invalidation); returns its prior state."""
        cache_set = self._sets[(line_addr >> self.line_shift) & self.set_mask]
        prior = cache_set.pop(line_addr >> self.tag_shift, CacheState.INVALID)
        if prior != CacheState.INVALID:
            self.stats.invalidations_received += 1
        return prior

    # -- inspection -----------------------------------------------------------

    def resident_lines(self) -> Iterator[Tuple[int, str]]:
        span = self.set_span
        shift = self.line_shift
        for index, cache_set in enumerate(self._sets):
            base = index << shift
            for tag, state in cache_set.items():
                yield tag * span + base, state

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
