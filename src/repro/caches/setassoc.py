"""Set-associative cache with LRU replacement.

Used for the processor's secondary cache (coherence states INVALID / SHARED /
DIRTY) and, with plain valid/dirty states, for the MAGIC data cache.  The
cache tracks *presence and state* only — the simulator never needs data
values, just like a timing-accurate trace-driven simulator.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..common.errors import ConfigError
from ..common.params import CacheConfig

__all__ = ["CacheState", "SetAssocCache", "CacheStats"]


class CacheState:
    """Line states.  SHARED = clean, readable; DIRTY = modified, exclusive."""

    INVALID = "I"
    SHARED = "S"
    DIRTY = "M"


class CacheStats:
    """Hit/miss counters for one cache."""

    __slots__ = (
        "read_hits", "read_misses", "write_hits", "write_misses",
        "evictions_clean", "evictions_dirty", "invalidations_received",
    )

    def __init__(self) -> None:
        self.read_hits = 0
        self.read_misses = 0
        self.write_hits = 0
        self.write_misses = 0
        self.evictions_clean = 0
        self.evictions_dirty = 0
        self.invalidations_received = 0

    @property
    def references(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        refs = self.references
        return self.misses / refs if refs else 0.0

    @property
    def read_miss_rate(self) -> float:
        reads = self.read_hits + self.read_misses
        return self.read_misses / reads if reads else 0.0


class SetAssocCache:
    """LRU set-associative cache keyed by *line address* (byte address of the
    first byte of the line)."""

    def __init__(self, config: CacheConfig, name: str = "cache"):
        if config.associativity < 1:
            raise ConfigError("associativity must be >= 1")
        self.config = config
        self.name = name
        self.line_bytes = config.line_bytes
        self.n_sets = config.n_sets
        self.associativity = config.associativity
        # Each set: ordered dict-like list of (tag, state); index 0 = MRU.
        self._sets: List[Dict[int, str]] = [dict() for _ in range(self.n_sets)]
        self.stats = CacheStats()

    # -- address helpers ------------------------------------------------------

    def line_address(self, address: int) -> int:
        return address - (address % self.line_bytes)

    def set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.n_sets

    def tag_of(self, line_addr: int) -> int:
        return line_addr // (self.line_bytes * self.n_sets)

    # -- state queries ---------------------------------------------------------

    def state_of(self, line_addr: int) -> str:
        """Current state of the line; INVALID when absent."""
        cache_set = self._sets[self.set_index(line_addr)]
        return cache_set.get(self.tag_of(line_addr), CacheState.INVALID)

    def contains(self, line_addr: int) -> bool:
        return self.state_of(line_addr) != CacheState.INVALID

    def lines_in_set(self, line_addr: int) -> List[int]:
        """Line addresses resident in the set that ``line_addr`` maps to."""
        index = self.set_index(line_addr)
        base = self.line_bytes * self.n_sets
        return [tag * base + index * self.line_bytes for tag in self._sets[index]]

    def set_is_full(self, line_addr: int) -> bool:
        return len(self._sets[self.set_index(line_addr)]) >= self.associativity

    # -- mutation ----------------------------------------------------------------

    def touch(self, line_addr: int) -> None:
        """Mark the line MRU (it must be present)."""
        index = self.set_index(line_addr)
        tag = self.tag_of(line_addr)
        cache_set = self._sets[index]
        state = cache_set.pop(tag)
        cache_set[tag] = state  # re-insert at MRU position (dicts are ordered)

    def access(self, line_addr: int, is_write: bool) -> str:
        """Look up a CPU reference: updates LRU and hit/miss statistics.

        Returns the *pre-access* state.  A write to a SHARED line is counted
        as a write miss (it needs an upgrade); the caller performs the
        coherence action and then updates the state.
        """
        state = self.state_of(line_addr)
        if state == CacheState.INVALID:
            if is_write:
                self.stats.write_misses += 1
            else:
                self.stats.read_misses += 1
        elif is_write and state == CacheState.SHARED:
            self.stats.write_misses += 1  # upgrade required
            self.touch(line_addr)
        else:
            if is_write:
                self.stats.write_hits += 1
            else:
                self.stats.read_hits += 1
            self.touch(line_addr)
        return state

    def fill(self, line_addr: int, state: str) -> Optional[Tuple[int, str]]:
        """Install a line; returns ``(victim_line_addr, victim_state)`` if a
        resident line had to be evicted, else None."""
        index = self.set_index(line_addr)
        tag = self.tag_of(line_addr)
        cache_set = self._sets[index]
        victim: Optional[Tuple[int, str]] = None
        if tag in cache_set:
            cache_set.pop(tag)
        elif len(cache_set) >= self.associativity:
            victim_tag = next(iter(cache_set))  # LRU = oldest insertion
            victim_state = cache_set.pop(victim_tag)
            victim_addr = victim_tag * self.line_bytes * self.n_sets + index * self.line_bytes
            if victim_state == CacheState.DIRTY:
                self.stats.evictions_dirty += 1
            else:
                self.stats.evictions_clean += 1
            victim = (victim_addr, victim_state)
        cache_set[tag] = state
        return victim

    def set_state(self, line_addr: int, state: str) -> None:
        """Change the state of a resident line (no LRU update)."""
        index = self.set_index(line_addr)
        tag = self.tag_of(line_addr)
        cache_set = self._sets[index]
        if tag not in cache_set:
            raise KeyError(f"line {line_addr:#x} not resident in {self.name}")
        cache_set[tag] = state

    def invalidate(self, line_addr: int) -> str:
        """Remove a line (external invalidation); returns its prior state."""
        index = self.set_index(line_addr)
        tag = self.tag_of(line_addr)
        prior = self._sets[index].pop(tag, CacheState.INVALID)
        if prior != CacheState.INVALID:
            self.stats.invalidations_received += 1
        return prior

    # -- inspection -----------------------------------------------------------

    def resident_lines(self) -> Iterator[Tuple[int, str]]:
        base = self.line_bytes * self.n_sets
        for index, cache_set in enumerate(self._sets):
            for tag, state in cache_set.items():
                yield tag * base + index * self.line_bytes, state

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
