"""Main-memory controller model."""

from .controller import MemoryController, MemoryRequest

__all__ = ["MemoryController", "MemoryRequest"]
