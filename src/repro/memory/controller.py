"""Main-memory controller model.

One controller per node: a 14-cycle access to the first 8 bytes (Table 3.2)
over a 64-bit path, with a one-deep request queue on FLASH ("PP or inbox
stalls until queue entry is available", Table 3.1).  The controller is
occupied for the full line transfer, which is how memory occupancy (Table
4.1) arises.  The ideal machine uses the same controller with an unbounded
queue.
"""

from __future__ import annotations

from typing import Optional

from ..common.params import MachineConfig
from ..sim.engine import Environment, Event, PENDING
from ..sim.queues import BoundedQueue

__all__ = ["MemoryRequest", "MemoryController"]


class MemoryRequest:
    """One read or write of a full cache line."""

    __slots__ = ("is_read", "line_addr", "data_event", "done_event", "useless",
                 "trace_ctx", "trace_submit")

    def __init__(self, env: Environment, is_read: bool, line_addr: int):
        self.is_read = is_read
        self.line_addr = line_addr
        self.trace_ctx = None     # (requester, line) of the owning transaction
        self.trace_submit = 0.0   # submit timestamp (traced runs only)
        # Draw from the recycled event pool when available (two events per
        # memory request; reset mirrors Event.__init__).
        pool = env._event_pool
        if len(pool) >= 2:
            data_event = pool.pop()
            data_event._value = PENDING
            data_event._ok = True
            done_event = pool.pop()
            done_event._value = PENDING
            done_event._ok = True
        else:
            data_event = Event(env)
            done_event = Event(env)
        self.data_event = data_event   # first 8 bytes available (reads)
        self.done_event = done_event   # controller freed
        self.useless = False           # marked when a speculative read was wasted


class MemoryController:
    """Serial memory controller with a bounded entry queue."""

    def __init__(self, env: Environment, config: MachineConfig, name: str = "mem",
                 node_id: int = -1):
        self.env = env
        self.config = config
        self.node_id = node_id
        self.access_cycles = config.latencies.memory_access
        self.busy_cycles_per_access = config.memory_busy_cycles
        self.queue = BoundedQueue(env, config.limits.memory_controller_queue,
                                  name=f"{name}.q")
        self.busy_cycles = 0.0
        self.reads = 0
        self.writes = 0
        self.useless_reads = 0
        self.tracer = None  # Tracer (repro.stats.trace), attached by the Machine
        env.process(self._serve(), name=f"{name}.serve")

    def submit(self, request: MemoryRequest) -> Event:
        """Enqueue a request.  The returned event fires when the controller
        queue accepted it — yielding on it models the PP/inbox stall."""
        if self.tracer is not None:
            request.trace_submit = self.env._now
        return self.queue.put(request)

    def read(self, line_addr: int) -> MemoryRequest:
        request = MemoryRequest(self.env, True, line_addr)
        self.reads += 1
        return request

    def write(self, line_addr: int) -> MemoryRequest:
        request = MemoryRequest(self.env, False, line_addr)
        self.writes += 1
        return request

    def occupancy(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the controller was busy."""
        return self.busy_cycles / elapsed if elapsed > 0 else 0.0

    def _serve(self):
        env = self.env
        timeout = env.timeout
        get = self.queue.get
        access_cycles = self.access_cycles
        busy_per_access = self.busy_cycles_per_access
        remainder = busy_per_access - access_cycles
        while True:
            request = yield get()
            tracer = self.tracer
            serve_start = env._now if tracer is not None else 0.0
            yield timeout(access_cycles)
            data_event = request.data_event
            if data_event._value is PENDING:
                data_event.succeed(env._now)
            if remainder > 0:
                yield timeout(remainder)
            self.busy_cycles += busy_per_access
            if request.useless:
                self.useless_reads += 1
            done_event = request.done_event
            if done_event._value is PENDING:
                done_event.succeed(env._now)
            if tracer is not None:
                tracer.memory_span(self.node_id, request, serve_start,
                                   env._now, busy_per_access)
