"""Main-memory controller model.

One controller per node: a 14-cycle access to the first 8 bytes (Table 3.2)
over a 64-bit path, with a one-deep request queue on FLASH ("PP or inbox
stalls until queue entry is available", Table 3.1).  The controller is
occupied for the full line transfer, which is how memory occupancy (Table
4.1) arises.  The ideal machine uses the same controller with an unbounded
queue.

The serve loop runs in callback/state-machine form directly on the event
kernel (one scheduled continuation per timing edge, no coroutine), with
dispatch order identical to the original process form: the controller serves
one request at a time, so the in-flight request lives in instance state.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..common.params import MachineConfig
from ..sim.engine import Environment, Event, PENDING
from ..sim.queues import BoundedQueue

__all__ = ["MemoryRequest", "MemoryController", "SubmitWhenReady"]


class SubmitWhenReady:
    """Submits a memory request the instant a data-source event fires — the
    callback-core replacement for the old one-shot writer processes that did
    ``yield data_ready; yield memory.submit(request)``.  Registered directly
    on the data event's callbacks list, so the submit lands at exactly the
    position the process resume occupied."""

    __slots__ = ("memory", "request")

    def __init__(self, memory: "MemoryController", request: "MemoryRequest"):
        self.memory = memory
        self.request = request

    def __call__(self, _event=None) -> None:
        self.memory.submit_drop(self.request)


class MemoryRequest:
    """One read or write of a full cache line."""

    __slots__ = ("is_read", "line_addr", "data_event", "done_event", "useless",
                 "trace_ctx", "trace_submit")

    def __init__(self, env: Environment, is_read: bool, line_addr: int):
        self.is_read = is_read
        self.line_addr = line_addr
        self.trace_ctx = None     # (requester, line) of the owning transaction
        self.trace_submit = 0.0   # submit timestamp (traced runs only)
        # Draw from the recycled event pool when available (two events per
        # memory request; reset mirrors Event.__init__).
        pool = env._event_pool
        if len(pool) >= 2:
            data_event = pool.pop()
            data_event._value = PENDING
            data_event._ok = True
            done_event = pool.pop()
            done_event._value = PENDING
            done_event._ok = True
        else:
            data_event = Event(env)
            done_event = Event(env)
        self.data_event = data_event   # first 8 bytes available (reads)
        self.done_event = done_event   # controller freed
        self.useless = False           # marked when a speculative read was wasted


class MemoryController:
    """Serial memory controller with a bounded entry queue."""

    def __init__(self, env: Environment, config: MachineConfig, name: str = "mem",
                 node_id: int = -1):
        self.env = env
        self.config = config
        self.node_id = node_id
        self.name = f"{name}.serve"
        self.access_cycles = config.latencies.memory_access
        self.busy_cycles_per_access = config.memory_busy_cycles
        self.queue = BoundedQueue(env, config.limits.memory_controller_queue,
                                  name=f"{name}.q")
        self.busy_cycles = 0.0
        self.reads = 0
        self.writes = 0
        self.useless_reads = 0
        self.tracer = None  # Tracer (repro.stats.trace), attached by the Machine
        self._request: Optional[MemoryRequest] = None
        self._serve_start = 0.0
        # One in-flight request at a time: the continuation chain below is
        # the old _serve() process with each yield turned into a scheduled
        # callback.  Bound once; scheduled thousands of times.
        self._on_request_cb = self._on_request
        self._on_data_cb = self._on_data
        self._on_done_cb = self._on_done
        self._remainder = self.busy_cycles_per_access - self.access_cycles
        env.call_soon(self._serve_next)

    def submit(self, request: MemoryRequest) -> Event:
        """Enqueue a request.  The returned event fires when the controller
        queue accepted it — yielding on it models the PP/inbox stall."""
        if self.tracer is not None:
            request.trace_submit = self.env._now
        return self.queue.put(request)

    def submit_cb(self, request: MemoryRequest,
                  callback: Callable[[], None]) -> None:
        """Callback form of :meth:`submit` for the callback-core PP/inbox:
        ``callback()`` fires when the controller queue accepted the
        request."""
        if self.tracer is not None:
            request.trace_submit = self.env._now
        self.queue.put_cb(request, callback)

    def submit_drop(self, request: MemoryRequest) -> None:
        """Fire-and-forget :meth:`submit` for call sites that never waited
        on the returned event (the ideal controller's unbounded queue)."""
        if self.tracer is not None:
            request.trace_submit = self.env._now
        self.queue.put_drop(request)

    def read(self, line_addr: int) -> MemoryRequest:
        request = MemoryRequest(self.env, True, line_addr)
        self.reads += 1
        return request

    def write(self, line_addr: int) -> MemoryRequest:
        request = MemoryRequest(self.env, False, line_addr)
        self.writes += 1
        return request

    def occupancy(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the controller was busy."""
        return self.busy_cycles / elapsed if elapsed > 0 else 0.0

    # -- serve loop (callback state machine) ---------------------------------

    def _serve_next(self) -> None:
        self.queue.get_cb(self._on_request_cb)

    def _on_request(self, request: MemoryRequest) -> None:
        self._request = request
        if self.tracer is not None:
            self._serve_start = self.env._now
        self.env.call_later(self.access_cycles, self._on_data_cb)

    def _on_data(self) -> None:
        request = self._request
        data_event = request.data_event
        if data_event._value is PENDING:
            data_event.succeed(self.env._now)
        if self._remainder > 0:
            self.env.call_later(self._remainder, self._on_done_cb)
        else:
            self._on_done()

    def _on_done(self) -> None:
        request = self._request
        self._request = None
        self.busy_cycles += self.busy_cycles_per_access
        if request.useless:
            self.useless_reads += 1
        done_event = request.done_event
        if done_event._value is PENDING:
            done_event.succeed(self.env._now)
        tracer = self.tracer
        if tracer is not None:
            tracer.memory_span(self.node_id, request, self._serve_start,
                               self.env._now, self.busy_cycles_per_access)
        self.queue.get_cb(self._on_request_cb)
