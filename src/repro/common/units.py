"""Fundamental constants of the FLASH machine model.

All times in the model are expressed in 10 ns *system cycles* (the 100 MHz
MAGIC clock), exactly as in the paper.
"""

CACHE_LINE_BYTES = 128          # both machines use 128-byte lines
WORDS_PER_LINE = 16             # 64-bit (8-byte) words per line
MEMORY_BUS_BYTES = 8            # 64-bit path to the memory system
PAGE_BYTES = 4096               # virtual page size used by the allocator
DIRECTORY_HEADER_BYTES = 8      # one header per 128-byte memory line

KB = 1024
MB = 1024 * 1024

CYCLE_NS = 10                   # one system cycle == 10 ns
PROCESSOR_MIPS = 400            # the aggressive compute processor
# The 400-MIPS processor can issue up to 4 memory requests per system cycle.
PEAK_REFS_PER_CYCLE = 4


def line_of(address: int) -> int:
    """Cache-line number containing ``address``."""
    return address // CACHE_LINE_BYTES


def line_address(address: int) -> int:
    """Address of the first byte of the line containing ``address``."""
    return address - (address % CACHE_LINE_BYTES)
