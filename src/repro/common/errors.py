"""Exception hierarchy for the FLASH reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid machine or workload configuration."""


class ProtocolError(ReproError):
    """The coherence protocol reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload generator produced an invalid operation."""


class PPError(ReproError):
    """Protocol-processor toolchain or emulator failure."""
