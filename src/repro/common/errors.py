"""Exception hierarchy for the FLASH reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid machine or workload configuration."""


class ProtocolError(ReproError):
    """The coherence protocol reached an inconsistent state."""


class CoherenceViolation(ProtocolError):
    """The coherence model checker caught the protocol breaking a memory
    invariant (SWMR, per-line read monotonicity, directory/cache/MSHR
    cross-state, or link-store accounting).

    ``dump`` is a minimal machine-readable snapshot of the offending state
    (line address, per-cache states, directory entry, shadow values) and
    ``trace_tail`` carries the recent span history of the implicated
    transactions when the run was traced (PR 4's tracer)."""

    def __init__(self, reason, dump=None, trace_tail=None):
        self.reason = reason
        self.dump = dump or {}
        self.trace_tail = trace_tail or []
        lines = [reason]
        for key in sorted(self.dump):
            lines.append(f"  {key}: {self.dump[key]!r}")
        for txn in self.trace_tail:
            lines.append(f"  traced: {txn}")
        super().__init__("\n".join(lines))

    def to_dict(self):
        return {"reason": self.reason, "dump": self.dump,
                "trace_tail": self.trace_tail}


class WorkloadError(ReproError):
    """A workload generator produced an invalid operation."""


class PPError(ReproError):
    """Protocol-processor toolchain or emulator failure."""
