"""Machine configuration.

Every latency in Table 3.2, every resource limit in Table 3.1, and every
cost in Table 3.4 of the paper is a named field here, so experiments can be
expressed as configuration deltas (e.g. the ideal machine, disabled
speculation, a single-issue PP) rather than code changes.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigError
from .units import CACHE_LINE_BYTES, KB, MB, WORDS_PER_LINE

__all__ = [
    "SuboperationLatencies",
    "ResourceLimits",
    "CacheConfig",
    "MagicCacheConfig",
    "HandlerCosts",
    "MachineConfig",
    "flash_config",
    "fusion_from_env",
    "ideal_config",
    "mesh_transit_cycles",
]


def fusion_from_env() -> bool:
    """Macro-op fusion master switch, read at controller construction: on by
    default, ``REPRO_FUSION=off`` (or 0/no/false/disabled) forces every
    message down the stepwise state machines.  Results are byte-identical
    either way — the knob exists for parity testing and triage, not tuning —
    so it is deliberately *not* part of any cache key or RunResult."""
    raw = os.environ.get("REPRO_FUSION", "").strip().lower()
    return raw not in ("0", "off", "no", "false", "disabled")


def mesh_transit_cycles(n_nodes: int, header_cycles: int = 3, hop_ns: int = 40) -> int:
    """Average network transit latency (in 10 ns cycles) for a 2-D mesh.

    The paper charges a fixed average transit: one hop to enter, one to exit,
    the mesh-average hop count in between, at 40 ns per hop, plus 3 cycles of
    header.  For 16 nodes this yields the paper's 22 cycles.
    """
    if n_nodes < 1:
        raise ConfigError(f"n_nodes must be >= 1, got {n_nodes}")
    if n_nodes == 1:
        return 0
    side = max(1, round(math.sqrt(n_nodes)))
    # Mean Manhattan distance on a side x side mesh is ~ 2*side/3; the paper
    # quotes 2.6 hops for 16 nodes (4x4) and 22 cycles total transit.
    avg_hops = 2.0 * side / 3.0 if side > 1 else 1.0
    hops = 1.0 + avg_hops + 1.0
    return math.ceil(hops * hop_ns / 10.0) + header_cycles


@dataclass(frozen=True)
class SuboperationLatencies:
    """Table 3.2: sub-operation latencies in 10 ns cycles."""

    # Processor.
    miss_detect_to_bus: int = 5
    bus_transit: int = 1
    # Processor interface.
    pi_inbound: int = 1
    pi_outbound: int = 4            # 2 on the ideal machine
    pi_outbound_arb: int = 1
    pi_outbound_bus_transit: int = 1
    cache_state_retrieve: int = 15  # retrieve state from processor cache
    cache_data_retrieve: int = 20   # first double word from processor cache
    # Time from handler start until the first double word of an intervention
    # arrives from the processor cache (FLASH: issue overhead + state + data
    # pipelined; the ideal controller issues instantly, so it sees just the
    # data-retrieve time).
    intervention_data: int = 28
    # Network interface.
    ni_inbound: int = 8
    ni_outbound: int = 4
    # Inbox.
    inbox_arbitration: int = 1
    jump_table_lookup: int = 2      # 0 on the ideal machine (no jump table)
    # Protocol processor.
    mdc_miss_penalty: int = 29
    outbox: int = 1                 # 0 on the ideal machine
    # Shared.
    network_transit: int = 22       # average, 16 nodes
    memory_access: int = 14         # to first 8 bytes


@dataclass(frozen=True)
class ResourceLimits:
    """Table 3.1: MAGIC resource limits.  ``None`` means unbounded (the ideal
    machine's infinitely deep queues)."""

    incoming_network_queue: Optional[int] = 16
    outgoing_network_queue: Optional[int] = 16
    memory_controller_queue: Optional[int] = 1
    inbox_to_pp_queue: Optional[int] = 1
    outgoing_pi_queue: Optional[int] = 1
    incoming_pi_queue: Optional[int] = 16
    data_buffers: Optional[int] = 16


@dataclass(frozen=True)
class CacheConfig:
    """A set-associative cache geometry."""

    size_bytes: int = 1 * MB
    associativity: int = 2
    line_bytes: int = CACHE_LINE_BYTES
    mshrs: int = 4                  # outstanding misses supported

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible by "
                f"{self.associativity} ways of {self.line_bytes}-byte lines"
            )
        # The cache hot path decomposes addresses with shifts and masks, which
        # requires power-of-two line size and set count (true of every real
        # cache geometry, including all of the paper's).
        if self.line_bytes < 1 or self.line_bytes & (self.line_bytes - 1):
            raise ConfigError(
                f"line_bytes must be a power of two, got {self.line_bytes}"
            )
        n_sets = self.n_sets
        if n_sets < 1 or n_sets & (n_sets - 1):
            raise ConfigError(
                f"derived set count must be a power of two, got {n_sets} "
                f"({self.size_bytes} bytes / {self.associativity} ways of "
                f"{self.line_bytes}-byte lines)"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class MagicCacheConfig:
    """The MAGIC data cache (MDC) and instruction cache."""

    mdc_size_bytes: int = 64 * KB
    mdc_associativity: int = 2
    mdc_line_bytes: int = CACHE_LINE_BYTES
    icache_size_bytes: int = 32 * KB
    enabled: bool = True            # False models a PP with perfect caches


@dataclass(frozen=True)
class HandlerCosts:
    """Table 3.4: PP occupancies for common operations (10 ns cycles).

    These drive the fast *cost-model* PP backend.  The emulator backend
    derives costs by actually executing the PP-assembly handlers; the two are
    cross-validated in tests.
    """

    read_from_memory: int = 11          # service read miss from main memory
    write_from_memory: int = 14         # service write miss from main memory
    per_invalidation: int = 13          # 10-15 per invalidation sent
    forward_to_home: int = 3            # requesting node sends a remote request
    forward_home_to_dirty: int = 18     # home forwards request to dirty node
    retrieve_from_proc_cache: int = 38  # dirty data pulled from a local cache
    reply_net_to_proc: int = 2          # pass a network reply up to the CPU
    local_writeback: int = 10
    local_replacement_hint: int = 7
    remote_writeback: int = 8
    remote_hint_only_sharer: int = 17   # replacement hint, only node on list
    remote_hint_base: int = 23          # hint, Nth node: base + slope * N
    remote_hint_per_link: int = 14
    invalidation_receive: int = 6       # invalidate a line in the local cache
    ack_receive: int = 5                # collect one invalidation ack
    sharing_writeback: int = 9          # home absorbs 3-hop sharing writeback
    upgrade_ack: int = 2                # ownership granted without data


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of one simulated machine."""

    n_procs: int = 16
    kind: str = "flash"                 # "flash" | "ideal"
    latencies: SuboperationLatencies = field(default_factory=SuboperationLatencies)
    limits: ResourceLimits = field(default_factory=ResourceLimits)
    proc_cache: CacheConfig = field(default_factory=CacheConfig)
    magic_caches: MagicCacheConfig = field(default_factory=MagicCacheConfig)
    handler_costs: HandlerCosts = field(default_factory=HandlerCosts)
    # MAGIC features.
    speculative_reads: bool = True      # jump-table speculative memory initiation
    pp_backend: str = "table"           # "table" (cost model) | "emulator"
    # Coherence protocol variant: "base" (dynamic pointer allocation, the
    # paper's protocol) or "migratory" (the flexibility experiment: the same
    # protocol plus migratory-data detection and exclusive hand-off).
    protocol: str = "base"
    pp_dual_issue: bool = True          # Section 5.3 ablation when False
    pp_special_instructions: bool = True
    # Memory system.
    memory_bytes_per_node: int = 64 * MB
    memory_busy_cycles: int = 14 + WORDS_PER_LINE - 1  # controller occupancy/access
    # CPU model.
    cpu_hit_quantum: int = 64           # max cycles of batched hits between yields
    # Directory.
    directory_links_per_node: int = 65536
    # Causal-profiling hook (``harness whatif``): per-handler multiplicative
    # cost factors applied by the table cost model, e.g. {"get_home_clean":
    # 2.0}.  None/empty leaves every Table 3.4 cost byte-identical.
    handler_scale: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.kind not in ("flash", "ideal"):
            raise ConfigError(f"unknown machine kind {self.kind!r}")
        if self.pp_backend not in ("table", "emulator"):
            raise ConfigError(f"unknown PP backend {self.pp_backend!r}")
        if self.protocol not in ("base", "migratory"):
            raise ConfigError(f"unknown protocol {self.protocol!r}")
        if self.n_procs < 1:
            raise ConfigError("need at least one processor")
        if self.handler_scale:
            if self.pp_backend == "emulator":
                raise ConfigError(
                    "handler_scale requires the table cost model; the"
                    " emulator backend derives costs from PP assembly")
            factors = dict(self.handler_scale)
            for handler, factor in factors.items():
                if not isinstance(factor, (int, float)) or factor <= 0:
                    raise ConfigError(
                        f"handler_scale[{handler!r}] must be a positive"
                        f" number, got {factor!r}")
            object.__setattr__(self, "handler_scale", factors)

    @property
    def is_ideal(self) -> bool:
        return self.kind == "ideal"

    def with_changes(self, **kwargs) -> "MachineConfig":
        return replace(self, **kwargs)


def flash_config(n_procs: int = 16, cache_size: int = 1 * MB, **kwargs) -> MachineConfig:
    """The FLASH machine as simulated in the paper."""
    latencies = kwargs.pop(
        "latencies",
        SuboperationLatencies(network_transit=mesh_transit_cycles(n_procs)),
    )
    return MachineConfig(
        n_procs=n_procs,
        kind="flash",
        latencies=latencies,
        proc_cache=CacheConfig(size_bytes=cache_size),
        **kwargs,
    )


def ideal_config(n_procs: int = 16, cache_size: int = 1 * MB, **kwargs) -> MachineConfig:
    """The idealized hardwired machine: zero-time controller operations,
    infinite queues, shorter outbound PI path, no jump table or outbox."""
    latencies = kwargs.pop("latencies", None)
    if latencies is None:
        latencies = SuboperationLatencies(
            pi_outbound=2,
            jump_table_lookup=0,
            outbox=0,
            mdc_miss_penalty=0,
            intervention_data=20,  # issued instantly; just the data retrieve
            network_transit=mesh_transit_cycles(n_procs),
        )
    limits = kwargs.pop(
        "limits",
        ResourceLimits(
            incoming_network_queue=None,
            outgoing_network_queue=None,
            memory_controller_queue=None,
            inbox_to_pp_queue=None,
            outgoing_pi_queue=None,
            incoming_pi_queue=None,
            data_buffers=None,
        ),
    )
    return MachineConfig(
        n_procs=n_procs,
        kind="ideal",
        latencies=latencies,
        limits=limits,
        proc_cache=CacheConfig(size_bytes=cache_size),
        magic_caches=MagicCacheConfig(enabled=False),
        speculative_reads=False,  # irrelevant: memory starts instantly anyway
        **kwargs,
    )
