"""Shared configuration, constants and errors."""

from .errors import ConfigError, PPError, ProtocolError, ReproError, WorkloadError
from .params import MachineConfig, flash_config, ideal_config

__all__ = ["ConfigError", "PPError", "ProtocolError", "ReproError",
           "WorkloadError", "MachineConfig", "flash_config", "ideal_config"]
