"""Mesh interconnection network model."""

from .mesh import Network, NetworkPort

__all__ = ["Network", "NetworkPort"]
