"""Interconnection network model.

As in the paper, every message entering the network is charged a fixed
average transit latency derived from a two-dimensional mesh (22 cycles at 16
nodes: one hop in, 2.6 hops across, one hop out, 40 ns per hop, plus 3 header
cycles).  Each node has a serial outbound link (charging the NI outbound
processing time per message) and a serial inbound path (charging the NI
inbound time), with bounded queues on FLASH — a full incoming queue backs
messages up into the network, a full outgoing queue stalls the PP.

Point-to-point ordering is preserved: two messages from the same source to
the same destination are delivered in send order, which the protocol's
requester-side code relies on.

The per-hop delivery paths (outbound NI, transit, inbound NI) run in
callback/state-machine form directly on the event kernel: each serial link is
one state machine whose continuations are scheduled as bare callbacks, and
each in-flight transit hop is a single scheduled callback instead of a
spawned process.  Dispatch order is identical to the original coroutine
form.  Fault-injected bounces (cold path) remain coroutines.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..common.params import MachineConfig
from ..protocol.messages import Message, MessageType as MT
from ..sim.engine import Environment, PENDING
from ..sim.queues import BoundedQueue

__all__ = ["Network", "NetworkPort"]


class NetworkPort:
    """One node's attachment to the network."""

    def __init__(self, network: "Network", node_id: int):
        self._network = network
        self.node_id = node_id
        env = network.env
        self.env = env
        limits = network.config.limits
        lat = network.config.latencies
        self.out_queue = BoundedQueue(env, limits.outgoing_network_queue,
                                      name=f"net.out[{node_id}]")
        self.in_queue = BoundedQueue(env, limits.incoming_network_queue,
                                     name=f"net.in[{node_id}]")
        # The "wire": unbounded staging between transit and the inbound NI.
        self._wire = BoundedQueue(env, None, name=f"net.wire[{node_id}]")
        self._ni_outbound = lat.ni_outbound
        self._ni_inbound = lat.ni_inbound
        # Serial-link state machines: one bundle/message in flight per
        # direction, so the in-flight item lives in instance state.  The
        # ``name`` attributes label blocked-waiter diagnoses (watchdog).
        self.name = f"ni[{node_id}]"
        self._out_bundle = None
        self._out_t0 = 0.0
        self._in_msg: Optional[Message] = None
        self._on_out_bundle_cb = self._on_out_bundle
        self._out_after_wait_cb = self._out_after_wait
        self._on_out_sent_cb = self._on_out_sent
        self._on_wire_msg_cb = self._on_wire_msg
        self._on_ni_in_done_cb = self._on_ni_in_done
        self._inbound_next_cb = self._inbound_next
        env.call_soon(self._outbound_next)
        env.call_soon(self._inbound_next)

    def send(self, bundle):
        """Enqueue ``(message, data_ready_event_or_None, done_event_or_None)``.

        Returns the put event; yielding on it models the PP stalling when the
        outgoing network queue is full.
        """
        message = bundle[0]
        if message.dst == self.node_id:
            raise ValueError(f"message to self via network: {message}")
        return self.out_queue.put(bundle)

    def send_cb(self, bundle, callback: Callable[[], None]) -> None:
        """Callback form of :meth:`send`: ``callback()`` fires when the
        outgoing network queue accepted the bundle."""
        message = bundle[0]
        if message.dst == self.node_id:
            raise ValueError(f"message to self via network: {message}")
        self.out_queue.put_cb(bundle, callback)

    def send_drop(self, bundle) -> None:
        """Fire-and-forget :meth:`send` for call sites that never waited on
        the returned event (the ideal controller's unbounded queues)."""
        message = bundle[0]
        if message.dst == self.node_id:
            raise ValueError(f"message to self via network: {message}")
        self.out_queue.put_drop(bundle)

    # -- outbound NI (serial link state machine) -----------------------------

    def _outbound_next(self) -> None:
        self.out_queue.get_cb(self._on_out_bundle_cb)

    def _on_out_bundle(self, bundle) -> None:
        self._out_bundle = bundle
        network = self._network
        message = bundle[0]
        data_ready = bundle[1]
        metrics = network.metrics
        if metrics is not None:
            # Per-link send matrix: everything this node pushes at its
            # outbound NI, keyed by message class (fault-dropped sends
            # included — they occupied the link).
            metrics.msgs_sent.labels(self.node_id, message.mtype).inc()
        if network.tracer is not None:
            self._out_t0 = self.env._now
        if data_ready is not None and data_ready._value is PENDING:
            # Pipelined data transfer: the header leaves only once the
            # line data has begun streaming into the data buffer.
            data_ready.callbacks.append(self._out_after_wait_cb)
            return
        self._out_after_wait(None)

    def _out_after_wait(self, _event=None) -> None:
        env = self.env
        tracer = self._network.tracer
        if tracer is not None and env._now > self._out_t0:
            # Waiting for the data source is not network time; it shows
            # on the timeline but charges no component.
            tracer.net_span(self.node_id, "data_wait", self._out_bundle[0],
                            self._out_t0, env._now, charge=False)
        env.call_later(self._ni_outbound, self._on_out_sent_cb)

    def _on_out_sent(self) -> None:
        env = self.env
        network = self._network
        message, _data_ready, done = self._out_bundle
        tracer = network.tracer
        if tracer is not None:
            tracer.net_span(self.node_id, "ni_out", message,
                            env._now - self._ni_outbound, env._now)
        faults = network.faults
        if faults is not None:
            # Delay spikes live on the serial outbound link (not in
            # transit) so point-to-point ordering survives injection.
            extra = faults.transit_delay(self.node_id, message)
            if extra:
                env.call_later(extra, self._out_fault_step)
                return
        self._out_fault_step()

    def _out_fault_step(self) -> None:
        network = self._network
        message, _data_ready, done = self._out_bundle
        self._out_bundle = None
        faults = network.faults
        if faults is not None and faults.should_drop(self.node_id, message):
            self.env.process(self._bounce(message),
                             name=f"ni.bounce[{self.node_id}]")
            if done is not None and done._value is PENDING:
                done.succeed()
            self._outbound_next()
            return
        network._launch(message)
        if done is not None and done._value is PENDING:
            done.succeed()
        self._outbound_next()

    def _bounce(self, message: Message):
        """Fault injection: a dropped request comes back to its sender as a
        BOUNCE after a round trip, modelling the far node's input controller
        refusing it.  The original rides along so the protocol layer can
        re-send the identical message (same uid)."""
        network = self._network
        bounce = Message(MT.BOUNCE, message.line_addr, message.dst,
                         message.src, message.requester,
                         is_write=message.is_write, orig=message)
        yield network.env.timeout(2 * network.transit_cycles)
        yield self._wire.put(bounce)

    # -- inbound NI (serial path state machine) ------------------------------

    def _inbound_next(self) -> None:
        self._wire.get_cb(self._on_wire_msg_cb)

    def _on_wire_msg(self, message: Message) -> None:
        self._in_msg = message
        network = self._network
        metrics = network.metrics
        if metrics is not None:
            metrics.msgs_received.labels(self.node_id, message.mtype).inc()
        self.env.call_later(self._ni_inbound, self._on_ni_in_done_cb)

    def _on_ni_in_done(self) -> None:
        env = self.env
        message = self._in_msg
        self._in_msg = None
        tracer = self._network.tracer
        if tracer is not None:
            tracer.net_span(self.node_id, "ni_in", message,
                            env._now - self._ni_inbound, env._now)
        # A full incoming queue backs subsequent traffic up into the
        # network (this put blocks the inbound path).
        self.in_queue.put_cb(message, self._inbound_next_cb)


class Network:
    """The mesh: fixed-latency transit between ports."""

    def __init__(self, env: Environment, config: MachineConfig):
        self.env = env
        self.config = config
        self.transit_cycles = config.latencies.network_transit
        self.faults = None  # FaultInjector (repro.faults), attached by the Machine
        self.tracer = None  # Tracer (repro.stats.trace), attached by the Machine
        self.metrics = None  # MetricsRegistry (repro.stats.metrics), attached by the Machine
        self._transit_arrive_cb = self._transit_arrive
        self.ports: List[NetworkPort] = [
            NetworkPort(self, node) for node in range(config.n_procs)
        ]
        self.messages_sent = 0
        self.peak_in_flight = 0
        self._in_flight = 0

    def port(self, node_id: int) -> NetworkPort:
        return self.ports[node_id]

    def _launch(self, message: Message) -> None:
        self.messages_sent += 1
        in_flight = self._in_flight + 1
        self._in_flight = in_flight
        if in_flight > self.peak_in_flight:
            self.peak_in_flight = in_flight
        # One scheduled callback replaces the per-message transit process
        # (start resume + timeout): the message goes straight onto the
        # calendar for its arrival instant.
        self.env.call_later(self.transit_cycles, self._transit_arrive_cb,
                            message)

    def _transit_arrive(self, message: Message) -> None:
        self._in_flight -= 1
        tracer = self.tracer
        if tracer is not None:
            # Attributed to the destination node's timeline (the hop "ends"
            # there); the component charge is node-agnostic either way.
            tracer.net_span(message.dst, "transit", message,
                            self.env._now - self.transit_cycles, self.env._now)
        self.ports[message.dst]._wire.put_drop(message)
