"""Interconnection network model.

As in the paper, every message entering the network is charged a fixed
average transit latency derived from a two-dimensional mesh (22 cycles at 16
nodes: one hop in, 2.6 hops across, one hop out, 40 ns per hop, plus 3 header
cycles).  Each node has a serial outbound link (charging the NI outbound
processing time per message) and a serial inbound path (charging the NI
inbound time), with bounded queues on FLASH — a full incoming queue backs
messages up into the network, a full outgoing queue stalls the PP.

Point-to-point ordering is preserved: two messages from the same source to
the same destination are delivered in send order, which the protocol's
requester-side code relies on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..common.params import MachineConfig
from ..protocol.messages import Message, MessageType as MT
from ..sim.engine import Environment, PENDING
from ..sim.queues import BoundedQueue

__all__ = ["Network", "NetworkPort"]


class NetworkPort:
    """One node's attachment to the network."""

    def __init__(self, network: "Network", node_id: int):
        self._network = network
        self.node_id = node_id
        env = network.env
        limits = network.config.limits
        lat = network.config.latencies
        self.out_queue = BoundedQueue(env, limits.outgoing_network_queue,
                                      name=f"net.out[{node_id}]")
        self.in_queue = BoundedQueue(env, limits.incoming_network_queue,
                                     name=f"net.in[{node_id}]")
        # The "wire": unbounded staging between transit and the inbound NI.
        self._wire = BoundedQueue(env, None, name=f"net.wire[{node_id}]")
        self._ni_outbound = lat.ni_outbound
        self._ni_inbound = lat.ni_inbound
        env.process(self._outbound(), name=f"ni.out[{node_id}]")
        env.process(self._inbound(), name=f"ni.in[{node_id}]")

    def send(self, bundle):
        """Enqueue ``(message, data_ready_event_or_None, done_event_or_None)``.

        Returns the put event; yielding on it models the PP stalling when the
        outgoing network queue is full.
        """
        message = bundle[0]
        if message.dst == self.node_id:
            raise ValueError(f"message to self via network: {message}")
        return self.out_queue.put(bundle)

    def _outbound(self):
        env = self._network.env
        timeout = env.timeout
        get = self.out_queue.get
        launch = self._network._launch
        ni_outbound = self._ni_outbound
        network = self._network
        while True:
            message, data_ready, done = yield get()
            metrics = network.metrics
            if metrics is not None:
                # Per-link send matrix: everything this node pushes at its
                # outbound NI, keyed by message class (fault-dropped sends
                # included — they occupied the link).
                metrics.msgs_sent.labels(self.node_id, message.mtype).inc()
            tracer = network.tracer
            t0 = env._now if tracer is not None else 0.0
            if data_ready is not None and data_ready._value is PENDING:
                # Pipelined data transfer: the header leaves only once the
                # line data has begun streaming into the data buffer.
                yield data_ready
            if tracer is not None and env._now > t0:
                # Waiting for the data source is not network time; it shows
                # on the timeline but charges no component.
                tracer.net_span(self.node_id, "data_wait", message,
                                t0, env._now, charge=False)
                t0 = env._now
            yield timeout(ni_outbound)
            if tracer is not None:
                tracer.net_span(self.node_id, "ni_out", message, t0, env._now)
            faults = network.faults
            if faults is not None:
                # Delay spikes live on the serial outbound link (not in
                # transit) so point-to-point ordering survives injection.
                extra = faults.transit_delay(self.node_id, message)
                if extra:
                    yield timeout(extra)
                if faults.should_drop(self.node_id, message):
                    network.env.process(self._bounce(message),
                                        name=f"ni.bounce[{self.node_id}]")
                    if done is not None and done._value is PENDING:
                        done.succeed()
                    continue
            launch(message)
            if done is not None and done._value is PENDING:
                done.succeed()

    def _bounce(self, message: Message):
        """Fault injection: a dropped request comes back to its sender as a
        BOUNCE after a round trip, modelling the far node's input controller
        refusing it.  The original rides along so the protocol layer can
        re-send the identical message (same uid)."""
        network = self._network
        bounce = Message(MT.BOUNCE, message.line_addr, message.dst,
                         message.src, message.requester,
                         is_write=message.is_write, orig=message)
        yield network.env.timeout(2 * network.transit_cycles)
        yield self._wire.put(bounce)

    def _inbound(self):
        env = self._network.env
        timeout = env.timeout
        get = self._wire.get
        put = self.in_queue.put
        ni_inbound = self._ni_inbound
        network = self._network
        while True:
            message = yield get()
            metrics = network.metrics
            if metrics is not None:
                metrics.msgs_received.labels(self.node_id,
                                             message.mtype).inc()
            tracer = network.tracer
            t0 = env._now if tracer is not None else 0.0
            yield timeout(ni_inbound)
            if tracer is not None:
                tracer.net_span(self.node_id, "ni_in", message, t0, env._now)
            # A full incoming queue backs subsequent traffic up into the
            # network (this put blocks the inbound path).
            yield put(message)


class Network:
    """The mesh: fixed-latency transit between ports."""

    def __init__(self, env: Environment, config: MachineConfig):
        self.env = env
        self.config = config
        self.transit_cycles = config.latencies.network_transit
        self.ports: List[NetworkPort] = [
            NetworkPort(self, node) for node in range(config.n_procs)
        ]
        self.messages_sent = 0
        self.peak_in_flight = 0
        self._in_flight = 0
        self.faults = None  # FaultInjector (repro.faults), attached by the Machine
        self.tracer = None  # Tracer (repro.stats.trace), attached by the Machine
        self.metrics = None  # MetricsRegistry (repro.stats.metrics), attached by the Machine

    def port(self, node_id: int) -> NetworkPort:
        return self.ports[node_id]

    def _launch(self, message: Message) -> None:
        self.messages_sent += 1
        in_flight = self._in_flight + 1
        self._in_flight = in_flight
        if in_flight > self.peak_in_flight:
            self.peak_in_flight = in_flight
        self.env.process(self._transit(message), name="net.transit")

    def _transit(self, message: Message):
        tracer = self.tracer
        t0 = self.env._now if tracer is not None else 0.0
        yield self.env.timeout(self.transit_cycles)
        self._in_flight -= 1
        if tracer is not None:
            # Attributed to the destination node's timeline (the hop "ends"
            # there); the component charge is node-agnostic either way.
            tracer.net_span(message.dst, "transit", message, t0,
                            self.env._now)
        yield self.ports[message.dst]._wire.put(message)
