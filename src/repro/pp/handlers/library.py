"""The cache-coherence protocol handlers, in PP assembly.

These are the code sequences the protocol processor runs (the paper's
handlers were written in C, compiled with a gcc port, scheduled by PPtwine
and hand-tuned; ours are hand-written directly in the PP ISA).  The emulator
executes them against an encoded directory state to obtain data-dependent
dynamic cycle counts — the same methodology as PPsim + FlashLite.

Protocol-memory encoding (the dynamic pointer allocation structures):

    header word  @ r2:           bit0 dirty | bit1 pending |
                                 bits 8-15 owner | bits 16-31 head link + 1
    link word    @ r6 + 8*idx:   bits 0-7 node | bits 8-23 next link + 1
    free-list head (index + 1)   @ r6 - 8
    pending-write entry          @ r2 + 256 (requester-side ack counting)

Handler calling convention (loaded by the inbox):

    r1 = line address            r2 = directory header address
    r3 = requesting node         r4 = message source node
    r5 = auxiliary field         r6 = link store base
    r27 = statistics area        r30 = this node's id

Outgoing message header format (composed in a register, passed to ``send``):
bits 0-7 destination node | bits 8-15 message type | bits 16-23 requester.
Send units: 1 = PI, 2 = NI, 3 = memory, 4 = software queue.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["HANDLER_SOURCE"]

# Shared snippets -----------------------------------------------------------------

# Allocate a link from the free list, point it at the old list head, and make
# it the new head: the core of "add requester to the sharer list".
_LINK_ALLOC = """
    lw    r8, -8(r6)          # free-list head (index+1)
    addi  r9, r8, -1
    sll   r9, r9, 3
    add   r9, r9, r6          # address of the free link
    lw    r10, 0(r9)          # free link word
    bfext r11, r10, 8, 16     # next free (index+1)
    sw    r11, -8(r6)         # pop the free list
    bfext r12, r7, 16, 16     # old sharer-list head (index+1)
    bfins r13, {node}, 0, 8   # new link: node field
    bfins r13, r12, 8, 16     # new link: next field
    sw    r13, 0(r9)
    bfins r7, r8, 16, 16      # header head = new link (index+1)
"""

# Bump a performance-monitoring counter (FLASH handlers instrument
# themselves; the counters live in the statistics area).
_STAT = """
    lw    r26, {off}(r27)
    addi  r26, r26, 1
    sw    r26, {off}(r27)
"""


def _compose_reply(mtype: int, unit_reg: str = "r17") -> str:
    """Compose a reply header to the requester and pick PI vs NI."""
    return f"""
    addi  r15, r0, 0
    bfins r15, r3, 0, 8       # destination = requester
    addi  r16, r0, {mtype}
    bfins r15, r16, 8, 8      # message type
    bfins r15, r3, 16, 8      # requester field
    addi  {unit_reg}, r0, 1   # PI if the requester is local...
    beq   r3, r30, _local
    addi  {unit_reg}, r0, 2   # ...NI otherwise
_local:
"""


HANDLER_SOURCE: Dict[str, str] = {}

# -- requester-side -------------------------------------------------------------------

HANDLER_SOURCE["miss_forward"] = """
    bfext r7, r1, 26, 6       # home node from the line address
    addi  r9, r0, 0
    bfins r9, r7, 0, 8        # destination = home
    bfins r9, r3, 16, 8       # requester
    addi  r8, r0, 2           # NI
    send  r9, r8
    done
"""

HANDLER_SOURCE["writeback_forward"] = HANDLER_SOURCE["miss_forward"]
HANDLER_SOURCE["hint_forward"] = HANDLER_SOURCE["miss_forward"]

HANDLER_SOURCE["reply_to_proc"] = """
    addi  r7, r0, 0
    bfins r7, r3, 0, 8        # destination = local processor
    addi  r8, r0, 1           # PI
    send  r7, r8
    done
"""

HANDLER_SOURCE["ack_receive"] = """
    lw    r7, 256(r2)         # pending-write entry for the line
    addi  r7, r7, -1          # one fewer ack outstanding
    sw    r7, 256(r2)
    bne   r7, r0, _wait
    addi  r8, r0, 0
    bfins r8, r30, 0, 8       # all acks in: release the processor
    addi  r9, r0, 1
    send  r8, r9
_wait:
    done
"""

# -- home-side reads --------------------------------------------------------------------

HANDLER_SOURCE["get_home_clean"] = """
    lw    r7, 0(r2)           # directory header
    bbs   r7, 1, _pending
""" + _LINK_ALLOC.format(node="r3") + """
    sw    r7, 0(r2)           # write back the header
""" + _compose_reply(mtype=5) + """
    send  r15, r17            # PUT (data follows from memory)
    done
_pending:
    done
"""

HANDLER_SOURCE["get_home_dirty_local"] = """
    lw    r7, 0(r2)
    bfext r14, r7, 8, 8       # current owner (this node)
    addi  r18, r0, 0
    bfins r18, r14, 0, 8      # intervention: retrieve from processor cache
    addi  r19, r0, 9          # type: cache retrieve
    bfins r18, r19, 8, 8
    addi  r20, r0, 1
    send  r18, r20            # issue intervention through the PI
""" + _STAT.format(off=0) + """
    andi  r7, r7, -2          # clear dirty (bit 0)
    bfins r7, r0, 8, 8        # clear owner
""" + _LINK_ALLOC.format(node="r30") + _LINK_ALLOC.format(node="r3") + """
    sw    r7, 0(r2)
    addi  r21, r0, 0
    bfins r21, r1, 0, 26      # memory write of the retrieved line
    addi  r22, r0, 3
    send  r21, r22
""" + _compose_reply(mtype=5) + """
    send  r15, r17
""" + _STAT.format(off=8) + _STAT.format(off=16) + """
    done
"""

HANDLER_SOURCE["get_home_forward"] = """
    lw    r7, 0(r2)
    bfext r14, r7, 8, 8       # owner node
    ori   r7, r7, 2           # set pending
    sw    r7, 0(r2)
    addi  r18, r0, 0
    bfins r18, r14, 0, 8      # forward to the owner
    addi  r19, r0, 10         # type: forwarded GET
    bfins r18, r19, 8, 8
    bfins r18, r3, 16, 8      # original requester rides along
    addi  r20, r0, 2
    send  r18, r20
""" + _STAT.format(off=0) + _STAT.format(off=8) + """
    done
"""

HANDLER_SOURCE["get_local_forward"] = """
    lw    r7, 0(r2)
    bfext r14, r7, 8, 8
    ori   r7, r7, 2           # set pending
    sw    r7, 0(r2)
    addi  r18, r0, 0
    bfins r18, r14, 0, 8
    bfins r18, r3, 16, 8
    addi  r20, r0, 2
    send  r18, r20
    done
"""

HANDLER_SOURCE["get_owner"] = """
    addi  r18, r0, 0
    bfins r18, r30, 0, 8      # intervention to our own processor cache
    addi  r19, r0, 9
    bfins r18, r19, 8, 8
    addi  r20, r0, 1
    send  r18, r20
""" + _STAT.format(off=0) + """
    bfext r21, r1, 26, 6      # home node of the line
    addi  r22, r0, 0
    bfins r22, r21, 0, 8      # sharing writeback to the home
    addi  r23, r0, 11
    bfins r22, r23, 8, 8
    bfins r22, r3, 16, 8
    addi  r20, r0, 2
    send  r22, r20
""" + _compose_reply(mtype=5) + """
    send  r15, r17            # data reply straight to the requester
""" + _STAT.format(off=8) + _STAT.format(off=16) + _STAT.format(off=24) + """
    done
"""

# -- home-side writes --------------------------------------------------------------------

_INVAL_LOOP = """
    bfext r14, r7, 16, 16     # list head (index+1)
    addi  r25, r0, 0          # invalidation count
_loop:
    beq   r14, r0, _done_invals
    addi  r9, r14, -1
    sll   r9, r9, 3
    add   r9, r9, r6
    lw    r10, 0(r9)          # link word
    bfext r11, r10, 0, 8      # sharer node
    beq   r11, r3, _skip      # never invalidate the requester
    addi  r18, r0, 0
    bfins r18, r11, 0, 8      # inval to the sharer
    addi  r19, r0, 12
    bfins r18, r19, 8, 8
    bfins r18, r3, 16, 8      # acks go to the requester
    addi  r20, r0, 2
    send  r18, r20
    addi  r25, r25, 1
_skip:
    lw    r23, -8(r6)         # push the link back on the free list
    bfins r10, r23, 8, 16
    sw    r10, 0(r9)
    addi  r24, r14, 0
    sw    r24, -8(r6)
    bfext r14, r10, 8, 16     # stale next is fine: saved before overwrite
    done
_done_invals:
"""
# NOTE: the loop above deliberately reads the next pointer after pushing the
# link on the free list; bfins only touched bits 8-23, which previously held
# the next pointer, so the traversal must re-extract before the overwrite.
# The real handler keeps it in a register; do the same here:
_INVAL_LOOP = """
    bfext r14, r7, 16, 16     # list head (index+1)
    addi  r25, r0, 0          # invalidation count
_loop:
    beq   r14, r0, _done_invals
    addi  r9, r14, -1
    sll   r9, r9, 3
    add   r9, r9, r6
    lw    r10, 0(r9)          # link word
    bfext r11, r10, 0, 8      # sharer node
    bfext r21, r10, 8, 16     # next link (index+1), saved
    beq   r11, r3, _skip      # never invalidate the requester
    addi  r18, r0, 0
    bfins r18, r11, 0, 8      # inval to the sharer
    addi  r19, r0, 12
    bfins r18, r19, 8, 8
    bfins r18, r3, 16, 8      # acks go to the requester
    addi  r20, r0, 2
    send  r18, r20
    addi  r25, r25, 1
_skip:
    lw    r23, -8(r6)         # push this link back on the free list
    bfins r10, r23, 8, 16
    sw    r10, 0(r9)
    sw    r14, -8(r6)
    addi  r14, r21, 0
    j     _loop
_done_invals:
    bfins r7, r0, 16, 16      # sharer list is now empty
"""

HANDLER_SOURCE["getx_home_clean"] = """
    lw    r7, 0(r2)
    bbs   r7, 1, _pending
""" + _INVAL_LOOP + """
    ori   r7, r7, 1           # set dirty
    bfins r7, r3, 8, 8        # owner = requester
    sw    r7, 0(r2)
""" + _compose_reply(mtype=6) + """
    bfins r15, r25, 24, 8     # ack count rides in the reply
    send  r15, r17            # PUTX
    done
_pending:
    done
"""

HANDLER_SOURCE["upgrade_home"] = """
    lw    r7, 0(r2)
    bbs   r7, 1, _pending
""" + _INVAL_LOOP + """
    ori   r7, r7, 1
    bfins r7, r3, 8, 8
    sw    r7, 0(r2)
""" + _compose_reply(mtype=7) + """
    bfins r15, r25, 24, 8
    send  r15, r17            # UPGRADE_ACK (no data)
    done
_pending:
    done
"""

HANDLER_SOURCE["getx_home_dirty_local"] = HANDLER_SOURCE["get_home_dirty_local"]

HANDLER_SOURCE["getx_home_forward"] = HANDLER_SOURCE["get_home_forward"]
HANDLER_SOURCE["getx_local_forward"] = HANDLER_SOURCE["get_local_forward"]
HANDLER_SOURCE["getx_owner"] = HANDLER_SOURCE["get_owner"]

# -- three-hop completions ------------------------------------------------------------------

HANDLER_SOURCE["sharing_wb"] = """
    lw    r7, 0(r2)
    andi  r7, r7, -4          # clear dirty and pending
    bfins r7, r0, 8, 8        # clear owner
""" + _LINK_ALLOC.format(node="r4") + """
    sw    r7, 0(r2)
    addi  r21, r0, 0
    bfins r21, r1, 0, 26      # memory write of the line
    addi  r22, r0, 3
    send  r21, r22
    done
"""

HANDLER_SOURCE["ownership_xfer"] = """
    lw    r7, 0(r2)
    andi  r7, r7, -3          # clear pending (keep dirty)
    bfins r7, r3, 8, 8        # owner = new requester
    sw    r7, 0(r2)
""" + _STAT.format(off=0) + """
    done
"""

HANDLER_SOURCE["nak_home"] = """
    lw    r7, 0(r2)
    andi  r7, r7, -3          # clear pending; the request will be retried
    sw    r7, 0(r2)
    done
"""

HANDLER_SOURCE["deferred"] = """
    addi  r8, r0, 0
    bfins r8, r1, 0, 26       # park the message on the software queue
    addi  r9, r0, 4
    send  r8, r9
    done
"""

# -- invalidations at the sharer --------------------------------------------------------------

HANDLER_SOURCE["inval_receive"] = """
    addi  r18, r0, 0
    bfins r18, r30, 0, 8      # invalidate our processor's cached copy
    addi  r19, r0, 13
    bfins r18, r19, 8, 8
    addi  r20, r0, 1
    send  r18, r20
    addi  r15, r0, 0
    bfins r15, r3, 0, 8       # ack to the requester
    addi  r16, r0, 14
    bfins r15, r16, 8, 8
    addi  r17, r0, 2
    send  r15, r17
    done
"""

# -- writebacks and replacement hints ------------------------------------------------------------

HANDLER_SOURCE["writeback_local"] = """
    lw    r7, 0(r2)
    andi  r7, r7, -2          # clear dirty
    bfins r7, r0, 8, 8        # clear owner
    sw    r7, 0(r2)
    addi  r21, r0, 0
    bfins r21, r1, 0, 26
    addi  r22, r0, 3
    send  r21, r22            # write the line to memory
""" + _STAT.format(off=0) + """
    done
"""

HANDLER_SOURCE["writeback_remote"] = """
    lw    r7, 0(r2)
    andi  r7, r7, -2
    bfins r7, r0, 8, 8
    sw    r7, 0(r2)
    addi  r21, r0, 0
    bfins r21, r1, 0, 26
    addi  r22, r0, 3
    send  r21, r22
    done
"""

_HINT_UNLINK = """
    lw    r7, 0(r2)
    bfext r14, r7, 16, 16     # head (index+1)
    addi  r13, r0, 0          # previous link address (0 = header)
_scan:
    beq   r14, r0, _gone      # src was not on the list
    addi  r9, r14, -1
    sll   r9, r9, 3
    add   r9, r9, r6
    lw    r10, 0(r9)
    bfext r11, r10, 0, 8      # node in this link
    bfext r21, r10, 8, 16     # next (index+1)
    beq   r11, r4, _unlink
    addi  r13, r9, 0
    addi  r14, r21, 0
    j     _scan
_unlink:
    beq   r13, r0, _head
    lw    r12, 0(r13)         # previous link: splice around
    bfins r12, r21, 8, 16
    sw    r12, 0(r13)
    j     _free
_head:
    bfins r7, r21, 16, 16     # unlink at the header
_free:
    lw    r23, -8(r6)         # push the link on the free list
    bfins r10, r23, 8, 16
    sw    r10, 0(r9)
    sw    r14, -8(r6)
    sw    r7, 0(r2)
_gone:
"""

HANDLER_SOURCE["hint_local"] = _HINT_UNLINK + """
    done
"""

HANDLER_SOURCE["hint_remote"] = _HINT_UNLINK + _STAT.format(off=0) + """
    done
"""

# -- block-transfer message passing ([HGD+94]) ---------------------------------------

HANDLER_SOURCE["xfer_setup"] = """
    bfext r7, r5, 0, 16       # transfer length in lines (descriptor aux)
    bfext r8, r5, 16, 8       # receiver node
    addi  r9, r0, 0
    bfins r9, r8, 0, 8        # first-line header: destination
    addi  r10, r0, 20         # type: XFER_DATA
    bfins r9, r10, 8, 8
    bfins r9, r7, 16, 16      # remaining-lines field
    sw    r9, 0(r27)          # stash the running header in the stats area
""" + _STAT.format(off=8) + """
    done
"""

HANDLER_SOURCE["xfer_line"] = """
    lw    r9, 0(r27)          # running transfer header
    addi  r21, r0, 0
    bfins r21, r1, 0, 26      # program the datapath: memory read of the line
    addi  r22, r0, 3
    send  r21, r22
    addi  r20, r0, 2
    send  r9, r20             # inject the line into the network
    bfext r7, r9, 16, 16
    addi  r7, r7, -1          # one fewer line to go
    bfins r9, r7, 16, 16
    sw    r9, 0(r27)
    done
"""

HANDLER_SOURCE["xfer_receive"] = """
    addi  r21, r0, 0
    bfins r21, r1, 0, 26      # write the payload line to memory
    addi  r22, r0, 3
    send  r21, r22
    bfext r7, r5, 0, 16       # lines remaining in this transfer
    bne   r7, r0, _more
""" + _STAT.format(off=16) + """
    addi  r15, r0, 0
    bfins r15, r30, 0, 8      # completion notification to the local CPU
    addi  r16, r0, 21         # type: XFER_DONE
    bfins r15, r16, 8, 8
    addi  r17, r0, 1
    send  r15, r17
_more:
    done
"""
