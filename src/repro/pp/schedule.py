"""Static dual-issue scheduler (the PPtwine stand-in).

The PP executes one *instruction pair* per cycle with no interlocks, so all
pairs must be statically scheduled to avoid dependencies (Section 2).  This
list scheduler packs instructions into pairs within basic blocks:

* no intra-pair register dependency (RAW/WAW/WAR),
* at most one memory operation and one branch per pair,
* instructions only move earlier past independent instructions,
* branch targets always start a new pair.

Unfillable slots get NOPs, which is what makes the dynamic dual-issue
efficiency of Table 5.2 less than 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .isa import Instruction

__all__ = ["Pair", "Schedule", "schedule_pairs"]

_WINDOW = 6  # lookahead distance when hunting for a pairable instruction


@dataclass
class Pair:
    """One issue cycle: two slots."""

    first: Instruction
    second: Optional[Instruction]  # None renders as a NOP slot

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        if self.second is None:
            return (self.first,)
        return (self.first, self.second)

    @property
    def non_nop_count(self) -> int:
        return sum(1 for i in self.instructions if not i.is_nop)


class Schedule:
    """The packed handler: pairs plus the original-index -> pair-index map."""

    def __init__(self, pairs: List[Pair], pair_of: Dict[int, int]):
        self.pairs = pairs
        self.pair_of = pair_of

    @property
    def static_pairs(self) -> int:
        return len(self.pairs)

    @property
    def static_bytes(self) -> int:
        return len(self.pairs) * 8  # one 64-bit pair per cycle

    @property
    def static_nops(self) -> int:
        return sum(2 - p.non_nop_count for p in self.pairs)


def _conflict(a: Instruction, b: Instruction) -> bool:
    """True when b cannot issue in the same pair as (or move past) a."""
    a_writes, b_writes = set(a.writes()), set(b.writes())
    a_reads, b_reads = set(a.reads()), set(b.reads())
    if a_writes & (b_reads | b_writes):
        return True
    if b_writes & a_reads:
        return True
    if a.is_memory and b.is_memory:
        return True
    if a.op == "send" and b.op == "send":
        return True
    return False


def _pairable(a: Instruction, b: Instruction) -> bool:
    if b.is_branch or b.is_terminal:
        return False  # control flow stays in slot one of its own pair
    if a.is_memory and b.is_memory:
        return False
    if a.op == "send" and b.op == "send":
        return False
    return not _conflict(a, b)


def _leaders(instructions: List[Instruction]) -> List[int]:
    leaders = {0}
    for index, instr in enumerate(instructions):
        if instr.target is not None:
            leaders.add(instr.target)
        if (instr.is_branch or instr.is_terminal) and index + 1 < len(instructions):
            leaders.add(index + 1)
    return sorted(leaders)


def schedule_pairs(instructions: List[Instruction],
                   dual_issue: bool = True) -> Schedule:
    """Pack instructions into issue pairs; ``dual_issue=False`` produces the
    single-issue schedule used in the Section 5.3 ablation."""
    pairs: List[Pair] = []
    pair_of: Dict[int, int] = {}
    leaders = _leaders(instructions)
    block_bounds = list(zip(leaders, leaders[1:] + [len(instructions)]))

    for start, end in block_bounds:
        used = [False] * (end - start)
        for offset in range(end - start):
            if used[offset]:
                continue
            index = start + offset
            first = instructions[index]
            used[offset] = True
            second: Optional[Instruction] = None
            second_index: Optional[int] = None
            if dual_issue and not (first.is_branch or first.is_terminal):
                # Hunt for an independent partner within the window.
                blockers: List[Instruction] = []
                for ahead in range(offset + 1, min(offset + 1 + _WINDOW,
                                                   end - start)):
                    if used[ahead]:
                        continue
                    candidate = instructions[start + ahead]
                    if _pairable(first, candidate) and not any(
                        _conflict(mid, candidate) for mid in blockers
                    ):
                        second = candidate
                        second_index = start + ahead
                        used[ahead] = True
                        break
                    blockers.append(candidate)
                    if candidate.is_branch or candidate.is_terminal:
                        break  # nothing moves above control flow
            pair_index = len(pairs)
            pairs.append(Pair(first, second))
            pair_of[index] = pair_index
            if second_index is not None:
                pair_of[second_index] = pair_index
    return Schedule(pairs, pair_of)
