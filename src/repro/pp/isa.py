"""The protocol processor instruction set.

Section 2 / 5.3: the PP is a 64-bit dual-issue core with a DLX-based ISA
extended for protocol processing with bitfield insert/extract, branch on bit
set/clear, and find-first-set instructions.  All instruction pairs are
statically scheduled (no interlocks).

We model the integer subset the coherence handlers need.  Registers are
r0..r31 with r0 hardwired to zero.  By handler-calling convention, the inbox
preloads:

    r1  = message line address
    r2  = directory header address for the line
    r3  = requesting node
    r4  = source node of the message
    r5  = message auxiliary field (ack count, etc.)
    r30 = node id of this MAGIC chip

and the handler communicates outgoing messages through ``send`` (a
write-port to the outbox) and terminates with ``done``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..common.errors import PPError

__all__ = [
    "Instruction", "OPCODES", "SPECIAL_OPCODES", "MEMORY_OPCODES",
    "BRANCH_OPCODES", "ALU_OPCODES", "reg",
]

#: opcode -> (operand kinds, description)
#: operand kinds: R = register, I = immediate, L = label
OPCODES = {
    # DLX integer ALU.
    "add":   ("RRR", "rd = rs + rt"),
    "addi":  ("RRI", "rd = rs + imm"),
    "sub":   ("RRR", "rd = rs - rt"),
    "and":   ("RRR", "rd = rs & rt"),
    "andi":  ("RRI", "rd = rs & imm"),
    "or":    ("RRR", "rd = rs | rt"),
    "ori":   ("RRI", "rd = rs | imm"),
    "xor":   ("RRR", "rd = rs ^ rt"),
    "xori":  ("RRI", "rd = rs ^ imm"),
    "sll":   ("RRI", "rd = rs << imm"),
    "srl":   ("RRI", "rd = rs >> imm (logical)"),
    "slt":   ("RRR", "rd = 1 if rs < rt else 0"),
    "slti":  ("RRI", "rd = 1 if rs < imm else 0"),
    "lui":   ("RI",  "rd = imm << 16"),
    # Memory (through the MAGIC data cache).
    "lw":    ("RIR", "rd = mem[rs + off]"),
    "sw":    ("RIR", "mem[rs + off] = rd"),
    # Control.
    "beq":   ("RRL", "branch if rs == rt"),
    "bne":   ("RRL", "branch if rs != rt"),
    "j":     ("L",   "jump"),
    "nop":   ("",    "no operation"),
    "done":  ("",    "handler complete"),
    "send":  ("RR",  "dispatch outgoing message (header rs, dest-unit rt)"),
    # Protocol-processing extensions (Section 5.3 / Table 5.3).
    "bfext": ("RRII", "rd = (rs >> pos) & mask(len)"),
    "bfins": ("RRII", "rd[pos +: len] = rs[0 +: len]"),
    "bbs":   ("RIL", "branch if bit(rs, pos) == 1"),
    "bbc":   ("RIL", "branch if bit(rs, pos) == 0"),
    "ffs":   ("RR",  "rd = index of lowest set bit of rs (or 64)"),
}

SPECIAL_OPCODES = frozenset({"bfext", "bfins", "bbs", "bbc", "ffs"})
MEMORY_OPCODES = frozenset({"lw", "sw"})
BRANCH_OPCODES = frozenset({"beq", "bne", "j", "bbs", "bbc"})
ALU_OPCODES = frozenset(OPCODES) - MEMORY_OPCODES - BRANCH_OPCODES - {
    "nop", "done", "send",
}


def reg(name: str) -> int:
    """Parse a register name ('r7' -> 7)."""
    if not name.startswith("r"):
        raise PPError(f"bad register {name!r}")
    index = int(name[1:])
    if not 0 <= index < 32:
        raise PPError(f"register out of range: {name}")
    return index


@dataclass
class Instruction:
    """One decoded PP instruction."""

    op: str
    rd: Optional[int] = None          # destination register
    rs: Optional[int] = None          # first source
    rt: Optional[int] = None          # second source
    imm: Optional[int] = None         # immediate / offset / bit position
    imm2: Optional[int] = None        # second immediate (bitfield length)
    label: Optional[str] = None       # branch target
    target: Optional[int] = None      # resolved instruction index
    source_line: str = ""

    @property
    def is_nop(self) -> bool:
        return self.op == "nop"

    @property
    def is_special(self) -> bool:
        return self.op in SPECIAL_OPCODES

    @property
    def is_memory(self) -> bool:
        return self.op in MEMORY_OPCODES

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPCODES

    @property
    def is_terminal(self) -> bool:
        return self.op == "done"

    def reads(self) -> Tuple[int, ...]:
        """Registers this instruction reads."""
        regs: List[int] = []
        if self.op == "sw":
            # sw rd, off(rs): stores rd, reads the base rs.
            if self.rd is not None:
                regs.append(self.rd)
            if self.rs is not None:
                regs.append(self.rs)
        elif self.op == "send":
            if self.rs is not None:
                regs.append(self.rs)
            if self.rt is not None:
                regs.append(self.rt)
        elif self.op == "bfins":
            # Read-modify-write of the destination.
            if self.rd is not None:
                regs.append(self.rd)
            if self.rs is not None:
                regs.append(self.rs)
        else:
            if self.rs is not None:
                regs.append(self.rs)
            if self.rt is not None:
                regs.append(self.rt)
        return tuple(r for r in regs if r != 0)

    def writes(self) -> Tuple[int, ...]:
        if self.op in ("sw", "send", "nop", "done", "j", "beq", "bne",
                       "bbs", "bbc"):
            return ()
        if self.rd is None or self.rd == 0:
            return ()
        return (self.rd,)

    def __str__(self) -> str:
        return self.source_line or self.op
