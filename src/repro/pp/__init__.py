"""The protocol processor toolchain: ISA, assembler, dual-issue scheduler,
emulator (PPsim), DLX lowering, and the coherence handlers."""

from .assembler import assemble
from .costmodel import CompiledHandlers, EmulatedCostModel
from .emulator import PPEmulator, RunStats
from .isa import Instruction, OPCODES
from .lowering import lower_text
from .schedule import Pair, Schedule, schedule_pairs

__all__ = ["assemble", "CompiledHandlers", "EmulatedCostModel", "PPEmulator",
           "RunStats", "Instruction", "OPCODES", "lower_text", "Pair",
           "Schedule", "schedule_pairs"]
