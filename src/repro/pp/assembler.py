"""Assembler for PP handler code.

Handlers are written as assembly text (one instruction per line, ``label:``
lines, ``#`` comments).  The assembler produces a list of
:class:`~repro.pp.isa.Instruction` with branch targets resolved to
instruction indices.

Syntax examples::

    lw    r6, 0(r2)          # load the directory header
    bbs   r6, 0, dirty       # dirty bit set?
    bfext r7, r6, 8, 8       # extract the owner field
    addi  r8, r0, 3
    send  r8, r9
    done
  dirty:
    ...
"""

from __future__ import annotations

import re
from typing import Dict, List

from ..common.errors import PPError
from .isa import Instruction, OPCODES, reg

__all__ = ["assemble"]

_MEM_RE = re.compile(r"^(-?\d+)\((r\d+)\)$")


def _parse_operand(token: str):
    token = token.strip()
    if token.startswith("r") and token[1:].isdigit():
        return ("R", reg(token))
    match = _MEM_RE.match(token)
    if match:
        return ("M", (int(match.group(1)), reg(match.group(2))))
    try:
        return ("I", int(token, 0))
    except ValueError:
        return ("L", token)


def assemble(text: str, name: str = "handler") -> List[Instruction]:
    """Assemble handler text into resolved instructions."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    pending: List[Instruction] = []

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            label = line[:-1].strip()
            if label in labels:
                raise PPError(f"{name}: duplicate label {label!r}")
            labels[label] = len(instructions)
            continue
        parts = line.replace(",", " ").split()
        op = parts[0].lower()
        if op not in OPCODES:
            raise PPError(f"{name}: unknown opcode {op!r} in {line!r}")
        operands = [_parse_operand(tok) for tok in parts[1:]]
        instr = Instruction(op=op, source_line=line)
        if op in ("lw", "sw"):
            if len(operands) != 2 or operands[0][0] != "R" or operands[1][0] != "M":
                raise PPError(f"{name}: bad memory operands in {line!r}")
            instr.rd = operands[0][1]
            instr.imm, instr.rs = operands[1][1]
        elif op in ("bbs", "bbc"):
            instr.rs = operands[0][1]
            instr.imm = operands[1][1]
            instr.label = operands[2][1]
        elif op in ("beq", "bne"):
            instr.rs = operands[0][1]
            instr.rt = operands[1][1]
            instr.label = operands[2][1]
        elif op == "j":
            instr.label = operands[0][1]
        elif op in ("bfext", "bfins"):
            instr.rd = operands[0][1]
            instr.rs = operands[1][1]
            instr.imm = operands[2][1]
            instr.imm2 = operands[3][1]
        elif op == "ffs":
            instr.rd = operands[0][1]
            instr.rs = operands[1][1]
        elif op == "send":
            instr.rs = operands[0][1]
            instr.rt = operands[1][1]
        elif op == "lui":
            instr.rd = operands[0][1]
            instr.imm = operands[1][1]
        elif op in ("nop", "done"):
            pass
        else:
            # Three-operand ALU forms: rd, rs, (rt | imm).
            instr.rd = operands[0][1]
            instr.rs = operands[1][1]
            kind, value = operands[2]
            if kind == "R":
                instr.rt = value
            else:
                instr.imm = value
        if instr.label is not None:
            pending.append(instr)
        instructions.append(instr)

    for instr in pending:
        if instr.label not in labels:
            raise PPError(f"{name}: undefined label {instr.label!r}")
        instr.target = labels[instr.label]
    if not instructions or not any(i.is_terminal for i in instructions):
        raise PPError(f"{name}: handler has no 'done'")
    return instructions
