"""Lowering of PP special instructions to base-DLX sequences (Table 5.3).

For the Section 5.3 ablation ("we modified our compiler so that it generated
code that did not use any of the special instructions"), each bitfield /
branch-on-bit / find-first-set instruction is replaced by its DLX
substitution sequence:

    find first set bit   -> 6 instructions (2 cycles + 4 per bit checked)
    branch on bit        -> 2 or 4 instructions (bit position 0 vs higher)
    ALU field immediate  -> 1-5 instructions
    insert field         -> two field immediates followed by an "or"

Registers r28/r29 are reserved as lowering temporaries; handlers never use
them.
"""

from __future__ import annotations

import itertools
import re
from typing import List

from ..common.errors import PPError

__all__ = ["lower_text"]

_counter = itertools.count()


def _lower_line(line: str) -> List[str]:
    stripped = line.split("#", 1)[0].strip()
    if not stripped or stripped.endswith(":"):
        return [line]
    parts = stripped.replace(",", " ").split()
    op = parts[0].lower()
    if op == "bbs" or op == "bbc":
        rs, pos, label = parts[1], int(parts[2], 0), parts[3]
        branch = "bne" if op == "bbs" else "beq"
        if pos == 0:
            return [f"andi r28, {rs}, 1", f"{branch} r28, r0, {label}"]
        return [
            f"srl r28, {rs}, {pos}",
            "andi r28, r28, 1",
            f"{branch} r28, r0, {label}",
        ]
    if op == "bfext":
        rd, rs, pos, length = parts[1], parts[2], int(parts[3], 0), int(parts[4], 0)
        mask = (1 << length) - 1
        out = []
        if pos:
            out.append(f"srl {rd}, {rs}, {pos}")
            src = rd
        else:
            src = rs
        if mask <= 0x7FFF:
            out.append(f"andi {rd}, {src}, {mask}")
        else:
            out += [
                f"lui r29, {mask >> 16}",
                f"ori r29, r29, {mask & 0xFFFF}",
                f"and {rd}, {src}, r29",
            ]
        return out
    if op == "bfins":
        rd, rs, pos, length = parts[1], parts[2], int(parts[3], 0), int(parts[4], 0)
        mask = ((1 << length) - 1) << pos
        out = [f"sll r28, {rs}, {pos}" if pos else f"addi r28, {rs}, 0",
               f"xor r29, {rd}, r28"]
        if mask <= 0x7FFF:
            out.append(f"andi r29, r29, {mask}")
        else:
            out += [
                f"lui r28, {mask >> 16}",
                f"ori r28, r28, {mask & 0xFFFF}",
                "and r29, r29, r28",
            ]
        out.append(f"xor {rd}, {rd}, r29")
        return out
    if op == "ffs":
        rd, rs = parts[1], parts[2]
        n = next(_counter)
        loop, found = f"_ffs_loop_{n}", f"_ffs_done_{n}"
        return [
            f"addi r28, {rs}, 0",
            f"addi {rd}, r0, 0",
            f"{loop}:",
            "andi r29, r28, 1",
            f"bne r29, r0, {found}",
            "srl r28, r28, 1",
            f"addi {rd}, {rd}, 1",
            f"j {loop}",
            f"{found}:",
        ]
    return [line]


def lower_text(text: str) -> str:
    """Rewrite handler assembly without any special instructions."""
    if re.search(r"\br2[89]\b", text):
        raise PPError("handler uses lowering temporaries r28/r29")
    out: List[str] = []
    for line in text.splitlines():
        out.extend(_lower_line(line))
    return "\n".join(out)
