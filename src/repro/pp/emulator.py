"""PPsim — the protocol processor instruction-set emulator.

Executes a scheduled handler (pairs of instructions) against a small word
memory, reporting the dynamic statistics the paper's evaluation uses: cycle
count (= pairs executed), non-NOP instruction count, special-instruction use,
and the protocol-memory addresses touched (for MDC modeling).

Registers are 64-bit; r0 reads as zero.  ``send`` records an outgoing
message header; ``done`` ends the handler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..common.errors import PPError
from .isa import ALU_OPCODES, BRANCH_OPCODES, Instruction
from .schedule import Schedule

__all__ = ["RunStats", "PPEmulator"]

_MASK64 = (1 << 64) - 1
_MAX_PAIRS = 100_000  # runaway-handler backstop


@dataclass
class RunStats:
    """Dynamic statistics for one handler invocation."""

    cycles: int = 0                 # dual-issue pairs executed
    instructions: int = 0           # non-NOP instructions executed
    special: int = 0                # bitfield / branch-on-bit / ffs
    alu_or_branch: int = 0
    loads: int = 0
    stores: int = 0
    sends: List[Tuple[int, int]] = field(default_factory=list)
    touched: List[int] = field(default_factory=list)  # memory addresses

    @property
    def dual_issue_efficiency(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def special_fraction(self) -> float:
        return self.special / self.alu_or_branch if self.alu_or_branch else 0.0


class PPEmulator:
    """Executes scheduled handlers."""

    def __init__(
        self,
        load: Optional[Callable[[int], int]] = None,
        store: Optional[Callable[[int, int], None]] = None,
    ):
        self._memory: Dict[int, int] = {}
        self._load = load if load is not None else self._memory_load
        self._store = store if store is not None else self._memory_store

    # -- default dict-backed memory ------------------------------------------------

    def _memory_load(self, addr: int) -> int:
        return self._memory.get(addr, 0)

    def _memory_store(self, addr: int, value: int) -> None:
        self._memory[addr] = value

    def poke(self, addr: int, value: int) -> None:
        self._memory[addr] = value

    def peek(self, addr: int) -> int:
        return self._memory.get(addr, 0)

    # -- execution ---------------------------------------------------------------------

    def run(self, schedule: Schedule, registers: Dict[int, int]) -> RunStats:
        """Run a handler to its ``done``; ``registers`` preloads the calling
        convention (r1 = line address, etc.)."""
        regs = [0] * 32
        for index, value in registers.items():
            regs[index] = value & _MASK64
        stats = RunStats()
        pc = 0
        pairs = schedule.pairs
        while True:
            if pc >= len(pairs):
                raise PPError("handler ran off the end without 'done'")
            if stats.cycles >= _MAX_PAIRS:
                raise PPError("handler exceeded the cycle backstop")
            pair = pairs[pc]
            stats.cycles += 1
            next_pc = pc + 1
            for instr in pair.instructions:
                if instr.is_nop:
                    continue
                stats.instructions += 1
                if instr.is_special:
                    stats.special += 1
                if instr.op in ALU_OPCODES or instr.op in BRANCH_OPCODES:
                    stats.alu_or_branch += 1
                outcome = self._execute(instr, regs, stats, schedule)
                if outcome == "done":
                    return stats
                if outcome is not None:
                    next_pc = outcome
            pc = next_pc

    def _execute(self, instr: Instruction, regs: List[int], stats: RunStats,
                 schedule: Schedule):
        op = instr.op
        rd, rs, rt = instr.rd, instr.rs, instr.rt
        imm, imm2 = instr.imm, instr.imm2

        def read(index: Optional[int]) -> int:
            return 0 if index in (None, 0) else regs[index]

        def write(index: Optional[int], value: int) -> None:
            if index not in (None, 0):
                regs[index] = value & _MASK64

        if op == "add":
            write(rd, read(rs) + read(rt))
        elif op == "addi":
            write(rd, read(rs) + imm)
        elif op == "sub":
            write(rd, read(rs) - read(rt))
        elif op == "and":
            write(rd, read(rs) & read(rt))
        elif op == "andi":
            write(rd, read(rs) & (imm & _MASK64))
        elif op == "or":
            write(rd, read(rs) | read(rt))
        elif op == "ori":
            write(rd, read(rs) | (imm & _MASK64))
        elif op == "xor":
            write(rd, read(rs) ^ read(rt))
        elif op == "xori":
            write(rd, read(rs) ^ (imm & _MASK64))
        elif op == "sll":
            write(rd, read(rs) << (imm & 63))
        elif op == "srl":
            write(rd, read(rs) >> (imm & 63))
        elif op == "slt":
            write(rd, 1 if read(rs) < read(rt) else 0)
        elif op == "slti":
            write(rd, 1 if read(rs) < imm else 0)
        elif op == "lui":
            write(rd, (imm & 0xFFFF) << 16)
        elif op == "lw":
            addr = (read(rs) + imm) & _MASK64
            stats.loads += 1
            stats.touched.append(addr)
            write(rd, self._load(addr))
        elif op == "sw":
            addr = (read(rs) + imm) & _MASK64
            stats.stores += 1
            stats.touched.append(addr)
            self._store(addr, read(rd))
        elif op == "beq":
            if read(rs) == read(rt):
                return schedule.pair_of[instr.target]
        elif op == "bne":
            if read(rs) != read(rt):
                return schedule.pair_of[instr.target]
        elif op == "j":
            return schedule.pair_of[instr.target]
        elif op == "bbs":
            if (read(rs) >> imm) & 1:
                return schedule.pair_of[instr.target]
        elif op == "bbc":
            if not (read(rs) >> imm) & 1:
                return schedule.pair_of[instr.target]
        elif op == "bfext":
            write(rd, (read(rs) >> imm) & ((1 << imm2) - 1))
        elif op == "bfins":
            mask = ((1 << imm2) - 1) << imm
            value = (read(rd) & ~mask) | ((read(rs) << imm) & mask)
            write(rd, value)
        elif op == "ffs":
            value = read(rs)
            write(rd, (value & -value).bit_length() - 1 if value else 64)
        elif op == "send":
            stats.sends.append((read(rs), read(rt)))
        elif op == "done":
            return "done"
        elif op == "nop":
            pass
        else:  # pragma: no cover - assembler rejects unknown opcodes
            raise PPError(f"unimplemented opcode {op!r}")
        return None
