"""Emulator-backed PP cost model.

For each handler invocation the MAGIC chip needs an occupancy in cycles.
The table backend (:mod:`repro.magic.costmodel`) uses Table 3.4 constants;
this backend *executes the actual PP-assembly handlers* on the emulator
against a synthetic directory encoding matching the action's parameters
(sharer-list length, hint position, ...), exactly as PPsim supplied dynamic
cycle counts to FlashLite.  Results are cached per (handler, parameters)
signature, and dynamic statistics are accumulated for Table 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..common.params import MachineConfig
from ..protocol.coherence import Action, Handler
from .assembler import assemble
from .emulator import PPEmulator, RunStats
from .handlers.library import HANDLER_SOURCE
from .lowering import lower_text
from .schedule import Schedule, schedule_pairs

__all__ = ["CompiledHandlers", "EmulatedCostModel", "SyntheticState"]

# Synthetic protocol-memory layout for cost evaluation.
_HEADER_ADDR = 0x1000
_LINK_BASE = 0x2000
_STATS_BASE = 0x9000
_LINE_ADDR = 0x40000
_THIS_NODE = 1
_REQUESTER = 2
_SOURCE = 3


class CompiledHandlers:
    """All handlers assembled and scheduled for one PP configuration."""

    def __init__(self, dual_issue: bool = True, special_instructions: bool = True):
        self.dual_issue = dual_issue
        self.special_instructions = special_instructions
        self.schedules: Dict[str, Schedule] = {}
        for name, source in HANDLER_SOURCE.items():
            text = source if special_instructions else lower_text(source)
            instructions = assemble(text, name)
            self.schedules[name] = schedule_pairs(instructions,
                                                  dual_issue=dual_issue)

    @property
    def static_bytes(self) -> int:
        """Total static code size (one 64-bit pair per cycle slot)."""
        return sum(s.static_bytes for s in self.schedules.values())


class SyntheticState:
    """Builds an encoded directory image for a handler signature."""

    def __init__(self, n_sharers: int = 0, requester_on_list: bool = False,
                 position: Optional[int] = None, dirty: bool = False,
                 owner: int = _THIS_NODE, acks_left: int = 1):
        self.n_sharers = n_sharers
        self.requester_on_list = requester_on_list
        self.position = position
        self.dirty = dirty
        self.owner = owner
        self.acks_left = acks_left

    def install(self, emu: PPEmulator) -> Dict[int, int]:
        """Poke the image into the emulator; returns the register preload."""
        nodes: List[int] = []
        for i in range(self.n_sharers):
            nodes.append(4 + i)  # arbitrary distinct sharer nodes
        if self.requester_on_list:
            nodes.append(_REQUESTER)
        if self.position is not None:
            # Hint removal: the source node sits at `position` (1-based).
            nodes = [4 + i for i in range(self.position)]
            nodes[self.position - 1] = _SOURCE
        # Sharer links occupy indices 0..len-1; free links follow.
        head = 0
        for i, node in enumerate(nodes):
            nxt = i + 2 if i + 1 < len(nodes) else 0
            emu.poke(_LINK_BASE + 8 * i, node | (nxt << 8))
        head = 1 if nodes else 0
        free_start = len(nodes)
        for i in range(free_start, free_start + 8):
            nxt = i + 2 if i + 1 < free_start + 8 else 0
            emu.poke(_LINK_BASE + 8 * i, 0 | (nxt << 8))
        emu.poke(_LINK_BASE - 8, free_start + 1)
        header = (1 if self.dirty else 0) | (self.owner << 8) | (head << 16)
        emu.poke(_HEADER_ADDR, header)
        emu.poke(_HEADER_ADDR + 256, self.acks_left)  # pending-write entry
        return {
            1: _LINE_ADDR,
            2: _HEADER_ADDR,
            3: _REQUESTER,
            4: _SOURCE,
            5: 0,
            6: _LINK_BASE,
            27: _STATS_BASE,
            30: _THIS_NODE,
        }


def _state_for(action: Action) -> SyntheticState:
    handler = action.handler
    if handler in (Handler.GETX_HOME_CLEAN, Handler.UPGRADE_HOME):
        return SyntheticState(n_sharers=action.n_invals)
    if handler in (Handler.HINT_LOCAL, Handler.HINT_REMOTE):
        return SyntheticState(position=action.list_position or 1)
    if handler in (Handler.GET_HOME_DIRTY_LOCAL, Handler.GETX_HOME_DIRTY_LOCAL,
                   Handler.GET_HOME_FORWARD, Handler.GETX_HOME_FORWARD,
                   Handler.GET_LOCAL_FORWARD, Handler.GETX_LOCAL_FORWARD):
        return SyntheticState(dirty=True, owner=_THIS_NODE)
    if handler in (Handler.WRITEBACK_LOCAL, Handler.WRITEBACK_REMOTE,
                   Handler.SHARING_WB, Handler.OWNERSHIP_XFER,
                   Handler.NAK_HOME):
        return SyntheticState(dirty=True, owner=_SOURCE)
    if handler == Handler.ACK_RECEIVE:
        return SyntheticState(acks_left=1)
    return SyntheticState()


@dataclass
class _CachedCost:
    cycles: int
    stats: RunStats
    hits: int = 0


class EmulatedCostModel:
    """Drop-in replacement for the table cost model (Section 3.3: "we took
    ... the protocol code latencies from an instruction set emulator")."""

    def __init__(self, config: MachineConfig):
        self.handlers = CompiledHandlers(
            dual_issue=config.pp_dual_issue,
            special_instructions=config.pp_special_instructions,
        )
        self._cache: Dict[Tuple, _CachedCost] = {}

    def _signature(self, action: Action) -> Tuple:
        return (action.handler, action.n_invals, action.list_position)

    def cost(self, action: Action) -> int:
        signature = self._signature(action)
        cached = self._cache.get(signature)
        if cached is None:
            emu = PPEmulator()
            registers = _state_for(action).install(emu)
            stats = emu.run(self.handlers.schedules[action.handler], registers)
            cached = _CachedCost(cycles=stats.cycles, stats=stats)
            self._cache[signature] = cached
        cached.hits += 1
        return cached.cycles

    # -- Table 5.2 aggregates ------------------------------------------------------------

    def dynamic_totals(self) -> Dict[str, float]:
        pairs = instructions = special = alu_branch = invocations = 0
        for cached in self._cache.values():
            pairs += cached.stats.cycles * cached.hits
            instructions += cached.stats.instructions * cached.hits
            special += cached.stats.special * cached.hits
            alu_branch += cached.stats.alu_or_branch * cached.hits
            invocations += cached.hits
        return {
            "invocations": invocations,
            "pairs": pairs,
            "instructions": instructions,
            "dual_issue_efficiency": instructions / pairs if pairs else 0.0,
            "special_fraction": special / alu_branch if alu_branch else 0.0,
            "pairs_per_invocation": pairs / invocations if invocations else 0.0,
            "static_bytes": self.handlers.static_bytes,
        }
