"""Dynamic pointer allocation directory (Simoni's scheme, Section 3.3).

Each 128-byte line of a node's local memory has an 8-byte *directory header*
holding status bits and the head of a linked list of sharers.  The links live
in a per-node *link store* in main memory, managed with a free list.  The
protocol processor reaches both structures through the MAGIC data cache, so
every directory operation here reports the protocol-memory addresses it
touched; the MAGIC model replays those through the MDC to charge miss
penalties and memory bandwidth.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..common.errors import ConfigError, ProtocolError
from ..common.units import CACHE_LINE_BYTES, DIRECTORY_HEADER_BYTES

__all__ = ["DirectoryEntry", "Directory", "LinkStore"]

LINK_BYTES = 8


class LinkStore:
    """Pool of sharer-list links with a free list, as in dynamic pointer
    allocation.  Each link is (node, next_index)."""

    def __init__(self, capacity: int, base_addr: int):
        if capacity < 1:
            raise ConfigError("link store needs at least one link")
        self.capacity = capacity
        self.base_addr = base_addr
        self._node: List[int] = [0] * capacity
        self._next: List[Optional[int]] = [None] * capacity
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self.peak_used = 0
        self.total_allocated = 0
        self.total_freed = 0

    @property
    def used(self) -> int:
        return self.capacity - len(self._free)

    def addr_of(self, index: int) -> int:
        return self.base_addr + index * LINK_BYTES

    def allocate(self, node: int, next_index: Optional[int]) -> int:
        if not self._free:
            raise ProtocolError("directory link store exhausted")
        index = self._free.pop()
        self._node[index] = node
        self._next[index] = next_index
        self.total_allocated += 1
        self.peak_used = max(self.peak_used, self.used)
        return index

    def free(self, index: int) -> None:
        self._free.append(index)
        self.total_freed += 1

    def node_at(self, index: int) -> int:
        return self._node[index]

    def next_of(self, index: int) -> Optional[int]:
        return self._next[index]

    def set_next(self, index: int, next_index: Optional[int]) -> None:
        self._next[index] = next_index


class DirectoryEntry:
    """The in-memory directory header for one line."""

    __slots__ = ("dirty", "owner", "head", "pending", "deferred")

    def __init__(self) -> None:
        self.dirty = False
        self.owner: Optional[int] = None
        self.head: Optional[int] = None     # index into the link store
        self.pending = False                # three-hop transaction in flight
        self.deferred: Deque = deque()      # messages replayed when stable

    @property
    def is_uncached(self) -> bool:
        return not self.dirty and self.head is None


class Directory:
    """Directory state for all lines homed at one node."""

    def __init__(self, node_id: int, memory_bytes: int, n_links: int):
        self.node_id = node_id
        self.memory_bytes = memory_bytes
        self.n_lines = memory_bytes // CACHE_LINE_BYTES
        # Protocol data sits past the data region in the node's address map;
        # only the MDC cares about these addresses.
        self.header_base = memory_bytes
        link_base = self.header_base + self.n_lines * DIRECTORY_HEADER_BYTES
        self.links = LinkStore(n_links, link_base)
        self._entries: dict = {}
        # State-transition counters, harvested by the metrics registry.
        self.n_add_sharer = 0
        self.n_remove_sharer = 0
        self.n_clear_sharers = 0
        self.n_set_dirty = 0
        self.n_clear_dirty = 0

    # -- addressing -----------------------------------------------------------

    def local_line_index(self, line_addr: int) -> int:
        index = (line_addr - self.node_id * self.memory_bytes) // CACHE_LINE_BYTES
        if not 0 <= index < self.n_lines:
            raise ProtocolError(
                f"line {line_addr:#x} is not homed at node {self.node_id}"
            )
        return index

    def header_addr(self, line_addr: int) -> int:
        """Protocol-memory address of the line's directory header."""
        return self.header_base + self.local_line_index(line_addr) * DIRECTORY_HEADER_BYTES

    # -- entry access -----------------------------------------------------------

    def entry(self, line_addr: int) -> DirectoryEntry:
        self.local_line_index(line_addr)  # validates homing
        entry = self._entries.get(line_addr)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[line_addr] = entry
        return entry

    def sharers(self, line_addr: int) -> List[int]:
        """Sharer list in link order (head first)."""
        entry = self.entry(line_addr)
        result: List[int] = []
        index = entry.head
        while index is not None:
            result.append(self.links.node_at(index))
            index = self.links.next_of(index)
        return result

    # -- mutating operations ------------------------------------------------------
    # Each returns (result, touched_addrs): the protocol-memory addresses the
    # PP read or wrote, in access order, for MDC simulation.

    def add_sharer(self, line_addr: int, node: int) -> Tuple[bool, List[int]]:
        """Prepend ``node`` to the sharer list; returns (added, addrs)."""
        self.n_add_sharer += 1
        entry = self.entry(line_addr)
        touched = [self.header_addr(line_addr)]
        # The handler scans for duplicates only when the protocol can re-add
        # (e.g. a re-read after a hint raced); scanning touches links.
        index = entry.head
        while index is not None:
            touched.append(self.links.addr_of(index))
            if self.links.node_at(index) == node:
                return False, touched
            index = self.links.next_of(index)
        new_index = self.links.allocate(node, entry.head)
        entry.head = new_index
        touched.append(self.links.addr_of(new_index))
        return True, touched

    def remove_sharer(self, line_addr: int, node: int) -> Tuple[Optional[int], List[int]]:
        """Unlink ``node``; returns (1-based position or None, addrs)."""
        self.n_remove_sharer += 1
        entry = self.entry(line_addr)
        touched = [self.header_addr(line_addr)]
        prev: Optional[int] = None
        index = entry.head
        position = 0
        while index is not None:
            position += 1
            touched.append(self.links.addr_of(index))
            if self.links.node_at(index) == node:
                nxt = self.links.next_of(index)
                if prev is None:
                    entry.head = nxt
                else:
                    self.links.set_next(prev, nxt)
                self.links.free(index)
                return position, touched
            prev = index
            index = self.links.next_of(index)
        return None, touched

    def clear_sharers(self, line_addr: int) -> Tuple[List[int], List[int]]:
        """Drop the whole list (invalidation); returns (nodes, addrs)."""
        self.n_clear_sharers += 1
        entry = self.entry(line_addr)
        touched = [self.header_addr(line_addr)]
        nodes: List[int] = []
        index = entry.head
        while index is not None:
            touched.append(self.links.addr_of(index))
            nodes.append(self.links.node_at(index))
            nxt = self.links.next_of(index)
            self.links.free(index)
            index = nxt
        entry.head = None
        return nodes, touched

    def set_dirty(self, line_addr: int, owner: int) -> List[int]:
        self.n_set_dirty += 1
        entry = self.entry(line_addr)
        if entry.head is not None:
            raise ProtocolError(
                f"line {line_addr:#x} set dirty with live sharer list"
            )
        entry.dirty = True
        entry.owner = owner
        return [self.header_addr(line_addr)]

    def clear_dirty(self, line_addr: int) -> List[int]:
        self.n_clear_dirty += 1
        entry = self.entry(line_addr)
        entry.dirty = False
        entry.owner = None
        return [self.header_addr(line_addr)]

    # -- integrity ------------------------------------------------------------

    def check_invariants(self, line_addr: int) -> None:
        """Raise ProtocolError if the entry violates directory invariants."""
        entry = self.entry(line_addr)
        if entry.dirty:
            if entry.owner is None:
                raise ProtocolError(f"dirty line {line_addr:#x} without owner")
            if entry.head is not None:
                raise ProtocolError(f"dirty line {line_addr:#x} with sharers")
        else:
            if entry.owner is not None:
                raise ProtocolError(f"clean line {line_addr:#x} with owner set")
        seen = set()
        for node in self.sharers(line_addr):
            if node in seen:
                raise ProtocolError(
                    f"node {node} appears twice on sharer list of {line_addr:#x}"
                )
            seen.add(node)
