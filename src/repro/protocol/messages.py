"""Message types of the cache-coherence protocol.

Following the paper, a *message* is any inter- or intra-node communication:
processor requests arriving at MAGIC through the PI, network messages through
the NI, and replies back to the processor.  Every message carries the line
address it concerns, its source and destination node, and the identity of the
original requester (needed for three-hop transactions).
"""

from __future__ import annotations

import itertools
import sys
from typing import Optional

__all__ = ["MessageType", "Message", "DATA_BEARING", "acquire"]

# Message recycling relies on CPython reference-count semantics to prove a
# retired message unreachable (same discipline as the event-kernel pools in
# repro.sim.engine); under mypyc or another interpreter the free-list stays
# empty and every construction allocates.
_COMPILED = not __file__.endswith(".py")
RECYCLING = sys.implementation.name == "cpython" and not _COMPILED

#: Constructor free-list.  The fused epilogues in ``magic.chip`` and
#: ``ideal.controller`` retire messages here when an inline refcount check
#: proves nothing else can see them; :meth:`Message.reply` — the protocol-hop
#: constructor — draws from it.  Recycled messages get a fresh ``uid``, so
#: uid-keyed state (the speculation table) never aliases across lives.
FREE_LIST: list = []


class MessageType:
    """Protocol message opcodes."""

    # Processor -> MAGIC (through the PI).
    GET = "GET"                      # read miss
    GETX = "GETX"                    # write miss (needs data + ownership)
    UPGRADE = "UPGRADE"              # write hit on a SHARED line (ownership only)
    WRITEBACK = "WRITEBACK"          # dirty eviction
    REPL_HINT = "REPL_HINT"          # clean eviction notice

    # Network requests (requester -> home).
    REMOTE_GET = "REMOTE_GET"
    REMOTE_GETX = "REMOTE_GETX"
    REMOTE_UPGRADE = "REMOTE_UPGRADE"
    REMOTE_WRITEBACK = "REMOTE_WRITEBACK"
    REMOTE_REPL_HINT = "REMOTE_REPL_HINT"

    # Home -> owner forwards (three-hop transactions).
    FORWARD_GET = "FORWARD_GET"
    FORWARD_GETX = "FORWARD_GETX"

    # Replies.
    PUT = "PUT"                      # data reply, shared
    PUTX = "PUTX"                    # data reply, exclusive (carries n_invals)
    UPGRADE_ACK = "UPGRADE_ACK"      # ownership grant without data
    NAK = "NAK"                      # forward missed (owner no longer dirty)

    # Invalidation traffic.
    INVAL = "INVAL"                  # home -> sharer
    INVAL_ACK = "INVAL_ACK"          # sharer -> requester

    # Owner -> home completion of three-hop transactions.
    SHARING_WRITEBACK = "SHARING_WB"     # after a forwarded GET
    OWNERSHIP_TRANSFER = "OWNERSHIP_XFER"  # after a forwarded GETX

    # Block-transfer message passing (the [HGD+94] mechanism; handled by the
    # node controller's transfer handlers, not the coherence engine).
    XFER_SEND = "XFER_SEND"          # CPU -> local MAGIC: send descriptor
    XFER_DATA = "XFER_DATA"          # one line of payload on the network
    XFER_DONE = "XFER_DONE"          # completion notification to receiver CPU

    # Fault injection (repro.faults): a dropped request returned to its
    # sender, which retries it after a backoff.  Never sent in clean runs.
    BOUNCE = "BOUNCE"


#: Message types whose payload includes a full cache line (these need a MAGIC
#: data buffer and a memory or cache data source).
DATA_BEARING = frozenset({
    MessageType.PUT,
    MessageType.PUTX,
    MessageType.WRITEBACK,
    MessageType.REMOTE_WRITEBACK,
    MessageType.SHARING_WRITEBACK,
    MessageType.XFER_DATA,
})

#: Message types handled by the controller's block-transfer path rather than
#: the coherence engine.
TRANSFER_TYPES = frozenset({
    MessageType.XFER_SEND,
    MessageType.XFER_DATA,
    MessageType.XFER_DONE,
})

_sequence = itertools.count()


class Message:
    """One protocol message.

    Hand-rolled slots class (not a dataclass): a simulated run constructs one
    Message per protocol hop, so construction cost is on the hot path.
    """

    __slots__ = ("mtype", "line_addr", "src", "dst", "requester", "is_write",
                 "n_invals", "data_stale", "nbytes", "orig", "uid",
                 "carries_data")

    def __init__(self, mtype: str, line_addr: int, src: int, dst: int,
                 requester: int, is_write: bool = False, n_invals: int = 0,
                 data_stale: bool = False, nbytes: int = 0,
                 orig: Optional["Message"] = None, uid: Optional[int] = None):
        if line_addr < 0:
            raise ValueError(f"negative line address {line_addr}")
        self.mtype = mtype
        self.line_addr = line_addr
        self.src = src                  # node sending this message
        self.dst = dst                  # node that must process it
        self.requester = requester      # node whose processor started the transaction
        self.is_write = is_write        # transaction kind for miss classification
        self.n_invals = n_invals        # acks the requester must collect (PUTX/UPGRADE_ACK)
        self.data_stale = data_stale    # memory copy is stale (speculation is useless)
        self.nbytes = nbytes            # block-transfer payload size (XFER_*)
        self.orig = orig                # dropped original carried by a BOUNCE
        self.uid = next(_sequence) if uid is None else uid
        # Precomputed ``mtype in DATA_BEARING`` — checked several times per
        # message on the intake/outbound hot paths.
        self.carries_data = mtype in DATA_BEARING

    def reply(self, mtype: str, dst: Optional[int] = None, **kwargs) -> "Message":
        """Construct a follow-on message for the same transaction."""
        if FREE_LIST and not kwargs:
            # Recycle a retired message: every slot is rewritten, so no state
            # leaks from its previous life.  ``line_addr`` was validated when
            # ``self`` was built, so the constructor check is redundant here.
            message = FREE_LIST.pop()
            message.mtype = mtype
            message.line_addr = self.line_addr
            message.src = self.dst
            message.dst = self.requester if dst is None else dst
            message.requester = self.requester
            message.is_write = self.is_write
            message.n_invals = 0
            message.data_stale = False
            message.nbytes = 0
            message.orig = None
            message.uid = next(_sequence)
            message.carries_data = mtype in DATA_BEARING
            return message
        return Message(
            mtype=mtype,
            line_addr=self.line_addr,
            src=self.dst,
            dst=self.requester if dst is None else dst,
            requester=self.requester,
            is_write=kwargs.pop("is_write", self.is_write),
            **kwargs,
        )

    def __repr__(self) -> str:
        return (
            f"Message({self.mtype}, line={self.line_addr:#x}, "
            f"{self.src}->{self.dst}, req={self.requester})"
        )


def acquire(mtype: str, line_addr: int, src: int, dst: int, requester: int,
            is_write: bool = False, n_invals: int = 0,
            data_stale: bool = False) -> Message:
    """Pool-aware constructor for the hot protocol paths.

    Semantically identical to ``Message(...)`` for the parameters it accepts
    (the rare ``nbytes``/``orig``/``uid`` construction sites keep calling the
    class directly); when the free-list has a retired message it is rewritten
    in place instead of allocating.
    """
    if FREE_LIST:
        if line_addr < 0:
            raise ValueError(f"negative line address {line_addr}")
        message = FREE_LIST.pop()
        message.mtype = mtype
        message.line_addr = line_addr
        message.src = src
        message.dst = dst
        message.requester = requester
        message.is_write = is_write
        message.n_invals = n_invals
        message.data_stale = data_stale
        message.nbytes = 0
        message.orig = None
        message.uid = next(_sequence)
        message.carries_data = mtype in DATA_BEARING
        return message
    return Message(mtype, line_addr, src, dst, requester, is_write,
                   n_invals, data_stale)
