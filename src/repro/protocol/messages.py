"""Message types of the cache-coherence protocol.

Following the paper, a *message* is any inter- or intra-node communication:
processor requests arriving at MAGIC through the PI, network messages through
the NI, and replies back to the processor.  Every message carries the line
address it concerns, its source and destination node, and the identity of the
original requester (needed for three-hop transactions).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["MessageType", "Message", "DATA_BEARING"]


class MessageType:
    """Protocol message opcodes."""

    # Processor -> MAGIC (through the PI).
    GET = "GET"                      # read miss
    GETX = "GETX"                    # write miss (needs data + ownership)
    UPGRADE = "UPGRADE"              # write hit on a SHARED line (ownership only)
    WRITEBACK = "WRITEBACK"          # dirty eviction
    REPL_HINT = "REPL_HINT"          # clean eviction notice

    # Network requests (requester -> home).
    REMOTE_GET = "REMOTE_GET"
    REMOTE_GETX = "REMOTE_GETX"
    REMOTE_UPGRADE = "REMOTE_UPGRADE"
    REMOTE_WRITEBACK = "REMOTE_WRITEBACK"
    REMOTE_REPL_HINT = "REMOTE_REPL_HINT"

    # Home -> owner forwards (three-hop transactions).
    FORWARD_GET = "FORWARD_GET"
    FORWARD_GETX = "FORWARD_GETX"

    # Replies.
    PUT = "PUT"                      # data reply, shared
    PUTX = "PUTX"                    # data reply, exclusive (carries n_invals)
    UPGRADE_ACK = "UPGRADE_ACK"      # ownership grant without data
    NAK = "NAK"                      # forward missed (owner no longer dirty)

    # Invalidation traffic.
    INVAL = "INVAL"                  # home -> sharer
    INVAL_ACK = "INVAL_ACK"          # sharer -> requester

    # Owner -> home completion of three-hop transactions.
    SHARING_WRITEBACK = "SHARING_WB"     # after a forwarded GET
    OWNERSHIP_TRANSFER = "OWNERSHIP_XFER"  # after a forwarded GETX

    # Block-transfer message passing (the [HGD+94] mechanism; handled by the
    # node controller's transfer handlers, not the coherence engine).
    XFER_SEND = "XFER_SEND"          # CPU -> local MAGIC: send descriptor
    XFER_DATA = "XFER_DATA"          # one line of payload on the network
    XFER_DONE = "XFER_DONE"          # completion notification to receiver CPU

    # Fault injection (repro.faults): a dropped request returned to its
    # sender, which retries it after a backoff.  Never sent in clean runs.
    BOUNCE = "BOUNCE"


#: Message types whose payload includes a full cache line (these need a MAGIC
#: data buffer and a memory or cache data source).
DATA_BEARING = frozenset({
    MessageType.PUT,
    MessageType.PUTX,
    MessageType.WRITEBACK,
    MessageType.REMOTE_WRITEBACK,
    MessageType.SHARING_WRITEBACK,
    MessageType.XFER_DATA,
})

#: Message types handled by the controller's block-transfer path rather than
#: the coherence engine.
TRANSFER_TYPES = frozenset({
    MessageType.XFER_SEND,
    MessageType.XFER_DATA,
    MessageType.XFER_DONE,
})

_sequence = itertools.count()


@dataclass
class Message:
    """One protocol message."""

    mtype: str
    line_addr: int
    src: int                          # node sending this message
    dst: int                          # node that must process it
    requester: int                    # node whose processor started the transaction
    is_write: bool = False            # transaction kind for miss classification
    n_invals: int = 0                 # acks the requester must collect (PUTX/UPGRADE_ACK)
    data_stale: bool = False          # memory copy is stale (speculation is useless)
    nbytes: int = 0                   # block-transfer payload size (XFER_*)
    orig: Optional["Message"] = None  # dropped original carried by a BOUNCE
    uid: int = field(default_factory=lambda: next(_sequence))

    def __post_init__(self) -> None:
        if self.line_addr < 0:
            raise ValueError(f"negative line address {self.line_addr}")

    @property
    def carries_data(self) -> bool:
        return self.mtype in DATA_BEARING

    def reply(self, mtype: str, dst: Optional[int] = None, **kwargs) -> "Message":
        """Construct a follow-on message for the same transaction."""
        return Message(
            mtype=mtype,
            line_addr=self.line_addr,
            src=self.dst,
            dst=self.requester if dst is None else dst,
            requester=self.requester,
            is_write=kwargs.pop("is_write", self.is_write),
            **kwargs,
        )

    def __repr__(self) -> str:
        return (
            f"Message({self.mtype}, line={self.line_addr:#x}, "
            f"{self.src}->{self.dst}, req={self.requester})"
        )
