"""The dynamic-pointer-allocation coherence protocol and its variants."""

from .coherence import Action, Handler, MissClass, NodeProtocolEngine
from .directory import Directory, DirectoryEntry, LinkStore
from .messages import DATA_BEARING, Message, MessageType, TRANSFER_TYPES
from .migratory import MigratoryProtocolEngine

__all__ = ["Action", "Handler", "MissClass", "NodeProtocolEngine",
           "Directory", "DirectoryEntry", "LinkStore", "DATA_BEARING",
           "Message", "MessageType", "TRANSFER_TYPES",
           "MigratoryProtocolEngine"]
