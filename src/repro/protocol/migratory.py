"""A migratory-data protocol variant — flexibility in action.

The paper's central argument for MAGIC is that a *programmable* controller
"permits experimentation with new protocols" (Section 1) and that "one can
always exploit the flexibility of MAGIC to implement a coherency protocol
that uses the [machine] more efficiently" (Section 5.2).  This module is
that experiment: a drop-in protocol variant implementing the classic
migratory-sharing optimization (Cox & Fowler / Stenström et al., 1993).

Migratory data — lines that each processor reads and then writes in turn
(MP3D's space cells, locks' protected data) — cost two transactions per
hand-off under the base protocol: a 3-hop GET that downgrades the owner to
SHARED, then an UPGRADE that invalidates it again.  The migratory protocol
*detects* the pattern at the directory and, on the next read miss to such a
line, hands ownership over directly: the forwarded GET invalidates the old
owner and the reply grants the line dirty, eliminating the upgrade entirely.

Detection (per line, at the home):

* a read miss by node A followed by A's upgrade marks one migratory step;
* two consecutive steps by different nodes classify the line migratory;
* a read miss that is *not* followed by an upgrade (a genuinely shared
  read) declassifies it.

Everything else reuses the base engine — the point is precisely that a new
protocol is a small amount of new handler code.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..caches.setassoc import CacheState
from .coherence import Action, Handler, NodeProtocolEngine
from .messages import Message, MessageType as MT, acquire as _acquire

__all__ = ["MigratoryProtocolEngine"]


class _LineHistory:
    """Per-line migratory-pattern detector state."""

    __slots__ = ("last_reader", "last_was_promoted", "migratory", "steps",
                 "grants_since_probe")

    def __init__(self) -> None:
        self.last_reader: Optional[int] = None
        self.last_was_promoted = False
        self.migratory = False
        self.steps = 0
        # Exclusive grants hide read-only consumers, so every Nth grant is
        # served as a normal shared read (a *probe*) to re-test the pattern.
        self.grants_since_probe = 0


class MigratoryProtocolEngine(NodeProtocolEngine):
    """Base protocol plus migratory detection and exclusive hand-off."""

    #: serve one shared-read probe per this many exclusive grants
    PROBE_PERIOD = 8

    def __init__(self, *args, probe_period: Optional[int] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self._history: Dict[int, _LineHistory] = {}
        self.probe_period = probe_period or self.PROBE_PERIOD
        # Statistics for the flexibility experiment.
        self.migratory_grants = 0      # reads answered with exclusive data
        self.upgrades_saved = 0        # upgrades that never had to happen
        self.declassified = 0          # lines that stopped being migratory
        self.probes = 0                # grants downgraded to shared probes

    # -- pattern detection --------------------------------------------------------

    def _hist(self, line_addr: int) -> _LineHistory:
        history = self._history.get(line_addr)
        if history is None:
            history = _LineHistory()
            self._history[line_addr] = history
        return history

    def _note_read(self, line_addr: int, reader: int) -> None:
        history = self._hist(line_addr)
        if history.last_reader is not None and not history.last_was_promoted:
            # The previous reader never wrote: the line is plainly shared.
            if history.migratory:
                self.declassified += 1
            history.migratory = False
            history.steps = 0
        history.last_reader = reader
        history.last_was_promoted = False

    def _note_promotion(self, line_addr: int, writer: int) -> None:
        """The reader upgraded: one migratory step completes."""
        history = self._hist(line_addr)
        if history.last_reader == writer:
            history.last_was_promoted = True
            history.steps += 1
            if history.steps >= 2:
                history.migratory = True

    # -- overridden transitions --------------------------------------------------------

    def _home_read(self, msg: Message, entry) -> Action:
        line = msg.line_addr
        history = self._hist(line)
        if (
            history.migratory
            and entry.dirty
            and entry.owner != msg.requester
        ):
            if history.grants_since_probe + 1 >= self.probe_period:
                # Probe: serve as a plain shared read so a stopped pattern
                # can be observed and the line declassified.
                history.grants_since_probe = 0
                self.probes += 1
            else:
                history.grants_since_probe += 1
                return self._migratory_read(msg, entry)
        self._note_read(line, msg.requester)
        return super()._home_read(msg, entry)

    def _migratory_read(self, msg: Message, entry) -> Action:
        """Serve a read miss on a migratory line with an exclusive grant."""
        line = msg.line_addr
        local = msg.requester == self.node_id
        self.migratory_grants += 1
        self.upgrades_saved += 1
        cls = self._classify_read(msg, entry.dirty, entry.owner)
        self.miss_classes[cls] += 1
        if self.tracer is not None:
            self.tracer.classify(msg.requester, line, cls)
        # Record the hand-off as a completed migratory step.
        history = self._hist(line)
        history.last_reader = msg.requester
        history.last_was_promoted = True
        if entry.owner == self.node_id:
            # Dirty in the home's own cache: invalidate it and grant dirty.
            self._cache_invalidate(line)
            addrs = self.directory.clear_dirty(line)
            addrs += self.directory.set_dirty(line, msg.requester)
            reply = msg.reply(MT.PUTX, n_invals=0)
            action = Action(
                Handler.GETX_HOME_DIRTY_LOCAL, msg, dir_addrs=addrs,
                cache_retrieve=True, cache_touched=True, writes_memory=True,
                memory_stale=True, miss_class=cls,
            )
            if local:
                self._note_write_issued(line)
                action.cpu_deliver = self._complete_write_data(line, reply)
            else:
                action.sends = [reply]
            return action
        # Dirty in a third node: forward as a GETX so the owner invalidates
        # itself and passes ownership straight to the reader.
        entry.pending = True
        forward = _acquire(MT.FORWARD_GETX, line, self.node_id, entry.owner,
                          msg.requester, is_write=True)
        handler = (Handler.GETX_LOCAL_FORWARD if local
                   else Handler.GETX_HOME_FORWARD)
        return Action(
            handler, msg, dir_addrs=[self.directory.header_addr(line)],
            memory_stale=True, sends=[forward], miss_class=cls,
        )

    def _home_write(self, msg: Message, entry) -> Action:
        # An upgrade from the last reader is the migratory signature.
        if msg.mtype in (MT.UPGRADE, MT.REMOTE_UPGRADE, MT.GETX,
                         MT.REMOTE_GETX):
            self._note_promotion(msg.line_addr, msg.requester)
        return super()._home_write(msg, entry)

    # -- introspection --------------------------------------------------------------------

    def migratory_lines(self) -> List[int]:
        return [line for line, h in self._history.items() if h.migratory]
