"""The cache-coherence protocol engine.

This module holds the *semantics* of the dynamic-pointer-allocation directory
protocol: given a message arriving at a node, what directory transitions
occur, which messages go out, and which handler (for PP costing) ran.  It is
deliberately free of timing — the FLASH MAGIC model and the ideal controller
both execute these transitions, applying their own latencies around them.

Serialization model: each node processes one message at a time (FLASH's
single protocol processor).  The home directory defers conflicting requests
on a line with a three-hop transaction in flight (``pending``) and replays
them when the transaction completes, standing in for FLASH's NAK/retry corner
cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..caches.setassoc import CacheState
from ..common.errors import ProtocolError
from .directory import Directory
from .messages import Message, MessageType as MT, acquire as _acquire

__all__ = ["Handler", "Action", "NodeProtocolEngine", "MissClass"]


class MissClass:
    """The five read-miss categories of Table 4.1."""

    LOCAL_CLEAN = "local_clean"
    LOCAL_DIRTY_REMOTE = "local_dirty_remote"
    REMOTE_CLEAN = "remote_clean"
    REMOTE_DIRTY_HOME = "remote_dirty_home"
    REMOTE_DIRTY_REMOTE = "remote_dirty_remote"

    ALL = (
        LOCAL_CLEAN,
        LOCAL_DIRTY_REMOTE,
        REMOTE_CLEAN,
        REMOTE_DIRTY_HOME,
        REMOTE_DIRTY_REMOTE,
    )


class Handler:
    """Handler identities, used for PP cost lookup and emulator dispatch."""

    MISS_FORWARD = "miss_forward"              # requester sends request to home
    GET_HOME_CLEAN = "get_home_clean"          # Table 3.4: 11
    GET_HOME_DIRTY_LOCAL = "get_home_dirty_local"    # retrieve from own cache
    GET_HOME_FORWARD = "get_home_forward"      # home forwards to dirty third node
    GET_LOCAL_FORWARD = "get_local_forward"    # home==requester forwards to owner
    GET_OWNER = "get_owner"                    # forwarded GET at the owner
    GETX_HOME_CLEAN = "getx_home_clean"        # Table 3.4: 14 (+13/inval)
    GETX_HOME_DIRTY_LOCAL = "getx_home_dirty_local"
    GETX_HOME_FORWARD = "getx_home_forward"
    GETX_LOCAL_FORWARD = "getx_local_forward"
    GETX_OWNER = "getx_owner"                  # forwarded GETX at the owner
    UPGRADE_HOME = "upgrade_home"
    SHARING_WB = "sharing_wb"                  # home absorbs 3-hop read data
    OWNERSHIP_XFER = "ownership_xfer"          # home records new owner
    REPLY_TO_PROC = "reply_to_proc"            # Table 3.4: 2
    INVAL_RECEIVE = "inval_receive"
    ACK_RECEIVE = "ack_receive"
    WRITEBACK_LOCAL = "writeback_local"        # Table 3.4: 10
    WRITEBACK_REMOTE = "writeback_remote"      # Table 3.4: 8
    WRITEBACK_FORWARD = "writeback_forward"    # requester side of a remote WB
    HINT_LOCAL = "hint_local"                  # Table 3.4: 7
    HINT_REMOTE = "hint_remote"                # Table 3.4: 17 or 23+14N
    HINT_FORWARD = "hint_forward"
    NAK_HOME = "nak_home"                      # forward missed; retry request
    DEFERRED = "deferred"                      # request queued behind pending
    RETRY_BOUNCE = "retry_bounce"              # fault-injected drop: re-send


@dataclass(slots=True)
class Action:
    """What one handler invocation did; the timing layer executes this."""

    handler: str
    message: Message
    dir_addrs: List[int] = field(default_factory=list)
    n_invals: int = 0                     # invalidations issued by this handler
    list_position: Optional[int] = None   # for replacement-hint costing
    needs_memory_data: bool = False       # outgoing reply needs local memory data
    memory_stale: bool = False            # memory copy stale: speculation useless
    writes_memory: bool = False           # handler writes a line to memory
    cache_retrieve: bool = False          # data pulled from local processor cache
    cache_touched: bool = False           # local processor cache state changed
    sends: List[Message] = field(default_factory=list)
    cpu_deliver: Optional[Message] = None  # reply handed to the local processor
    miss_class: Optional[str] = None      # set when a read miss is classified
    deferred: bool = False
    #: Extra cycles the timing layer waits before emitting ``sends`` — only
    #: ever nonzero for fault-injected retry backoff (repro.faults).
    send_delay: float = 0.0
    #: The coherence checker already stamped this action.  Replay cascades
    #: must hand each handler's actions to the checker *before* the next
    #: deferred handler for the same line runs (its value propagation may
    #: read state the earlier handler moved), so inner call sites notify
    #: eagerly and the outer ``process``/``replay_stable`` hooks skip
    #: anything flagged here.
    checked: bool = False


@dataclass(slots=True)
class _PendingWrite:
    """Requester-side invalidation-ack collection for one write miss."""

    need: Optional[int] = None   # unknown until the PUTX/UPGRADE_ACK arrives
    got: int = 0
    data_done: bool = False
    reply: Optional[Message] = None

    @property
    def complete(self) -> bool:
        return self.data_done and self.need is not None and self.got >= self.need


class NodeProtocolEngine:
    """Protocol state and transitions for one node."""

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        directory: Directory,
        memory_bytes_per_node: int,
        cache_state_of: Callable[[int], str],
        cache_invalidate: Callable[[int], str],
        cache_downgrade: Callable[[int], None],
    ):
        self.node_id = node_id
        self.n_nodes = n_nodes
        self.directory = directory
        self.memory_bytes_per_node = memory_bytes_per_node
        self._cache_state_of = cache_state_of
        self._cache_invalidate = cache_invalidate
        self._cache_downgrade = cache_downgrade
        self._pending_writes: Dict[int, _PendingWrite] = {}
        # Optional per-node performance monitor (repro.stats.monitor); fed
        # with every classified miss when attached.
        self.monitor = None
        # Optional fault injector (repro.faults), attached by the Machine;
        # consulted only when a BOUNCE arrives, so clean runs never touch it.
        self.faults = None
        # Optional tracer (repro.stats.trace), attached by the Machine; told
        # the class of every classified read miss so the latency
        # decomposition can bucket transactions like Table 4.1 does.
        self.tracer = None
        # Optional coherence oracle (repro.check), attached by the model
        # checker; shown every handler's returned actions so the shadow
        # value model can track where data moved.
        self.checker = None
        # Test-only protocol mutation (repro.check self-test): a named,
        # deliberately-injected bug — None in every real run.
        self.mutation = None
        # Counters.
        self.miss_classes: Dict[str, int] = {cls: 0 for cls in MissClass.ALL}
        self.messages_processed = 0
        self.deferred_count = 0
        # Message-type dispatch, built once per node (``process`` runs once
        # per protocol message).
        self._dispatch = self._build_dispatch()

    # -- helpers ---------------------------------------------------------------

    def home_of(self, line_addr: int) -> int:
        return line_addr // self.memory_bytes_per_node

    def _is_home(self, line_addr: int) -> bool:
        return self.home_of(line_addr) == self.node_id

    def _classify_read(self, msg: Message, dirty: bool, owner: Optional[int]) -> str:
        local = msg.requester == self.node_id
        if not dirty:
            return MissClass.LOCAL_CLEAN if local else MissClass.REMOTE_CLEAN
        if local:
            return MissClass.LOCAL_DIRTY_REMOTE
        if owner == self.node_id:
            return MissClass.REMOTE_DIRTY_HOME
        return MissClass.REMOTE_DIRTY_REMOTE

    # -- entry point -------------------------------------------------------------

    def _build_dispatch(self) -> Dict[str, Callable[[Message], List[Action]]]:
        return {
            MT.GET: self._cpu_request,
            MT.GETX: self._cpu_request,
            MT.UPGRADE: self._cpu_request,
            MT.WRITEBACK: self._cpu_writeback,
            MT.REPL_HINT: self._cpu_hint,
            MT.REMOTE_GET: self._home_request,
            MT.REMOTE_GETX: self._home_request,
            MT.REMOTE_UPGRADE: self._home_request,
            MT.REMOTE_WRITEBACK: self._home_writeback,
            MT.REMOTE_REPL_HINT: self._home_hint,
            MT.FORWARD_GET: self._owner_forward,
            MT.FORWARD_GETX: self._owner_forward,
            MT.PUT: self._requester_reply,
            MT.PUTX: self._requester_reply,
            MT.UPGRADE_ACK: self._requester_reply,
            MT.INVAL: self._inval,
            MT.INVAL_ACK: self._inval_ack,
            MT.SHARING_WRITEBACK: self._sharing_writeback,
            MT.OWNERSHIP_TRANSFER: self._ownership_transfer,
            MT.NAK: self._nak,
            MT.BOUNCE: self._bounce_retry,
        }

    def process(self, msg: Message) -> List[Action]:
        """Process one message; returns the handler actions that ran (the
        first for ``msg`` itself, the rest for any replayed deferred
        messages)."""
        self.messages_processed += 1
        try:
            fn = self._dispatch[msg.mtype]
        except KeyError:
            raise ProtocolError(f"node {self.node_id}: unknown message {msg}")
        actions = fn(msg)
        if self.checker is not None:
            self.checker.on_actions(self, actions)
        return actions

    # -- processor-side requests ---------------------------------------------------

    def _cpu_request(self, msg: Message) -> List[Action]:
        if self._is_home(msg.line_addr):
            return self._home_request(msg)
        remote = {MT.GET: MT.REMOTE_GET, MT.GETX: MT.REMOTE_GETX,
                  MT.UPGRADE: MT.REMOTE_UPGRADE}[msg.mtype]
        out = _acquire(remote, msg.line_addr, self.node_id,
                      self.home_of(msg.line_addr), msg.requester,
                      is_write=msg.mtype != MT.GET)
        return [Action(Handler.MISS_FORWARD, msg, sends=[out])]

    def _cpu_writeback(self, msg: Message) -> List[Action]:
        if self._is_home(msg.line_addr):
            return self._home_writeback(msg)
        out = _acquire(MT.REMOTE_WRITEBACK, msg.line_addr, self.node_id,
                      self.home_of(msg.line_addr), msg.requester)
        return [Action(Handler.WRITEBACK_FORWARD, msg, sends=[out])]

    def _cpu_hint(self, msg: Message) -> List[Action]:
        if self._is_home(msg.line_addr):
            return self._home_hint(msg)
        out = _acquire(MT.REMOTE_REPL_HINT, msg.line_addr, self.node_id,
                      self.home_of(msg.line_addr), msg.requester)
        return [Action(Handler.HINT_FORWARD, msg, sends=[out])]

    # -- home-side request processing ---------------------------------------------

    def _home_request(self, msg: Message) -> List[Action]:
        line = msg.line_addr
        entry = self.directory.entry(line)
        stale_local_owner = (
            entry.dirty
            and entry.owner == self.node_id
            and self._cache_state_of(line) != CacheState.DIRTY
        )
        if (
            entry.pending
            or (entry.dirty and entry.owner == msg.requester)
            or stale_local_owner
        ):
            # A three-hop transaction is in flight, the recorded owner is
            # re-requesting, or the home's own processor has a writeback
            # sitting in the PI queue: defer until the state settles.
            entry.deferred.append(msg)
            self.deferred_count += 1
            if self.tracer is not None:
                self.tracer.deferred(self.node_id, msg)
            return [Action(Handler.DEFERRED, msg, deferred=True)]
        is_read = msg.mtype in (MT.GET, MT.REMOTE_GET)
        if is_read:
            action = self._home_read(msg, entry)
        else:
            action = self._home_write(msg, entry)
        return [action]

    def _home_read(self, msg: Message, entry) -> Action:
        line = msg.line_addr
        local = msg.requester == self.node_id
        cls = self._classify_read(msg, entry.dirty, entry.owner)
        self.miss_classes[cls] += 1
        if self.monitor is not None:
            self.monitor.note_miss(cls, line, msg.requester)
        if self.tracer is not None:
            self.tracer.classify(msg.requester, line, cls)
        if not entry.dirty:
            # Clean (or uncached): data comes from local memory.
            if self.mutation == "drop_sharer" and msg.requester != self.node_id:
                # Seeded bug (repro.check self-test): grant the copy without
                # recording the sharer, so a later write never invalidates it.
                addrs = [self.directory.header_addr(line)]
            else:
                added, addrs = self.directory.add_sharer(line, msg.requester)
            reply = msg.reply(MT.PUT)
            action = Action(
                Handler.GET_HOME_CLEAN, msg, dir_addrs=addrs,
                needs_memory_data=True, miss_class=cls,
            )
            if local:
                action.cpu_deliver = reply
            else:
                action.sends = [reply]
            return action
        if entry.owner == self.node_id:
            # Dirty in the home node's own processor cache: retrieve it.
            self._cache_downgrade(line)
            addrs = self.directory.clear_dirty(line)
            for node in (self.node_id, msg.requester):
                _, more = self.directory.add_sharer(line, node)
                addrs.extend(more)
            reply = msg.reply(MT.PUT)
            action = Action(
                Handler.GET_HOME_DIRTY_LOCAL, msg, dir_addrs=addrs,
                cache_retrieve=True, cache_touched=True, writes_memory=True,
                memory_stale=True, miss_class=cls,
            )
            if local:
                action.cpu_deliver = reply
            else:
                action.sends = [reply]
            return action
        # Dirty in a remote cache: forward and go pending.
        if self.mutation == "stale_reply":
            # Seeded bug (repro.check self-test): reply straight from memory
            # as if the line were clean, ignoring the dirty remote owner.
            reply = msg.reply(MT.PUT)
            action = Action(Handler.GET_HOME_CLEAN, msg,
                            needs_memory_data=True, miss_class=cls)
            if local:
                action.cpu_deliver = reply
            else:
                action.sends = [reply]
            return action
        entry.pending = True
        forward = _acquire(MT.FORWARD_GET, line, self.node_id, entry.owner,
                          msg.requester, is_write=False)
        handler = Handler.GET_LOCAL_FORWARD if local else Handler.GET_HOME_FORWARD
        return Action(
            handler, msg, dir_addrs=[self.directory.header_addr(line)],
            memory_stale=True, sends=[forward], miss_class=cls,
        )

    def _home_write(self, msg: Message, entry) -> Action:
        line = msg.line_addr
        local = msg.requester == self.node_id
        if self.monitor is not None:
            self.monitor.note_write(line, msg.requester)
        is_upgrade = msg.mtype in (MT.UPGRADE, MT.REMOTE_UPGRADE)
        if entry.dirty:
            # Dirty somewhere else (owner==requester was deferred above).
            if entry.owner == self.node_id:
                # Dirty in home's own cache: pull + invalidate it, reply exclusive.
                self._cache_invalidate(line)
                addrs = self.directory.clear_dirty(line)
                addrs += self.directory.set_dirty(line, msg.requester)
                reply = msg.reply(MT.PUTX, n_invals=0)
                action = Action(
                    Handler.GETX_HOME_DIRTY_LOCAL, msg, dir_addrs=addrs,
                    cache_retrieve=True, cache_touched=True, writes_memory=True,
                    memory_stale=True,
                )
                if local:
                    self._note_write_issued(line)
                    action.cpu_deliver = self._complete_write_data(line, reply)
                else:
                    action.sends = [reply]
                return action
            entry.pending = True
            forward = _acquire(MT.FORWARD_GETX, line, self.node_id, entry.owner,
                              msg.requester, is_write=True)
            handler = Handler.GETX_LOCAL_FORWARD if local else Handler.GETX_HOME_FORWARD
            return Action(
                handler, msg, dir_addrs=[self.directory.header_addr(line)],
                memory_stale=True, sends=[forward],
            )
        # Clean: invalidate any sharers other than the requester.
        sharers, addrs = self.directory.clear_sharers(line)
        requester_had_copy = msg.requester in sharers
        to_invalidate = [n for n in sharers if n != msg.requester]
        sends: List[Message] = []
        cache_touched = False
        n_invals = 0
        skipped_inval = False
        for node in to_invalidate:
            if (self.mutation == "skip_inval" and not skipped_inval
                    and node != self.node_id):
                # Seeded bug (repro.check self-test): silently drop one
                # invalidation — and don't count it, so the requester's ack
                # collection still completes and the stale copy survives.
                skipped_inval = True
                continue
            n_invals += 1
            if node == self.node_id:
                # The home's own processor holds a copy: invalidate in place
                # and ack the requester directly.
                self._cache_invalidate(line)
                cache_touched = True
                sends.append(_acquire(MT.INVAL_ACK, line, self.node_id,
                                     msg.requester, msg.requester, is_write=True))
            else:
                sends.append(_acquire(MT.INVAL, line, self.node_id, node,
                                     msg.requester, is_write=True))
        addrs += self.directory.set_dirty(line, msg.requester)
        if is_upgrade and requester_had_copy:
            reply = msg.reply(MT.UPGRADE_ACK, n_invals=n_invals)
            handler = Handler.UPGRADE_HOME
            needs_memory = False
        else:
            # A genuine write miss — or an upgrade whose copy was invalidated
            # in flight, which must be granted data like a GETX.
            reply = msg.reply(MT.PUTX, n_invals=n_invals)
            handler = Handler.GETX_HOME_CLEAN
            needs_memory = True
        action = Action(
            handler, msg, dir_addrs=addrs, n_invals=n_invals,
            needs_memory_data=needs_memory, cache_touched=cache_touched,
            sends=sends,
        )
        if local:
            self._note_write_issued(line)
            done = self._complete_write_data(line, reply)
            if done is not None:
                action.cpu_deliver = done
            # else: acks still outstanding; reply is held until they arrive.
        else:
            action.sends = sends + [reply]
        return action

    # -- home-side writebacks and hints ----------------------------------------------

    def _home_writeback(self, msg: Message) -> List[Action]:
        line = msg.line_addr
        entry = self.directory.entry(line)
        if not entry.dirty or entry.owner != msg.requester:
            raise ProtocolError(
                f"node {self.node_id}: unexpected writeback {msg}; "
                f"dirty={entry.dirty} owner={entry.owner}"
            )
        addrs = self.directory.clear_dirty(line)
        local = msg.requester == self.node_id
        handler = Handler.WRITEBACK_LOCAL if local else Handler.WRITEBACK_REMOTE
        action = Action(handler, msg, dir_addrs=addrs, writes_memory=True)
        # If the owner wrote back while a forward was in flight the entry is
        # pending; the NAK from the owner will replay the stalled request.
        if entry.pending:
            return [action]
        return self._checked([action]) + self._replay(line)

    def _home_hint(self, msg: Message) -> List[Action]:
        line = msg.line_addr
        entry = self.directory.entry(line)
        if entry.pending:
            entry.deferred.append(msg)
            self.deferred_count += 1
            return [Action(Handler.DEFERRED, msg, deferred=True)]
        position, addrs = self.directory.remove_sharer(line, msg.requester)
        local = msg.requester == self.node_id
        handler = Handler.HINT_LOCAL if local else Handler.HINT_REMOTE
        return [Action(handler, msg, dir_addrs=addrs, list_position=position)]

    # -- owner-side forwarded requests ---------------------------------------------

    def _owner_forward(self, msg: Message) -> List[Action]:
        line = msg.line_addr
        home = self.home_of(line)
        state = self._cache_state_of(line)
        if state != CacheState.DIRTY:
            # The line was written back (writeback in flight to home): NAK so
            # the home can retry the request after the writeback lands.
            nak = _acquire(MT.NAK, line, self.node_id, home, msg.requester,
                          is_write=msg.mtype == MT.FORWARD_GETX)
            return [Action(Handler.GET_OWNER if msg.mtype == MT.FORWARD_GET
                           else Handler.GETX_OWNER, msg, sends=[nak])]
        if msg.mtype == MT.FORWARD_GET:
            self._cache_downgrade(line)
            reply = _acquire(MT.PUT, line, self.node_id, msg.requester,
                            msg.requester, is_write=False)
            sharing = _acquire(MT.SHARING_WRITEBACK, line, self.node_id, home,
                              msg.requester)
            # The sharing writeback is composed first; when home == requester
            # this makes the home absorb the directory update before the
            # data reply, as the handler code does.
            return [Action(Handler.GET_OWNER, msg, cache_retrieve=True,
                           cache_touched=True, sends=[sharing, reply])]
        self._cache_invalidate(line)
        reply = _acquire(MT.PUTX, line, self.node_id, msg.requester,
                        msg.requester, is_write=True, n_invals=0)
        transfer = _acquire(MT.OWNERSHIP_TRANSFER, line, self.node_id, home,
                           msg.requester, is_write=True)
        return [Action(Handler.GETX_OWNER, msg, cache_retrieve=True,
                       cache_touched=True, sends=[reply, transfer])]

    # -- home-side three-hop completions ----------------------------------------------

    def _sharing_writeback(self, msg: Message) -> List[Action]:
        line = msg.line_addr
        entry = self.directory.entry(line)
        if not entry.pending:
            raise ProtocolError(f"node {self.node_id}: stray sharing WB {msg}")
        addrs = self.directory.clear_dirty(line)
        for node in (msg.src, msg.requester):
            _, more = self.directory.add_sharer(line, node)
            addrs.extend(more)
        entry.pending = False
        action = Action(Handler.SHARING_WB, msg, dir_addrs=addrs,
                        writes_memory=True)
        return self._checked([action]) + self._replay(line)

    def _ownership_transfer(self, msg: Message) -> List[Action]:
        line = msg.line_addr
        entry = self.directory.entry(line)
        if not entry.pending:
            raise ProtocolError(f"node {self.node_id}: stray ownership transfer {msg}")
        addrs = self.directory.clear_dirty(line)
        addrs += self.directory.set_dirty(line, msg.requester)
        entry.pending = False
        action = Action(Handler.OWNERSHIP_XFER, msg, dir_addrs=addrs)
        return self._checked([action]) + self._replay(line)

    def _nak(self, msg: Message) -> List[Action]:
        line = msg.line_addr
        entry = self.directory.entry(line)
        if not entry.pending:
            raise ProtocolError(f"node {self.node_id}: stray NAK {msg}")
        entry.pending = False
        action = Action(Handler.NAK_HOME, msg)
        # Retry the original request (the writeback that beat the forward has
        # already been absorbed, so this normally hits memory).
        retry_type = MT.REMOTE_GETX if msg.is_write else MT.REMOTE_GET
        if msg.requester == self.node_id:
            retry_type = MT.GETX if msg.is_write else MT.GET
        retry = _acquire(retry_type, line, msg.requester, self.node_id,
                        msg.requester, is_write=msg.is_write)
        head = self._checked([action])
        retried = self._checked(self._home_request(retry))
        return head + retried + self._replay(line)

    def _bounce_retry(self, msg: Message) -> List[Action]:
        """A fault-injected drop (repro.faults) bounced one of our requests
        back: re-send the *same* message object — its uid must survive so
        the injector's per-message drop count bounds the retries — after an
        exponential backoff charged by the timing layer."""
        original = msg.orig
        if original is None:
            raise ProtocolError(f"node {self.node_id}: BOUNCE without original: {msg}")
        action = Action(Handler.RETRY_BOUNCE, msg, sends=[original])
        if self.faults is not None:
            action.send_delay = self.faults.retry_backoff(original)
        return [action]

    # -- requester-side replies ----------------------------------------------------

    def _requester_reply(self, msg: Message) -> List[Action]:
        if msg.mtype == MT.PUT:
            return [Action(Handler.REPLY_TO_PROC, msg, cpu_deliver=msg)]
        # Exclusive replies may need to wait for invalidation acks.
        self._note_write_issued(msg.line_addr)
        pw = self._pending_writes[msg.line_addr]
        pw.need = msg.n_invals
        pw.data_done = True
        pw.reply = msg
        action = Action(Handler.REPLY_TO_PROC, msg)
        if pw.complete:
            del self._pending_writes[msg.line_addr]
            action.cpu_deliver = msg
        return [action]

    def _inval(self, msg: Message) -> List[Action]:
        self._cache_invalidate(msg.line_addr)
        if self.mutation == "no_ack":
            # Seeded bug (repro.check self-test): invalidate but never ack,
            # wedging the writer's ack collection — a deadlock the watchdog
            # / drained-schedule check must convert into a typed failure.
            return [Action(Handler.INVAL_RECEIVE, msg, cache_touched=True)]
        ack = _acquire(MT.INVAL_ACK, msg.line_addr, self.node_id, msg.requester,
                      msg.requester, is_write=True)
        return [Action(Handler.INVAL_RECEIVE, msg, cache_touched=True,
                       sends=[ack])]

    def _inval_ack(self, msg: Message) -> List[Action]:
        self._note_write_issued(msg.line_addr)
        pw = self._pending_writes[msg.line_addr]
        pw.got += 1
        action = Action(Handler.ACK_RECEIVE, msg)
        if pw.complete:
            del self._pending_writes[msg.line_addr]
            action.cpu_deliver = pw.reply
        return [action]

    # -- pending-write bookkeeping ---------------------------------------------------

    def _note_write_issued(self, line_addr: int) -> None:
        if line_addr not in self._pending_writes:
            self._pending_writes[line_addr] = _PendingWrite()

    def _complete_write_data(self, line_addr: int, reply: Message) -> Optional[Message]:
        """A local write miss got its data; returns the CPU reply if all acks
        have already arrived, else None (the final ack will deliver it)."""
        pw = self._pending_writes[line_addr]
        pw.need = reply.n_invals
        pw.data_done = True
        pw.reply = reply
        if pw.complete:
            del self._pending_writes[line_addr]
            return reply
        return None

    # -- deferred replay ---------------------------------------------------------------

    def replay_stable(self, line_addr: int) -> List[Action]:
        """Replay deferred messages after an external settling event (the
        local processor received its ownership grant, making the directory's
        owner entry consistent with the cache again)."""
        if not self._is_home(line_addr):
            return []
        entry = self.directory.entry(line_addr)
        if entry.pending:
            return []
        actions = self._replay(line_addr)
        if self.checker is not None and actions:
            self.checker.on_actions(self, actions)
        return actions

    def _checked(self, actions: List[Action]) -> List[Action]:
        """Hand actions to the coherence checker *now*, before any further
        handler runs for the same line.  Used by the replay cascades; the
        ``checked`` flag keeps the outer batch hooks from re-stamping."""
        if self.checker is not None and actions:
            self.checker.on_actions(self, actions)
        return actions

    def _replay(self, line_addr: int) -> List[Action]:
        """Replay deferred messages for a line until it goes pending again (or
        a message re-defers, indicating no progress is possible yet)."""
        entry = self.directory.entry(line_addr)
        actions: List[Action] = []
        while entry.deferred and not entry.pending:
            msg = entry.deferred.popleft()
            if msg.mtype in (MT.REPL_HINT, MT.REMOTE_REPL_HINT):
                result = self._home_hint(msg)
            else:
                result = self._home_request(msg)
            self._checked(result)
            actions.extend(result)
            if result and result[0].deferred:
                break  # the popped message re-deferred itself: stop for now
        return actions
