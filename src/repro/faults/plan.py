"""Deterministic, seed-driven fault injection.

The paper's FLASH results hinge on bounded MAGIC queues and PP occupancy:
hot-spotting backs queues up and the real machine survives via NAKs and
deadlock avoidance.  This package perturbs the simulated machine to probe
exactly those regimes:

* **Message delay spikes** — the outbound NI occasionally stalls for extra
  cycles before launching a message (a link hiccup).  Injected at the serial
  per-node outbound link so point-to-point ordering — which the protocol's
  requester side relies on — is preserved.
* **Dropped-then-NAKed requests** — a request message is refused at the NI
  and bounced back to its sender as a :data:`MessageType.BOUNCE`; the
  protocol layer retries it after an exponential backoff, and after
  ``max_retries`` drops of the same message delivery is forced, so forward
  progress is guaranteed.
* **PP handler slowdowns** — a handler occasionally takes ``pp_slow_factor``
  times its normal occupancy (an MDC burst, a pathological handler path).
* **Transient queue-capacity squeezes** — a bounded queue's capacity is
  halved for ``squeeze_duration`` cycles, backing traffic up exactly as the
  paper's contention scenarios do.

Two invariants the rest of the tree depends on:

* **Off is free.**  Every hook in the timing layers is gated on
  ``faults is None`` (or ``Action.send_delay == 0``); with no injector
  attached the instruction-by-instruction behaviour of a run is unchanged,
  which the golden SHA-256 matrix in ``tests/test_integration.py`` enforces.
* **Deterministic.**  Every decision comes from a per-site
  ``random.Random(f"{seed}:{site}")`` stream (string seeding is independent
  of ``PYTHONHASHSEED``), and sites are queried in simulation order — so the
  same :class:`FaultPlan` against the same workload yields byte-identical
  results, including the injected faults.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Generator, Iterable, Optional

from ..common.errors import ConfigError
from ..protocol.messages import Message, MessageType as MT
from ..sim.engine import Environment, Event
from ..sim.queues import BoundedQueue

__all__ = ["FaultPlan", "FaultInjector", "DROPPABLE_TYPES"]

#: Only idempotent *request* messages may be dropped: they carry no data,
#: touch no directory state until delivered, and the requester is blocked
#: waiting for the reply, so a bounce-and-retry is always safe.  Dropping
#: replies, invalidations, or data-bearing messages would require protocol
#: machinery FLASH implements in handler code we do not model.
DROPPABLE_TYPES = frozenset({
    MT.REMOTE_GET, MT.REMOTE_GETX, MT.REMOTE_UPGRADE,
})

_RATE_FIELDS = ("delay_rate", "drop_rate", "pp_slow_rate", "squeeze_rate")


@dataclass(frozen=True)
class FaultPlan:
    """One reproducible fault-injection configuration.

    All rates are per-opportunity probabilities in ``[0, 1]``; the plan (via
    ``to_dict``) is part of the normalized run spec, so fault-injected runs
    cache and farm exactly like clean ones.
    """

    seed: int = 0
    #: Outbound-NI delay spike: probability per message, and the maximum
    #: extra cycles (uniform in ``[1, delay_cycles]``).
    delay_rate: float = 0.0
    delay_cycles: int = 64
    #: Request drop -> BOUNCE -> protocol retry.
    drop_rate: float = 0.0
    max_retries: int = 3
    retry_backoff: float = 16.0      # cycles; doubles per drop of one message
    #: PP handler slowdown.
    pp_slow_rate: float = 0.0
    pp_slow_factor: float = 4.0
    #: Transient queue-capacity squeeze (capacity halved, min 1).
    squeeze_rate: float = 0.0
    squeeze_period: float = 2048.0   # cycles between squeeze lotteries
    squeeze_duration: float = 512.0  # cycles a squeeze lasts

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.delay_cycles < 1:
            raise ConfigError(f"delay_cycles must be >= 1, got {self.delay_cycles}")
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff < 0:
            raise ConfigError(f"retry_backoff must be >= 0, got {self.retry_backoff}")
        if self.pp_slow_factor < 1.0:
            raise ConfigError(
                f"pp_slow_factor must be >= 1, got {self.pp_slow_factor}")
        if self.squeeze_period <= 0 or self.squeeze_duration <= 0:
            raise ConfigError("squeeze_period and squeeze_duration must be > 0")

    @property
    def any_enabled(self) -> bool:
        return any(getattr(self, name) > 0 for name in _RATE_FIELDS)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(state) - known
        if unknown:
            raise ConfigError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(**state)

    @classmethod
    def uniform(cls, rate: float, seed: int = 0, **overrides) -> "FaultPlan":
        """All four fault classes at the same per-opportunity rate."""
        merged = dict(delay_rate=rate, drop_rate=rate, pp_slow_rate=rate,
                      squeeze_rate=rate, seed=seed)
        merged.update(overrides)
        return cls(**merged)


class FaultInjector:
    """Runtime state for one machine's fault plan: per-site RNG streams,
    per-message drop counts, and the counters the harness reports."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rngs: Dict[str, random.Random] = {}
        self._drop_counts: Dict[int, int] = {}  # message uid -> times dropped
        # Counters (diagnostic; surfaced as RunResult.fault_counters).
        self.delays = 0
        self.delay_cycles_total = 0
        self.drops = 0
        self.forced_deliveries = 0
        self.pp_slowdowns = 0
        self.squeezes = 0

    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            # String seeds hash via SHA-512 internally: stable across
            # processes regardless of PYTHONHASHSEED.
            rng = self._rngs[site] = random.Random(f"{self.plan.seed}:{site}")
        return rng

    def counters(self) -> Dict[str, int]:
        return {
            "delays": self.delays,
            "delay_cycles_total": self.delay_cycles_total,
            "drops": self.drops,
            "forced_deliveries": self.forced_deliveries,
            "pp_slowdowns": self.pp_slowdowns,
            "squeezes": self.squeezes,
        }

    # -- network hooks (called from NetworkPort._outbound) ---------------------

    def transit_delay(self, node_id: int, message: Message) -> int:
        """Extra cycles the outbound NI stalls before launching ``message``
        (0 for no spike)."""
        plan = self.plan
        if plan.delay_rate <= 0:
            return 0
        rng = self._rng(f"net[{node_id}]")
        if rng.random() >= plan.delay_rate:
            return 0
        extra = rng.randint(1, plan.delay_cycles)
        self.delays += 1
        self.delay_cycles_total += extra
        return extra

    def should_drop(self, node_id: int, message: Message) -> bool:
        """Whether the NI refuses ``message`` (bouncing it to its sender).
        Bounded: after ``max_retries`` drops of one message, delivery is
        forced so the requester cannot starve."""
        plan = self.plan
        if plan.drop_rate <= 0 or message.mtype not in DROPPABLE_TYPES:
            return False
        if self._rng(f"drop[{node_id}]").random() >= plan.drop_rate:
            return False
        dropped = self._drop_counts.get(message.uid, 0)
        if dropped >= plan.max_retries:
            self.forced_deliveries += 1
            return False
        self._drop_counts[message.uid] = dropped + 1
        self.drops += 1
        return True

    def retry_backoff(self, message: Message) -> float:
        """Cycles the retry of a bounced message waits before re-sending:
        exponential in how many times that message has been dropped."""
        dropped = max(1, self._drop_counts.get(message.uid, 1))
        return self.plan.retry_backoff * (2 ** (dropped - 1))

    # -- PP hook (called from MagicChip._execute) -----------------------------

    def pp_cost(self, node_id: int, cost: float) -> float:
        """Handler occupancy after a possible slowdown spike."""
        plan = self.plan
        if plan.pp_slow_rate <= 0:
            return cost
        if self._rng(f"pp[{node_id}]").random() < plan.pp_slow_rate:
            self.pp_slowdowns += 1
            return cost * plan.pp_slow_factor
        return cost

    # -- queue-squeeze process (spawned by Machine.run) -----------------------

    def squeezer(self, env: Environment, queues: Iterable[Any],
                 stop: Event) -> Generator:
        """Simulation process: every ``squeeze_period`` cycles, each bounded
        queue independently risks a transient capacity squeeze (halved, min
        1) lasting ``squeeze_duration`` cycles.  Returns once ``stop`` (the
        machine's completion event) triggers, so a finished run drains."""
        plan = self.plan
        eligible = [
            q for q in queues
            if isinstance(q, BoundedQueue)
            and q.capacity is not None and q.capacity >= 2
        ]
        if plan.squeeze_rate <= 0 or not eligible:
            return
        rng = self._rng("squeeze")
        squeezed: set = set()
        while True:
            yield env.timeout(plan.squeeze_period)
            if stop.triggered:
                return
            for queue in eligible:
                if id(queue) in squeezed:
                    continue
                if rng.random() < plan.squeeze_rate:
                    self.squeezes += 1
                    squeezed.add(id(queue))
                    env.process(self._squeeze_one(env, queue, squeezed),
                                name="faults.squeeze")

    def _squeeze_one(self, env: Environment, queue: BoundedQueue,
                     squeezed: set) -> Generator:
        original = queue.capacity
        queue.capacity = max(1, original // 2)
        yield env.timeout(self.plan.squeeze_duration)
        queue.capacity = original
        squeezed.discard(id(queue))
        # Admit producers that blocked against the squeezed capacity.
        while queue._putters and not queue.is_full:
            queue._admit_waiting_putter()
