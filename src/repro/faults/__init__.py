"""Deterministic fault injection for the FLASH model (see ``plan.py``)."""

from .plan import DROPPABLE_TYPES, FaultInjector, FaultPlan

__all__ = ["DROPPABLE_TYPES", "FaultInjector", "FaultPlan"]
