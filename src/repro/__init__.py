"""repro — a reproduction of "The Performance Impact of Flexibility in the
Stanford FLASH Multiprocessor" (ASPLOS 1994).

The package simulates two machines over the same directory cache-coherence
protocol and workloads:

* **FLASH** — every node transaction flows through a detailed model of the
  MAGIC programmable node controller (inbox + jump table with speculative
  memory reads, protocol processor, MAGIC data cache, bounded queues).
* **The ideal machine** — an idealized hardwired controller that processes
  every protocol operation in zero time with infinite queues.

Quick start::

    from repro import Machine, flash_config, ideal_config
    from repro.apps import FFTWorkload

    workload = FFTWorkload(points=1024)
    flash = Machine(flash_config(n_procs=16))
    result = flash.run(workload.build(flash.config))
    print(result.execution_time, result.avg_pp_occupancy)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the mapping of
paper tables/figures to benchmark modules.
"""

from .common.params import (
    CacheConfig,
    HandlerCosts,
    MachineConfig,
    MagicCacheConfig,
    ResourceLimits,
    SuboperationLatencies,
    flash_config,
    ideal_config,
    mesh_transit_cycles,
)
from .machine import Machine, run_pair
from .protocol.coherence import MissClass
from .stats.report import RunResult, crmt

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "HandlerCosts",
    "MachineConfig",
    "MagicCacheConfig",
    "ResourceLimits",
    "SuboperationLatencies",
    "flash_config",
    "ideal_config",
    "mesh_transit_cycles",
    "Machine",
    "run_pair",
    "MissClass",
    "RunResult",
    "crmt",
    "__version__",
]
