"""The whole simulated machine: N nodes on a mesh.

`Machine` builds either FLASH or the ideal machine from a
:class:`~repro.common.params.MachineConfig` and runs a workload — a list of
per-processor operation streams — to completion, returning a
:class:`~repro.stats.report.RunResult`.
"""

from __future__ import annotations

import gc
from typing import Iterable, List, Optional, Sequence, Tuple

from .common.errors import ConfigError
from .common.params import MachineConfig, flash_config, ideal_config
from .faults import FaultInjector, FaultPlan
from .msgpass.transfer import TransferDomain
from .network.mesh import Network
from .node import Node
from .processor.sync import SyncDomain
from .sim.engine import Environment
from .sim.watchdog import Watchdog
from .stats.metrics import MetricsRegistry
from .stats.report import RunResult
from .stats.trace import Tracer

__all__ = ["Machine", "run_pair"]


class Machine:
    """An N-node FLASH or ideal machine.

    ``faults`` (a :class:`~repro.faults.FaultPlan` or its dict form) attaches
    deterministic fault injection; ``watchdog`` (True, a kwargs dict for
    :class:`~repro.sim.watchdog.Watchdog`, or an instance) attaches stall
    detection; ``trace`` (True, a ``parse_trace_spec`` dict, or a
    :class:`~repro.stats.trace.Tracer`) attaches transaction tracing;
    ``metrics`` (True or a :class:`~repro.stats.metrics.MetricsRegistry`)
    attaches the machine-wide metrics registry; ``loadlat`` (True, a
    ``parse_loadlat_spec`` dict, or a
    :class:`~repro.stats.latency.LatencyMonitor`) attaches the open-loop
    per-request latency monitor.  All default to off, in which case
    behaviour is bit-identical to a machine built without them.
    """

    def __init__(self, config: MachineConfig, cost_model=None, faults=None,
                 watchdog=None, trace=None, metrics=None, loadlat=None):
        self.config = config
        self.env = Environment()
        self.network = Network(self.env, config)
        self.sync = SyncDomain(self.env, config.n_procs)
        self.transfers = TransferDomain(self.env)
        self.nodes: List[Node] = [
            Node(self.env, node_id, config, self.network, self.sync,
                 cost_model=cost_model, transfers=self.transfers)
            for node_id in range(config.n_procs)
        ]
        self.fault_plan: Optional[FaultPlan] = None
        self.fault_injector: Optional[FaultInjector] = None
        if faults is not None:
            plan = faults if isinstance(faults, FaultPlan) \
                else FaultPlan.from_dict(dict(faults))
            if plan.any_enabled:
                self._attach_faults(plan)
        self.watchdog: Optional[Watchdog] = None
        if watchdog:
            if isinstance(watchdog, Watchdog):
                self.watchdog = watchdog
            else:
                kwargs = {} if watchdog is True else dict(watchdog)
                kwargs.setdefault("progress_fn", self._progress)
                self.watchdog = Watchdog(self.env, **kwargs)
        self.tracer: Optional[Tracer] = None
        if trace:
            tracer = trace if isinstance(trace, Tracer) \
                else Tracer.from_spec(trace)
            self._attach_tracer(tracer)
        self.metrics: Optional[MetricsRegistry] = None
        if metrics:
            registry = metrics if isinstance(metrics, MetricsRegistry) \
                else MetricsRegistry()
            self._attach_metrics(registry)
        self.loadlat = None
        if loadlat:
            from .stats.latency import LatencyMonitor
            monitor = loadlat if isinstance(loadlat, LatencyMonitor) \
                else LatencyMonitor.from_spec(loadlat)
            self._attach_loadlat(monitor)

    def _attach_tracer(self, tracer: Tracer) -> None:
        tracer.env = self.env
        tracer.n_procs = self.config.n_procs   # barrier-release arrival count
        self.tracer = tracer
        self.env._tracer = tracer      # watchdog/stall-diagnosis pickup
        self.network.tracer = tracer
        for node in self.nodes:
            node.cpu.tracer = tracer
            node.controller.tracer = tracer
            node.engine.tracer = tracer
            node.memory.tracer = tracer

    def _attach_loadlat(self, monitor) -> None:
        """Hand the latency monitor to every CPU (the 'q'/'e' markers) and,
        when tracing is also on, to the tracer (per-transaction component
        attribution for tail exemplars)."""
        self.loadlat = monitor
        for node in self.nodes:
            node.cpu.loadlat = monitor
        if self.tracer is not None:
            self.tracer.loadlat = monitor

    def _attach_metrics(self, registry: MetricsRegistry) -> None:
        """Hand the registry to every subsystem with a live hook; the rest
        of the registry is filled by ``harvest_machine`` at end of run."""
        self.metrics = registry
        self.network.metrics = registry
        for node in self.nodes:
            node.controller.metrics = registry

    def _attach_faults(self, plan: FaultPlan) -> None:
        if self.config.kind != "flash":
            raise ConfigError(
                "fault injection targets the FLASH machine (the ideal "
                "machine has no bounded queues or PP to perturb)")
        if self.config.pp_backend == "emulator":
            raise ConfigError(
                "fault injection requires the table cost backend (the PP "
                "emulator has no assembly for the retry handler)")
        self.fault_plan = plan
        injector = FaultInjector(plan)
        self.fault_injector = injector
        self.network.faults = injector
        for node in self.nodes:
            node.engine.faults = injector
            node.controller.faults = injector

    def _progress(self) -> int:
        """Forward-progress counter for the watchdog: total references
        retired across all processors."""
        return sum(n.cpu.total_reads + n.cpu.total_writes for n in self.nodes)

    @classmethod
    def flash(cls, n_procs: int = 16, **kwargs) -> "Machine":
        return cls(flash_config(n_procs, **kwargs))

    @classmethod
    def ideal(cls, n_procs: int = 16, **kwargs) -> "Machine":
        return cls(ideal_config(n_procs, **kwargs))

    def run(self, workload: Sequence[Iterable[Tuple]],
            until: Optional[float] = None) -> RunResult:
        """Run one operation stream per processor to completion."""
        if len(workload) != self.config.n_procs:
            raise ConfigError(
                f"workload provides {len(workload)} streams for "
                f"{self.config.n_procs} processors"
            )
        processes = [
            node.cpu.run(ops) for node, ops in zip(self.nodes, workload)
        ]
        finished = self.env.all_of(processes)
        if (
            self.fault_injector is not None
            and self.fault_plan.squeeze_rate > 0
        ):
            self.env.process(
                self.fault_injector.squeezer(self.env, self.env._queues,
                                             finished),
                name="faults.squeezer")
        if self.tracer is not None and self.tracer.sample_interval:
            from .stats.timeseries import TimeseriesSampler
            sampler = TimeseriesSampler(self, self.tracer)
            self.env.process(sampler.process(finished), name="trace.sampler")
        # The event loop allocates millions of short-lived cyclic objects
        # (processes -> generators -> frames -> events); cyclic-GC passes over
        # that churn cost ~10% of a run and free almost nothing that refcounts
        # don't already reclaim.  Pause collection for the duration; results
        # are unaffected (no finalizer in the tree has side effects).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self.env.run(until=until)
        finally:
            if gc_was_enabled:
                gc.enable()
        if not finished.triggered:
            if self.watchdog is not None:
                # The schedule drained with processors still blocked — a
                # cyclic wait.  Diagnose instead of the bare RuntimeError.
                self.watchdog.check_complete(finished, "all processors")
            raise RuntimeError("simulation ended before all processors finished")
        if not finished.ok:
            raise finished.value
        execution_time = max(node.cpu.times.finish_time for node in self.nodes)
        return RunResult(self, execution_time)

    def assert_quiesced(self) -> None:
        """End-of-run leak detection: the strict directory / cache / MSHR /
        link-store invariant walk (`repro.check.invariants`).  After
        :meth:`run` drains the event schedule, every directory entry must
        be settled (no pending three-hop state, no orphaned deferred
        requests), every link-store allocation must be reachable from a
        sharer list (allocated - freed == live links), every cached copy
        must be explicable by its home entry, and every MSHR must be
        retired.  Raises :class:`~repro.common.errors.CoherenceViolation`.

        Cheap enough (one pass over entries and tags) to run after every
        correctness-sensitive run; the model checker and the golden-matrix
        integration tests both call it unconditionally."""
        from .check.invariants import check_invariants
        check_invariants(self, strict=True, where="end-of-run")

    def check_directory_invariants(self) -> None:
        """Post-run sanity: every directory entry is internally consistent
        and agrees with the processor caches."""
        for node in self.nodes:
            directory = node.directory
            for line_addr in list(directory._entries):
                directory.check_invariants(line_addr)
                entry = directory.entry(line_addr)
                if entry.dirty and entry.owner is not None:
                    # In a quiesced machine the owner's cache holds the line
                    # dirty (unless a writeback is still enqueued, which
                    # cannot happen after run() drained all events).
                    state = self.nodes[entry.owner].cpu.cache_state_of(line_addr)
                    if state != "M":
                        raise AssertionError(
                            f"dir says node {entry.owner} owns {line_addr:#x} "
                            f"dirty but its cache state is {state}"
                        )


def run_pair(workload_factory, flash_cfg: MachineConfig,
             ideal_cfg: MachineConfig) -> Tuple[RunResult, RunResult]:
    """Run the same workload on FLASH and the ideal machine.

    ``workload_factory(config)`` must return a fresh list of op streams for
    the given machine configuration (streams are consumed by a run).
    """
    flash_machine = Machine(flash_cfg)
    flash_result = flash_machine.run(workload_factory(flash_cfg))
    ideal_machine = Machine(ideal_cfg)
    ideal_result = ideal_machine.run(workload_factory(ideal_cfg))
    return flash_result, ideal_result
