"""The whole simulated machine: N nodes on a mesh.

`Machine` builds either FLASH or the ideal machine from a
:class:`~repro.common.params.MachineConfig` and runs a workload — a list of
per-processor operation streams — to completion, returning a
:class:`~repro.stats.report.RunResult`.
"""

from __future__ import annotations

import gc
from typing import Iterable, List, Optional, Sequence, Tuple

from .common.errors import ConfigError
from .common.params import MachineConfig, flash_config, ideal_config
from .msgpass.transfer import TransferDomain
from .network.mesh import Network
from .node import Node
from .processor.sync import SyncDomain
from .sim.engine import Environment
from .stats.report import RunResult

__all__ = ["Machine", "run_pair"]


class Machine:
    """An N-node FLASH or ideal machine."""

    def __init__(self, config: MachineConfig, cost_model=None):
        self.config = config
        self.env = Environment()
        self.network = Network(self.env, config)
        self.sync = SyncDomain(self.env, config.n_procs)
        self.transfers = TransferDomain(self.env)
        self.nodes: List[Node] = [
            Node(self.env, node_id, config, self.network, self.sync,
                 cost_model=cost_model, transfers=self.transfers)
            for node_id in range(config.n_procs)
        ]

    @classmethod
    def flash(cls, n_procs: int = 16, **kwargs) -> "Machine":
        return cls(flash_config(n_procs, **kwargs))

    @classmethod
    def ideal(cls, n_procs: int = 16, **kwargs) -> "Machine":
        return cls(ideal_config(n_procs, **kwargs))

    def run(self, workload: Sequence[Iterable[Tuple]],
            until: Optional[float] = None) -> RunResult:
        """Run one operation stream per processor to completion."""
        if len(workload) != self.config.n_procs:
            raise ConfigError(
                f"workload provides {len(workload)} streams for "
                f"{self.config.n_procs} processors"
            )
        processes = [
            node.cpu.run(ops) for node, ops in zip(self.nodes, workload)
        ]
        finished = self.env.all_of(processes)
        # The event loop allocates millions of short-lived cyclic objects
        # (processes -> generators -> frames -> events); cyclic-GC passes over
        # that churn cost ~10% of a run and free almost nothing that refcounts
        # don't already reclaim.  Pause collection for the duration; results
        # are unaffected (no finalizer in the tree has side effects).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self.env.run(until=until)
        finally:
            if gc_was_enabled:
                gc.enable()
        if not finished.triggered:
            raise RuntimeError("simulation ended before all processors finished")
        if not finished.ok:
            raise finished.value
        execution_time = max(node.cpu.times.finish_time for node in self.nodes)
        return RunResult(self, execution_time)

    def check_directory_invariants(self) -> None:
        """Post-run sanity: every directory entry is internally consistent
        and agrees with the processor caches."""
        for node in self.nodes:
            directory = node.directory
            for line_addr in list(directory._entries):
                directory.check_invariants(line_addr)
                entry = directory.entry(line_addr)
                if entry.dirty and entry.owner is not None:
                    # In a quiesced machine the owner's cache holds the line
                    # dirty (unless a writeback is still enqueued, which
                    # cannot happen after run() drained all events).
                    state = self.nodes[entry.owner].cpu.cache_state_of(line_addr)
                    if state != "M":
                        raise AssertionError(
                            f"dir says node {entry.owner} owns {line_addr:#x} "
                            f"dirty but its cache state is {state}"
                        )


def run_pair(workload_factory, flash_cfg: MachineConfig,
             ideal_cfg: MachineConfig) -> Tuple[RunResult, RunResult]:
    """Run the same workload on FLASH and the ideal machine.

    ``workload_factory(config)`` must return a fresh list of op streams for
    the given machine configuration (streams are consumed by a run).
    """
    flash_machine = Machine(flash_cfg)
    flash_result = flash_machine.run(workload_factory(flash_cfg))
    ideal_machine = Machine(ideal_cfg)
    ideal_result = ideal_machine.run(workload_factory(ideal_cfg))
    return flash_result, ideal_result
