"""The idealized hardwired node controller (Section 3.1)."""

from .controller import IdealController

__all__ = ["IdealController"]
