"""The idealized hardwired node controller.

Section 3.1: "we replace MAGIC's macropipeline with an idealized controller
that can process all protocol operations in zero time.  The only delays that
the ideal machine encounters are those due to contention for shared resources
(such as the processor bus, memory system, and network) and data transfer
delays.  We further assume an infinite depth for all network and memory
system queues."

The controller runs the same protocol engine as MAGIC, but a message is
processed the instant it arrives, handlers take zero cycles, directory lookup
is an instantaneous oracle, and nothing ever stalls on queue space.  Memory
accesses, processor-cache interventions and interface/data-transfer
latencies remain, as does contention for memory and the network.

Message intake and the outbound processor interface run in callback/state-
machine form on the event kernel (dispatch order identical to the original
coroutine loops); handler execution itself was always a plain synchronous
call.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..common.params import MachineConfig
from ..memory.controller import MemoryController, SubmitWhenReady
from ..network.mesh import NetworkPort
from ..protocol.coherence import Action, NodeProtocolEngine
from ..protocol.messages import Message, MessageType as MT, TRANSFER_TYPES
from ..sim.engine import Environment, Event, PENDING
from ..sim.queues import BoundedQueue
from ..stats.breakdown import NodeStats

__all__ = ["IdealController"]


class IdealController:
    """Zero-occupancy oracle controller for one node of the ideal machine."""

    def __init__(
        self,
        env: Environment,
        node_id: int,
        config: MachineConfig,
        engine: NodeProtocolEngine,
        memory: MemoryController,
        net_port: NetworkPort,
        stats: NodeStats,
    ):
        self.env = env
        self.node_id = node_id
        self.config = config
        self.engine = engine
        self.memory = memory
        self.net_port = net_port
        self.stats = stats
        self.lat = config.latencies
        self.name = f"ideal[{node_id}]"
        self.pi_in_q = BoundedQueue(env, None, name=f"pi.in[{node_id}]")
        self.pi_out_q = BoundedQueue(env, None, name=f"pi.out[{node_id}]")
        self._cpu_deliver: Callable[[Message], None] = lambda msg: None
        self._cache_busy: Callable[[float], None] = lambda cycles: None
        self.transfers = None  # TransferDomain, attached by the Node
        self.tracer = None     # Tracer (repro.stats.trace), attached by the Machine
        self.metrics = None    # MetricsRegistry (repro.stats.metrics), attached by the Machine
        # Serial intake/outbound state machines (one in-flight item each).
        self._pi_msg: Optional[Message] = None
        self._po_bundle = None
        self._po_start = 0.0
        self._on_pi_msg_cb = self._on_pi_msg
        self._pi_process_cb = self._pi_process
        self._on_ni_msg_cb = self._on_ni_msg
        self._on_po_bundle_cb = self._on_po_bundle
        self._po_after_wait_cb = self._po_after_wait
        self._po_after_pi_cb = self._po_after_pi
        self._po_deliver_cb = self._po_deliver
        self._writer_start_cb = self._writer_start
        env.call_soon(self._pi_next)
        env.call_soon(self._ni_next)
        env.call_soon(self._po_next)

    # -- wiring (same interface as MagicChip) ------------------------------------

    def set_cpu_deliver(self, fn: Callable[[Message], None]) -> None:
        self._cpu_deliver = fn

    def set_cache_busy(self, fn: Callable[[float], None]) -> None:
        self._cache_busy = fn

    def pi_submit(self, message: Message):
        return self.pi_in_q.put(message)

    def pi_submit_cb(self, message: Message,
                     callback: Callable[[], None]) -> None:
        self.pi_in_q.put_cb(message, callback)

    def pi_submit_drop(self, message: Message) -> None:
        self.pi_in_q.put_drop(message)

    # -- message intake (callback state machines) -----------------------------------

    def _pi_next(self) -> None:
        self.pi_in_q.get_cb(self._on_pi_msg_cb)

    def _on_pi_msg(self, message: Message) -> None:
        self._pi_msg = message
        self.env.call_later(self.lat.pi_inbound, self._pi_process_cb)

    def _pi_process(self) -> None:
        message = self._pi_msg
        self._pi_msg = None
        self._process(message)
        self._pi_next()

    def _ni_next(self) -> None:
        self.net_port.in_queue.get_cb(self._on_ni_msg_cb)

    def _on_ni_msg(self, message: Message) -> None:
        self._process(message)
        self._ni_next()

    def _process(self, message: Message) -> None:
        self.stats.messages_in += 1
        if message.mtype in TRANSFER_TYPES:
            self._execute_transfer(message)
            return
        for action in self.engine.process(message):
            self._execute(action)

    def _execute_transfer(self, message: Message) -> None:
        """Zero-occupancy block transfer: memory and network costs remain,
        controller processing takes no time."""
        env = self.env
        if message.mtype == MT.XFER_SEND:
            n_lines = self.transfers.start(message)
            receiver = message.requester

            def sender():
                for index in range(n_lines):
                    line_addr = message.line_addr + index * 128
                    request = self.memory.read(line_addr)
                    yield self.memory.submit(request)
                    out = Message(
                        MT.XFER_DATA, line_addr, self.node_id, receiver,
                        self.node_id, nbytes=message.nbytes, uid=message.uid,
                    )
                    yield self.net_port.send((out, request.data_event, None))

            env.process(sender(), name=f"ideal.xfer[{self.node_id}]")
        elif message.mtype == MT.XFER_DATA:
            last = self.transfers.line_arrived(message)
            wreq = self.memory.write(message.line_addr)
            self.memory.submit_drop(wreq)
            if last:
                self.transfers.complete(self.node_id, message.src)

    # -- zero-time action execution ----------------------------------------------------

    def _execute(self, action: Action) -> None:
        env = self.env
        self.stats.note_handler(action.handler, 0.0)
        metrics = self.metrics
        if metrics is not None:
            # Zero-width rows keep the label set symmetric with FLASH so
            # ``harness diff`` renders per-handler deltas side by side.
            metrics.handler_invocations.labels(self.node_id,
                                               action.handler).inc()
            metrics.handler_busy.labels(self.node_id, action.handler).add(0.0)
            metrics.handler_cost.labels(self.node_id, action.handler).add(0.0)
            metrics.busy_per_invocation.observe(0.0)
        tracer = self.tracer
        trace_ctx = (action.message.requester, action.message.line_addr) \
            if tracer is not None else None
        if tracer is not None:
            # Zero-occupancy handler: the span is instantaneous but keeps
            # the lifecycle visible (and the decomposition rows populated)
            # on the ideal machine too.
            tracer.pp_span(self.node_id, action.handler, action.message,
                           env._now, env._now)
        data_ready: Optional[Event] = None
        if action.cache_retrieve:
            data_ready = env.timeout(self.lat.intervention_data)
            self._cache_busy(self.lat.cache_state_retrieve +
                             self.lat.cache_data_retrieve)
        elif action.cache_touched:
            self._cache_busy(self.lat.cache_state_retrieve)
        if action.needs_memory_data:
            request = self.memory.read(action.message.line_addr)
            request.trace_ctx = trace_ctx
            self.memory.submit_drop(request)  # unbounded queue: never blocks
            data_ready = request.data_event
        if action.writes_memory:
            wreq = self.memory.write(action.message.line_addr)
            wreq.trace_ctx = trace_ctx
            if data_ready is None:
                self.memory.submit_drop(wreq)
            else:
                # The old one-shot ``writer`` process started one dispatch
                # later (process-start hop); the call_soon mirrors it.
                env.call_soon(self._writer_start_cb, (wreq, data_ready))
        for out in action.sends:
            attached = data_ready if out.carries_data else None
            self.net_port.send_drop((out, attached, None))
        if action.cpu_deliver is not None:
            self.pi_out_q.put_drop((action.cpu_deliver, data_ready, None))

    def _writer_start(self, pair) -> None:
        request, data_ready = pair
        if data_ready._value is not PENDING:
            self.memory.submit_drop(request)
        else:
            data_ready.callbacks.append(SubmitWhenReady(self.memory, request))

    # -- processor interface, outbound (callback state machine) --------------------------

    def _po_next(self) -> None:
        self.pi_out_q.get_cb(self._on_po_bundle_cb)

    def _on_po_bundle(self, bundle) -> None:
        self._po_bundle = bundle
        data_ready = bundle[1]
        if self.tracer is not None:
            self._po_start = self.env._now
        if data_ready is not None and data_ready._value is PENDING:
            data_ready.callbacks.append(self._po_after_wait_cb)
            return
        self._po_after_wait(None)

    def _po_after_wait(self, _event=None) -> None:
        self.env.call_later(self.lat.pi_outbound, self._po_after_pi_cb)

    def _po_after_pi(self) -> None:
        self.env.call_later(self.lat.pi_outbound_bus_transit,
                            self._po_deliver_cb)

    def _po_deliver(self) -> None:
        message, _data_ready, done = self._po_bundle
        self._po_bundle = None
        tracer = self.tracer
        if tracer is not None:
            tracer.pi_out_span(self.node_id, message, self._po_start,
                               self.env._now)
        self._cpu_deliver(message)
        if done is not None and not done.triggered:
            done.succeed()
        for action in self.engine.replay_stable(message.line_addr):
            self._execute(action)
        self._po_next()
