"""The idealized hardwired node controller.

Section 3.1: "we replace MAGIC's macropipeline with an idealized controller
that can process all protocol operations in zero time.  The only delays that
the ideal machine encounters are those due to contention for shared resources
(such as the processor bus, memory system, and network) and data transfer
delays.  We further assume an infinite depth for all network and memory
system queues."

The controller runs the same protocol engine as MAGIC, but a message is
processed the instant it arrives, handlers take zero cycles, directory lookup
is an instantaneous oracle, and nothing ever stalls on queue space.  Memory
accesses, processor-cache interventions and interface/data-transfer
latencies remain, as does contention for memory and the network.

Message intake and the outbound processor interface run in callback/state-
machine form on the event kernel (dispatch order identical to the original
coroutine loops); handler execution itself was always a plain synchronous
call.
"""

from __future__ import annotations

import sys
from typing import Callable, Optional

from typing import Dict

from ..common.params import MachineConfig, fusion_from_env
from ..memory.controller import MemoryController, SubmitWhenReady
from ..network.mesh import NetworkPort
from ..protocol.coherence import Action, NodeProtocolEngine
from ..protocol.messages import (
    FREE_LIST as _MSG_POOL,
    Message,
    MessageType as MT,
    RECYCLING as _MSG_RECYCLING,
    TRANSFER_TYPES,
)
from ..sim.engine import Environment, Event, PENDING
from ..sim.queues import BoundedQueue
from ..stats.breakdown import NodeStats

__all__ = ["IdealController"]

#: Macro-op fusion gate switches (independent of the MAGIC chip's, so a
#: golden-matrix failure on one machine kind reverts only that kind).
_FUSE_SENDS = True
_FUSE_DELIVER = True

# Message retirement (see repro.protocol.messages.FREE_LIST): only meaningful
# when the refcount proof is available.
_getrefcount = getattr(sys, "getrefcount", None) if _MSG_RECYCLING else None


class IdealController:
    """Zero-occupancy oracle controller for one node of the ideal machine."""

    def __init__(
        self,
        env: Environment,
        node_id: int,
        config: MachineConfig,
        engine: NodeProtocolEngine,
        memory: MemoryController,
        net_port: NetworkPort,
        stats: NodeStats,
    ):
        self.env = env
        self.node_id = node_id
        self.config = config
        self.engine = engine
        self.memory = memory
        self.net_port = net_port
        self.stats = stats
        self.lat = config.latencies
        self.name = f"ideal[{node_id}]"
        self.pi_in_q = BoundedQueue(env, None, name=f"pi.in[{node_id}]")
        self.pi_out_q = BoundedQueue(env, None, name=f"pi.out[{node_id}]")
        self._cpu_deliver: Callable[[Message], None] = lambda msg: None
        self._cache_busy: Callable[[float], None] = lambda cycles: None
        self.transfers = None  # TransferDomain, attached by the Node
        self.tracer = None     # Tracer (repro.stats.trace), attached by the Machine
        self.metrics = None    # MetricsRegistry (repro.stats.metrics), attached by the Machine
        # Serial intake/outbound state machines (one in-flight item each).
        self._pi_msg: Optional[Message] = None
        self._po_bundle = None
        self._po_start = 0.0
        self._on_pi_msg_cb = self._on_pi_msg
        self._pi_process_cb = self._pi_process
        self._on_ni_msg_cb = self._on_ni_msg
        self._on_po_bundle_cb = self._on_po_bundle
        self._po_after_wait_cb = self._po_after_wait
        self._po_after_pi_cb = self._po_after_pi
        self._po_deliver_cb = self._po_deliver
        self._writer_start_cb = self._writer_start
        # Macro-op fusion (DESIGN.md §5h): the zero-occupancy handler body is
        # already synchronous; what fusion collapses here is the outbound
        # tail (NI handoffs + per-send launch hops, PI handoff + two latency
        # hops).  Census dicts mirror MagicChip's.
        self._fusion = fusion_from_env()
        self.dispatch_fused: Dict[MT, int] = {}
        self.dispatch_stepwise: Dict[MT, int] = {}
        self._fuse_ni_launch_cb = self._fuse_ni_launch
        self._fuse_po_pi_cb = self._fuse_po_pi
        self._fused_deliver_cb = self._fused_deliver
        env.call_soon(self._pi_next)
        env.call_soon(self._ni_next)
        env.call_soon(self._po_next)

    # -- wiring (same interface as MagicChip) ------------------------------------

    def set_cpu_deliver(self, fn: Callable[[Message], None]) -> None:
        self._cpu_deliver = fn

    def set_cache_busy(self, fn: Callable[[float], None]) -> None:
        self._cache_busy = fn

    def pi_submit(self, message: Message):
        return self.pi_in_q.put(message)

    def pi_submit_cb(self, message: Message,
                     callback: Callable[[], None]) -> None:
        self.pi_in_q.put_cb(message, callback)

    def pi_submit_drop(self, message: Message) -> None:
        self.pi_in_q.put_drop(message)

    # -- message intake (callback state machines) -----------------------------------

    def _pi_next(self) -> None:
        self.pi_in_q.get_cb(self._on_pi_msg_cb)

    def _on_pi_msg(self, message: Message) -> None:
        self._pi_msg = message
        self.env.call_later(self.lat.pi_inbound, self._pi_process_cb)

    def _pi_process(self) -> None:
        message = self._pi_msg
        self._pi_msg = None
        self._process(message)
        self._pi_next()

    def _ni_next(self) -> None:
        self.net_port.in_queue.get_cb(self._on_ni_msg_cb)

    def _on_ni_msg(self, message: Message) -> None:
        self._process(message)
        self._ni_next()

    def _process(self, message: Message) -> None:
        self.stats.messages_in += 1
        if message.mtype in TRANSFER_TYPES:
            self._execute_transfer(message)
            return
        for action in self.engine.process(message):
            self._execute(action)

    def _execute_transfer(self, message: Message) -> None:
        """Zero-occupancy block transfer: memory and network costs remain,
        controller processing takes no time."""
        env = self.env
        if message.mtype == MT.XFER_SEND:
            n_lines = self.transfers.start(message)
            receiver = message.requester

            def sender():
                for index in range(n_lines):
                    line_addr = message.line_addr + index * 128
                    request = self.memory.read(line_addr)
                    yield self.memory.submit(request)
                    out = Message(
                        MT.XFER_DATA, line_addr, self.node_id, receiver,
                        self.node_id, nbytes=message.nbytes, uid=message.uid,
                    )
                    yield self.net_port.send((out, request.data_event, None))

            env.process(sender(), name=f"ideal.xfer[{self.node_id}]")
        elif message.mtype == MT.XFER_DATA:
            last = self.transfers.line_arrived(message)
            wreq = self.memory.write(message.line_addr)
            self.memory.submit_drop(wreq)
            if last:
                self.transfers.complete(self.node_id, message.src)

    # -- zero-time action execution ----------------------------------------------------

    def _execute(self, action: Action) -> None:
        env = self.env
        self.stats.note_handler(action.handler, 0.0)
        metrics = self.metrics
        if metrics is not None:
            # Zero-width rows keep the label set symmetric with FLASH so
            # ``harness diff`` renders per-handler deltas side by side.
            metrics.handler_invocations.labels(self.node_id,
                                               action.handler).inc()
            metrics.handler_busy.labels(self.node_id, action.handler).add(0.0)
            metrics.handler_cost.labels(self.node_id, action.handler).add(0.0)
            metrics.busy_per_invocation.observe(0.0)
        tracer = self.tracer
        trace_ctx = (action.message.requester, action.message.line_addr) \
            if tracer is not None else None
        if tracer is not None:
            # Zero-occupancy handler: the span is instantaneous but keeps
            # the lifecycle visible (and the decomposition rows populated)
            # on the ideal machine too.
            tracer.pp_span(self.node_id, action.handler, action.message,
                           env._now, env._now)
        data_ready: Optional[Event] = None
        if action.cache_retrieve:
            data_ready = env.timeout(self.lat.intervention_data)
            self._cache_busy(self.lat.cache_state_retrieve +
                             self.lat.cache_data_retrieve)
        elif action.cache_touched:
            self._cache_busy(self.lat.cache_state_retrieve)
        if action.needs_memory_data:
            request = self.memory.read(action.message.line_addr)
            request.trace_ctx = trace_ctx
            self.memory.submit_drop(request)  # unbounded queue: never blocks
            data_ready = request.data_event
        if action.writes_memory:
            wreq = self.memory.write(action.message.line_addr)
            wreq.trace_ctx = trace_ctx
            if data_ready is None:
                self.memory.submit_drop(wreq)
            else:
                # The old one-shot ``writer`` process started one dispatch
                # later (process-start hop); the call_soon mirrors it.
                env.call_soon(self._writer_start_cb, (wreq, data_ready))
        sends = action.sends
        deliver = action.cpu_deliver
        if (self._fusion and data_ready is None and tracer is None
                and metrics is None and (sends or deliver is not None)
                and self._try_fuse_tail(action, sends, deliver)):
            return
        counts = self.dispatch_stepwise
        mtype = action.message.mtype
        counts[mtype] = counts.get(mtype, 0) + 1
        for out in sends:
            attached = data_ready if out.carries_data else None
            self.net_port.send_drop((out, attached, None))
        if deliver is not None:
            self.pi_out_q.put_drop((deliver, data_ready, None))

    # -- macro-op fusion (contention-free outbound tail) ----------------------------

    def _try_fuse_tail(self, action: Action, sends, deliver) -> bool:
        """Route the action's outbound tail onto the fused chains when the
        NI and outbound PI are provably idle (parked getter, empty queue, no
        bundle in flight).  Ideal-machine ``put_drop`` hands the bundle to a
        parked getter synchronously, so the unit-idle → busy transition (the
        getter pop) happens here at the exact stepwise position; each chain
        then keeps one calendar entry per stepwise instant, with the bundle
        tuples and the dead bundle machinery (data waits, fault and done
        checks) elided.  Restricted to one outgoing message so a fused send
        never enters the queue's item list — FIFO order with concurrent
        producers is preserved by construction.  Returns False, with no
        state mutated, the moment any check fails (the caller then runs the
        stepwise tail)."""
        env = self.env
        if env._watchdog is not None:
            return False
        port = self.net_port
        net = port._network
        if (net.faults is not None or net.tracer is not None
                or net.metrics is not None):
            return False
        n_sends = len(sends)
        if n_sends:
            if n_sends > 1 or not _FUSE_SENDS:
                return False
            if sends[0].dst == self.node_id:
                return False  # stepwise raises; keep that diagnosable
            oq = port.out_queue
            if port._out_bundle is not None or oq._items or not oq._getters:
                return False
        if deliver is not None:
            if not _FUSE_DELIVER:
                return False
            poq = self.pi_out_q
            if poq._items or not poq._getters or self._po_bundle is not None:
                return False
        # -- eligible: commit at the stepwise put positions.
        counts = self.dispatch_fused
        mtype = action.message.mtype
        counts[mtype] = counts.get(mtype, 0) + 1
        ready = env._ready
        if n_sends:
            oq._getters.popleft()   # NI occupied for the fused window
            oq.total_puts += 1
            ready.append((self._fuse_ni_hop, sends[0]))
        if deliver is not None:
            poq._getters.popleft()  # outbound PI occupied for the window
            poq.total_puts += 1
            ready.append((self._fuse_po_hop, deliver))
        return True

    def _fuse_ni_hop(self, message: Message) -> None:
        # Ready hop at the stepwise NI-pickup position (``_on_out_bundle``):
        # with no data wait, observers, or faults it reduces to one latency.
        self.env.call_later(self.lat.ni_outbound, self._fuse_ni_launch_cb,
                            message)

    def _fuse_ni_launch(self, message: Message) -> None:
        # The stepwise ``_out_fault_step`` instant: launch and re-arm the NI
        # (which picks up any traffic that queued behind the fused window).
        port = self.net_port
        port._network._launch(message)
        port._outbound_next()

    def _fuse_po_hop(self, message: Message) -> None:
        # Ready hop at the stepwise PO-pickup position (``_on_po_bundle``).
        self.env.call_later(self.lat.pi_outbound, self._fuse_po_pi_cb,
                            message)

    def _fuse_po_pi(self, message: Message) -> None:
        # The stepwise machine charges pi_outbound and the bus transit as
        # two calendar hops; the chain keeps both instants.
        self.env.call_later(self.lat.pi_outbound_bus_transit,
                            self._fused_deliver_cb, message)

    def _fused_deliver(self, message: Message) -> None:
        """Outbound-PI epilogue at the instant stepwise ``_po_deliver`` would
        run (tracer/done branches statically absent under fusion)."""
        self._cpu_deliver(message)
        for action in self.engine.replay_stable(message.line_addr):
            self._execute(action)
        self._po_next()
        if _getrefcount is not None and _getrefcount(message) == 4:
            # Last calendar entry of the deliver chain.  The enumerated
            # references are the run loop's (callback, arg) tuple, its
            # unpacked arg local, our parameter, and getrefcount's argument;
            # equality proves nothing retained the message past delivery.
            _MSG_POOL.append(message)

    def _writer_start(self, pair) -> None:
        request, data_ready = pair
        if data_ready._value is not PENDING:
            self.memory.submit_drop(request)
        else:
            data_ready.callbacks.append(SubmitWhenReady(self.memory, request))

    # -- processor interface, outbound (callback state machine) --------------------------

    def _po_next(self) -> None:
        self.pi_out_q.get_cb(self._on_po_bundle_cb)

    def _on_po_bundle(self, bundle) -> None:
        self._po_bundle = bundle
        data_ready = bundle[1]
        if self.tracer is not None:
            self._po_start = self.env._now
        if data_ready is not None and data_ready._value is PENDING:
            data_ready.callbacks.append(self._po_after_wait_cb)
            return
        self._po_after_wait(None)

    def _po_after_wait(self, _event=None) -> None:
        self.env.call_later(self.lat.pi_outbound, self._po_after_pi_cb)

    def _po_after_pi(self) -> None:
        self.env.call_later(self.lat.pi_outbound_bus_transit,
                            self._po_deliver_cb)

    def _po_deliver(self) -> None:
        message, _data_ready, done = self._po_bundle
        self._po_bundle = None
        tracer = self.tracer
        if tracer is not None:
            tracer.pi_out_span(self.node_id, message, self._po_start,
                               self.env._now)
        self._cpu_deliver(message)
        if done is not None and not done.triggered:
            done.succeed()
        for action in self.engine.replay_stable(message.line_addr):
            self._execute(action)
        self._po_next()
