"""Parallel experiment run farm, tolerant of slow, crashing and flaky runs.

Every ``run_app`` configuration is independent, so a sweep (seven apps x two
machines x several regimes) is embarrassingly parallel.  The farm fans
normalized run specs out to worker processes; each worker executes
``run_app`` (hitting or populating the shared on-disk result cache) and ships
the serialized :class:`RunResult` back, which the parent deserializes and
seeds into the in-process memo so subsequent ``run_app``/``run_flash_ideal``
calls are instant.

Robustness (:class:`FarmPolicy`): each run gets an optional wall-clock
timeout (enforced by killing the worker, not by waiting politely), failures
are retried with exponential backoff, a worker killed by the OS (OOM killer,
SIGKILL) is detected through the broken process pool and the specs it took
down with it are resubmitted — serialized one at a time so a repeat solo
crash identifies which spec is the killer — and specs that keep failing are
quarantined so later sweeps in the same process skip them.  A sweep with
failures still returns every result it could compute
(:meth:`run_specs_resilient` -> :class:`FarmReport`); the strict
:func:`run_specs` wrapper raises :class:`FarmError` instead.

Parallelism is requested with ``--jobs N`` on ``python -m repro.harness`` or
the ``REPRO_JOBS`` environment variable (honored by ``benchmarks/_util.py``).
The fork start method is preferred: workers inherit the parent's interpreter
state (including the hash seed), so a farmed sweep is bit-identical to a
serial one.
"""

from __future__ import annotations

import heapq
import json
import multiprocessing
import os
import signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..common.errors import ReproError
from ..stats.report import RunResult
from . import diskcache, envopts, experiments

__all__ = [
    "FarmError", "FarmPolicy", "SpecFailure", "FarmReport",
    "default_jobs", "sweep_specs", "run_specs", "run_specs_resilient",
    "run_suite", "clear_quarantine",
]


class FarmError(ReproError):
    """A farmed sweep could not complete every spec (strict mode)."""


@dataclass(frozen=True)
class FarmPolicy:
    """Failure-handling knobs for one farmed sweep.

    ``timeout``
        Per-run wall-clock budget in seconds; a worker past it is killed and
        the spec retried.  None (default) never times out.
    ``max_retries``
        How many times a failing spec is *re*-run after its first attempt.
    ``backoff``
        Base delay before a retry, doubling per attempt
        (``backoff * 2**(attempt-1)`` seconds).
    ``quarantine_after``
        After this many *final* failures (across sweeps in one process), the
        spec is skipped outright and reported as quarantined.
    """

    timeout: Optional[float] = None
    max_retries: int = 1
    backoff: float = 0.5
    quarantine_after: int = 3


@dataclass
class SpecFailure:
    """One spec the farm gave up on, and why."""

    spec: Dict
    kind: str               # "timeout" | "crash" | "error" | "quarantined"
    error: str
    attempts: int
    killed_worker: bool = False   # this spec, alone in flight, broke the pool
    quarantined: bool = False

    def describe(self) -> str:
        spec = self.spec
        where = (f"{spec.get('app')}/{spec.get('kind')}"
                 f"@{spec.get('regime')}")
        return (f"{where}: {self.kind} after {self.attempts} attempt(s): "
                f"{self.error}")

    def to_dict(self) -> Dict:
        return {
            "spec": self.spec, "kind": self.kind, "error": self.error,
            "attempts": self.attempts, "killed_worker": self.killed_worker,
            "quarantined": self.quarantined,
        }


@dataclass
class FarmReport:
    """Everything a resilient sweep produced: results in spec order (None
    where the farm gave up) plus a machine-readable failure list."""

    results: List[Optional[RunResult]]
    failures: List[SpecFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def completed(self) -> List[RunResult]:
        return [r for r in self.results if r is not None]

    def to_dict(self) -> Dict:
        return {
            "completed": sum(r is not None for r in self.results),
            "failed": len(self.failures),
            "failures": [f.describe() for f in self.failures],
        }


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (defaults to 1 = serial)."""
    return envopts.jobs_from_env()


def sweep_specs(
    apps: Optional[Sequence[str]] = None,
    regime: str = "large",
    kinds: Sequence[str] = ("flash", "ideal"),
    **common,
) -> List[Dict]:
    """Normalized specs for an app x machine sweep (the Figure 4.1 shape).

    Apps that the paper does not run at ``regime`` (N/A cells) are skipped.
    """
    specs = []
    for app in apps if apps is not None else experiments.APP_ORDER:
        if experiments.regime_cache_bytes(app, regime) is None:
            continue
        for kind in kinds:
            specs.append(experiments.normalize_spec(
                app, kind=kind, regime=regime, **common))
    return specs


# -- quarantine --------------------------------------------------------------------------
#
# Final failures accumulate per canonical spec key for the lifetime of the
# parent process; a spec past ``quarantine_after`` is skipped by later sweeps
# so one poisoned configuration cannot stall every suite invocation.

_quarantine_counts: Dict[str, int] = {}


def clear_quarantine() -> None:
    _quarantine_counts.clear()


# -- workers -----------------------------------------------------------------------------

_SELFTEST_APP = "__selftest__"


def _selftest(spec: Dict) -> Optional[Dict]:
    """Fault-drill specs for the farm's own tests: ``app == "__selftest__"``
    makes the worker misbehave per ``workload_overrides`` (sleep, raise, die
    by SIGKILL, fail once then succeed).  Gated behind an environment flag so
    no real sweep can wander into it."""
    if spec.get("app") != _SELFTEST_APP:
        return None
    if os.environ.get("REPRO_FARM_SELFTEST") != "1":
        raise FarmError(
            "__selftest__ specs require REPRO_FARM_SELFTEST=1")
    return dict(spec.get("workload_overrides") or {})


def _selftest_worker(behavior: Dict) -> str:
    marker = behavior.get("flaky_marker")
    if marker and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("first attempt\n")
        if behavior.get("flaky_mode") == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        raise RuntimeError("selftest: failing the first attempt")
    if behavior.get("sleep"):
        time.sleep(float(behavior["sleep"]))
    if behavior.get("die") == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
    if behavior.get("raise"):
        raise RuntimeError(str(behavior["raise"]))
    if behavior.get("ok_spec"):
        return experiments.run_spec(behavior["ok_spec"]).to_json()
    return json.dumps({"schema": "selftest", "ok": True})


def _wire_result(result: RunResult) -> str:
    """Worker -> parent IPC form: the canonical result plus the diagnostic
    extras ``to_json`` deliberately omits (``cache_totals`` is not part of
    the serialized result, but a farmed fresh run should not silently lose
    it on the way back to the parent)."""
    return json.dumps({
        "wire": 1,
        "result": result.to_dict(),
        "cache_totals": result.cache_totals,
    })


def _unwire_result(payload: str) -> RunResult:
    state = json.loads(payload)
    if "wire" not in state:
        # A bare canonical RunResult (selftest ok_spec echoes).
        return RunResult.from_dict(state)
    result = RunResult.from_dict(state["result"])
    result.cache_totals = state.get("cache_totals")
    return result


def _worker(spec: Dict) -> str:
    """Run one spec in a worker process; results travel as canonical JSON."""
    behavior = _selftest(spec)
    if behavior is not None:
        return _selftest_worker(behavior)
    return _wire_result(experiments.run_spec(spec))


def _pool_context() -> multiprocessing.context.BaseContext:
    method = os.environ.get("REPRO_START_METHOD")
    if method:
        return multiprocessing.get_context(method)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# -- the resilient scheduler -------------------------------------------------------------


def run_specs_resilient(
    specs: Iterable[Dict],
    jobs: Optional[int] = None,
    policy: Optional[FarmPolicy] = None,
) -> FarmReport:
    """Execute every spec, farming across ``jobs`` worker processes, and
    degrade gracefully: a spec that keeps timing out, crashing its worker or
    raising is retried per ``policy`` and then *reported* rather than sinking
    the sweep.  Results come back in spec order (None at failed slots) and
    successful ones seed the parent's memo table.
    """
    specs = list(specs)
    policy = policy if policy is not None else FarmPolicy()
    jobs = default_jobs() if jobs is None else max(1, jobs)
    if not specs:
        return FarmReport([])
    # Serial only when the caller asked for it AND no timeout needs
    # enforcing (a wall-clock budget requires a killable worker process).
    if jobs <= 1 and policy.timeout is None:
        return _run_serial(specs, policy)
    return _run_farmed(specs, min(jobs, len(specs)), policy)


def _charge_final(spec: Dict, policy: FarmPolicy, kind: str, error: str,
                  attempts: int, killed_worker: bool = False) -> SpecFailure:
    key = diskcache.canonical_key(spec)
    count = _quarantine_counts.get(key, 0) + 1
    _quarantine_counts[key] = count
    return SpecFailure(spec, kind, error, attempts,
                       killed_worker=killed_worker,
                       quarantined=count >= policy.quarantine_after)


def _quarantined_failure(spec: Dict, policy: FarmPolicy) -> Optional[SpecFailure]:
    count = _quarantine_counts.get(diskcache.canonical_key(spec), 0)
    if count < policy.quarantine_after:
        return None
    return SpecFailure(
        spec, "quarantined",
        f"skipped: failed {count} prior sweep(s) (quarantine_after="
        f"{policy.quarantine_after})", 0, quarantined=True)


def _run_serial(specs: List[Dict], policy: FarmPolicy) -> FarmReport:
    """jobs=1 and no timeout: plain in-process loop (bit-identical to the
    pre-farm behaviour), still with retry/backoff and quarantine."""
    results: List[Optional[RunResult]] = [None] * len(specs)
    failures: List[SpecFailure] = []
    for i, spec in enumerate(specs):
        skip = _quarantined_failure(spec, policy)
        if skip is not None:
            failures.append(skip)
            continue
        attempts = 0
        while True:
            attempts += 1
            try:
                behavior = _selftest(spec)
                if behavior is not None:
                    results[i] = _selftest_worker(behavior)
                else:
                    results[i] = experiments.run_spec(spec)
                break
            except Exception as exc:  # noqa: BLE001 — every failure retries
                if attempts > policy.max_retries:
                    failures.append(_charge_final(
                        spec, policy, "error",
                        f"{type(exc).__name__}: {exc}", attempts))
                    break
                time.sleep(policy.backoff * 2 ** (attempts - 1))
    return FarmReport(results, failures)


def _run_farmed(specs: List[Dict], jobs: int,
                policy: FarmPolicy) -> FarmReport:
    ctx = _pool_context()
    results: List[Optional[RunResult]] = [None] * len(specs)
    failures_by_index: Dict[int, SpecFailure] = {}
    attempts = [0] * len(specs)
    suspects: set = set()   # indices being serialized after a pool break
    ready: List[Tuple[float, int, int]] = []   # (not_before, seq, index)
    seq = 0
    now = time.monotonic()
    for i, spec in enumerate(specs):
        skip = _quarantined_failure(spec, policy)
        if skip is not None:
            failures_by_index[i] = skip
        else:
            heapq.heappush(ready, (now, seq, i))
            seq += 1

    executor: Optional[ProcessPoolExecutor] = None
    inflight: Dict[object, Tuple[int, float]] = {}   # future -> (index, start)

    def ensure_executor() -> ProcessPoolExecutor:
        nonlocal executor
        if executor is None:
            executor = ProcessPoolExecutor(max_workers=jobs, mp_context=ctx)
        return executor

    def kill_executor() -> None:
        """Tear the pool down *now* — terminate workers rather than joining
        them (a SIGKILLed or wedged worker never joins politely)."""
        nonlocal executor
        if executor is None:
            return
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.terminate()
            except (OSError, AttributeError):
                pass
        executor.shutdown(wait=False, cancel_futures=True)
        executor = None

    def reschedule(index: int, kind: str, error: str,
                   killed: bool = False, charge: bool = True) -> None:
        nonlocal seq
        if charge and attempts[index] > policy.max_retries:
            failures_by_index[index] = _charge_final(
                specs[index], policy, kind, error, attempts[index],
                killed_worker=killed)
            suspects.discard(index)
            return
        if charge:
            delay = policy.backoff * 2 ** (attempts[index] - 1)
        else:
            # An innocent bystander (its worker was killed to enforce a
            # neighbour's timeout, or the pool collapsed under it): resubmit
            # without charging the attempt.
            attempts[index] = max(0, attempts[index] - 1)
            delay = 0.0
        heapq.heappush(ready, (time.monotonic() + delay, seq, index))
        seq += 1

    def pop_eligible() -> Optional[int]:
        if not ready:
            return None
        # Post-crash suspects run strictly alone, so a repeat crash
        # unambiguously names the spec that kills its worker.
        if any(idx in suspects for idx, _ in inflight.values()):
            return None
        not_before, _, index = ready[0]
        if not_before > time.monotonic():
            return None
        if index in suspects and inflight:
            return None
        heapq.heappop(ready)
        return index

    try:
        while ready or inflight:
            while len(inflight) < jobs:
                index = pop_eligible()
                if index is None:
                    break
                attempts[index] += 1
                future = ensure_executor().submit(_worker, specs[index])
                inflight[future] = (index, time.monotonic())
                if index in suspects:
                    break   # keep the suspect alone in flight
            if not inflight:
                if ready:   # waiting out a backoff timer
                    delay = ready[0][0] - time.monotonic()
                    time.sleep(min(max(delay, 0.01), 0.25))
                continue

            wait_timeout = 0.25
            if policy.timeout is not None:
                nearest = min(start + policy.timeout
                              for _, start in inflight.values())
                wait_timeout = min(wait_timeout,
                                   max(nearest - time.monotonic(), 0.0))
            done, _ = futures_wait(list(inflight), timeout=wait_timeout,
                                   return_when=FIRST_COMPLETED)

            crashed: List[int] = []
            for future in done:
                index, _start = inflight.pop(future)
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    crashed.append(index)
                except Exception as exc:  # noqa: BLE001 — worker exceptions retry
                    reschedule(index, "error",
                               f"{type(exc).__name__}: {exc}")
                else:
                    suspects.discard(index)
                    if specs[index].get("app") == _SELFTEST_APP:
                        results[index] = payload
                    else:
                        result = _unwire_result(payload)
                        experiments.memoize(specs[index], result)
                        results[index] = result

            if crashed:
                # A worker died (SIGKILL/OOM): the pool is broken and every
                # in-flight future fails with it, innocent or not.  All of
                # them become suspects; only a spec that crashed *alone*
                # can be blamed outright.
                for future, (index, _start) in list(inflight.items()):
                    del inflight[future]
                    crashed.append(index)
                kill_executor()
                solo = len(crashed) == 1
                for index in crashed:
                    suspects.add(index)
                    reschedule(index, "crash",
                               "worker process died unexpectedly "
                               "(killed or out of memory)", killed=solo)
                continue

            if policy.timeout is not None and inflight:
                now = time.monotonic()
                expired = [(future, index) for future, (index, start)
                           in inflight.items()
                           if now - start > policy.timeout]
                if expired:
                    survivors = [(future, index) for future, (index, _s)
                                 in inflight.items()
                                 if (future, index) not in expired]
                    inflight.clear()
                    # The executor offers no per-task cancel once running;
                    # enforce the deadline by killing the pool.
                    kill_executor()
                    for _future, index in expired:
                        reschedule(index, "timeout",
                                   f"exceeded the {policy.timeout:g}s "
                                   f"wall-clock timeout")
                    for _future, index in survivors:
                        reschedule(index, "lost", "", charge=False)
    finally:
        kill_executor()

    failures = [failures_by_index[i] for i in sorted(failures_by_index)]
    return FarmReport(results, failures)


def run_specs(
    specs: Iterable[Dict],
    jobs: Optional[int] = None,
    policy: Optional[FarmPolicy] = None,
) -> List[RunResult]:
    """Strict farm: every spec must succeed.  Raises :class:`FarmError`
    naming each failed spec; partial results are still memoized (and cached
    on disk) by the time it raises."""
    report = run_specs_resilient(specs, jobs=jobs, policy=policy)
    if not report.ok:
        raise FarmError("; ".join(f.describe() for f in report.failures))
    return report.results


def run_suite(
    regime: str = "large", jobs: Optional[int] = None, **common
) -> Dict[Tuple[str, str], RunResult]:
    """Farm the full FLASH-vs-ideal sweep; keyed by ``(app, kind)``."""
    specs = sweep_specs(regime=regime, **common)
    results = run_specs(specs, jobs=jobs)
    return {(s["app"], s["kind"]): r for s, r in zip(specs, results)}
