"""Parallel experiment run farm.

Every ``run_app`` configuration is independent, so a sweep (seven apps x two
machines x several regimes) is embarrassingly parallel.  The farm fans
normalized run specs out to a ``multiprocessing`` pool of worker processes;
each worker executes ``run_app`` (hitting or populating the shared on-disk
result cache) and ships the serialized :class:`RunResult` back, which the
parent deserializes and seeds into the in-process memo so subsequent
``run_app``/``run_flash_ideal`` calls are instant.

Parallelism is requested with ``--jobs N`` on ``python -m repro.harness`` or
the ``REPRO_JOBS`` environment variable (honored by ``benchmarks/_util.py``).
The fork start method is preferred: workers inherit the parent's interpreter
state (including the hash seed), so a farmed sweep is bit-identical to a
serial one.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..stats.report import RunResult
from . import experiments

__all__ = ["default_jobs", "sweep_specs", "run_specs", "run_suite"]


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (defaults to 1 = serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def sweep_specs(
    apps: Optional[Sequence[str]] = None,
    regime: str = "large",
    kinds: Sequence[str] = ("flash", "ideal"),
    **common,
) -> List[Dict]:
    """Normalized specs for an app x machine sweep (the Figure 4.1 shape).

    Apps that the paper does not run at ``regime`` (N/A cells) are skipped.
    """
    specs = []
    for app in apps if apps is not None else experiments.APP_ORDER:
        if experiments.regime_cache_bytes(app, regime) is None:
            continue
        for kind in kinds:
            specs.append(experiments.normalize_spec(
                app, kind=kind, regime=regime, **common))
    return specs


def _worker(spec: Dict) -> str:
    """Run one spec in a worker process; results travel as canonical JSON."""
    result = experiments.run_app(
        spec["app"], kind=spec["kind"], regime=spec["regime"],
        n_procs=spec["n_procs"],
        workload_overrides=spec["workload_overrides"],
        config_overrides=spec["config_overrides"],
        pp_backend=spec["pp_backend"],
    )
    return result.to_json()


def _pool_context() -> multiprocessing.context.BaseContext:
    method = os.environ.get("REPRO_START_METHOD")
    if method:
        return multiprocessing.get_context(method)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_specs(specs: Iterable[Dict], jobs: Optional[int] = None) -> List[RunResult]:
    """Execute every spec, farming across ``jobs`` worker processes.

    Returns results in spec order and seeds the parent's memo table, so the
    usual ``run_app`` accessors find them afterwards.  ``jobs=None`` reads
    ``REPRO_JOBS``; 1 (or a single spec) degrades to a plain serial loop.
    """
    specs = list(specs)
    jobs = default_jobs() if jobs is None else max(1, jobs)
    jobs = min(jobs, len(specs))
    if jobs <= 1:
        return [
            experiments.run_app(
                s["app"], kind=s["kind"], regime=s["regime"],
                n_procs=s["n_procs"],
                workload_overrides=s["workload_overrides"],
                config_overrides=s["config_overrides"],
                pp_backend=s["pp_backend"],
            )
            for s in specs
        ]
    with _pool_context().Pool(processes=jobs) as pool:
        payloads = pool.map(_worker, specs, chunksize=1)
    results = []
    for spec, payload in zip(specs, payloads):
        result = RunResult.from_json(payload)
        experiments.memoize(spec, result)
        results.append(result)
    return results


def run_suite(
    regime: str = "large", jobs: Optional[int] = None, **common
) -> Dict[Tuple[str, str], RunResult]:
    """Farm the full FLASH-vs-ideal sweep; keyed by ``(app, kind)``."""
    specs = sweep_specs(regime=regime, **common)
    results = run_specs(specs, jobs=jobs)
    return {(s["app"], s["kind"]): r for s, r in zip(specs, results)}
