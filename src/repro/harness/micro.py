"""No-contention latency microbenchmarks (Table 3.3 / Figure 3.1).

Each scenario stages the directory/cache state for one read-miss class, then
has processor 0 issue a single read and measures its stall time — exactly the
paper's definition: cycles from miss detection to the first 8 bytes on the
processor bus.  The MAGIC data cache is disabled (Table 3.3 assumes warm
protocol caches), and the per-class total PP occupancy is measured alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..common.params import MachineConfig, MagicCacheConfig, flash_config, ideal_config
from ..common.units import MB
from ..machine import Machine
from ..protocol.coherence import MissClass

__all__ = ["LatencyMeasurement", "measure_latencies", "PAPER_TABLE_3_3"]

#: Paper Table 3.3: (ideal latency, FLASH latency, FLASH PP occupancy).
PAPER_TABLE_3_3 = {
    MissClass.LOCAL_CLEAN: (24, 27, 11),
    MissClass.LOCAL_DIRTY_REMOTE: (100, 143, 53),
    MissClass.REMOTE_CLEAN: (92, 111, 16),
    MissClass.REMOTE_DIRTY_HOME: (100, 145, 53),
    MissClass.REMOTE_DIRTY_REMOTE: (136, 191, 61),
}

#: How each class is staged: (home node, writer node or None).  The reader is
#: always processor 0; misses are classified at the home.
_SCENARIOS = {
    MissClass.LOCAL_CLEAN: (0, None),
    MissClass.LOCAL_DIRTY_REMOTE: (0, 1),
    MissClass.REMOTE_CLEAN: (1, None),
    MissClass.REMOTE_DIRTY_HOME: (1, 1),
    MissClass.REMOTE_DIRTY_REMOTE: (1, 2),
}

_SETTLE = 2000  # cycles for the staging write to fully retire


@dataclass
class LatencyMeasurement:
    miss_class: str
    latency: float
    pp_occupancy: float


def _scenario_workload(config: MachineConfig, home: int, writer, reader: int = 0):
    """Build op streams staging one miss and measuring one read."""
    addr = home * config.memory_bytes_per_node + 4096

    def reader_ops():
        yield ("b", "staged")
        yield ("r", addr)

    def writer_ops():
        # Read first so the write is an upgrade-after-read; either way the
        # line ends up DIRTY in the writer's cache.
        yield ("r", addr)
        yield ("w", addr)
        yield ("c", _SETTLE)
        yield ("b", "staged")

    def idle_ops():
        yield ("c", 1)
        yield ("b", "staged")

    streams = []
    for cpu in range(config.n_procs):
        if cpu == reader:
            streams.append(reader_ops())
        elif writer is not None and cpu == writer:
            streams.append(writer_ops())
        else:
            streams.append(idle_ops())
    return streams


def _measure_one(config: MachineConfig, miss_class: str) -> LatencyMeasurement:
    home, writer = _SCENARIOS[miss_class]
    machine = Machine(config)
    workload = _scenario_workload(config, home, writer)
    # Snapshot handler cycles after staging by sampling at the barrier: we
    # instead measure the delta over the whole run minus the staging cost,
    # which is simpler — stage costs are excluded by reading the per-class
    # totals only for the final read's handlers.  The reliable signal is the
    # reader's read-stall time, which covers exactly one miss.
    before = 0.0
    result = machine.run(workload)
    reader_times = machine.nodes[0].cpu.times
    latency = reader_times.read_stall
    pp_after = sum(node.stats.pp_handler_cycles for node in machine.nodes)
    # Subtract handler cycles spent during staging by re-running the staging
    # alone (writer path without the final read).
    pp_occ = pp_after - _staging_pp_cycles(config, miss_class)
    return LatencyMeasurement(miss_class, latency, pp_occ)


def _staging_pp_cycles(config: MachineConfig, miss_class: str) -> float:
    home, writer = _SCENARIOS[miss_class]
    machine = Machine(config)
    addr = home * config.memory_bytes_per_node + 4096

    def writer_ops():
        yield ("r", addr)
        yield ("w", addr)
        yield ("c", _SETTLE)

    def idle_ops():
        yield ("c", 1)

    streams = []
    for cpu in range(config.n_procs):
        if writer is not None and cpu == writer:
            streams.append(writer_ops())
        else:
            streams.append(idle_ops())
    machine.run(streams)
    return sum(node.stats.pp_handler_cycles for node in machine.nodes)


def measure_latencies(config: MachineConfig) -> Dict[str, LatencyMeasurement]:
    """Measure all five read-miss classes for one machine configuration.

    The MDC is disabled for the measurement (no-contention conditions assume
    warm protocol caches).  Results are memoized per configuration.
    """
    cached = _latency_cache.get(config)
    if cached is not None:
        return cached
    cold = config.with_changes(
        magic_caches=MagicCacheConfig(enabled=False)
    )
    result = {cls: _measure_one(cold, cls) for cls in MissClass.ALL}
    _latency_cache[config] = result
    return result


_latency_cache: Dict[MachineConfig, Dict[str, LatencyMeasurement]] = {}


def latency_table(n_procs: int = 16) -> List[Tuple[str, float, float, float]]:
    """Rows of Table 3.3: (class, ideal latency, FLASH latency, FLASH PP occ)."""
    ideal = measure_latencies(ideal_config(n_procs))
    flash = measure_latencies(flash_config(n_procs))
    rows = []
    for cls in MissClass.ALL:
        rows.append((cls, ideal[cls].latency, flash[cls].latency,
                     flash[cls].pp_occupancy))
    return rows


def miss_latency_lookup(config: MachineConfig) -> Dict[str, float]:
    """Per-class latencies for CRMT computation."""
    return {cls: m.latency for cls, m in measure_latencies(config).items()}
