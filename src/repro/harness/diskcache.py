"""Persistent on-disk cache for experiment results.

Every ``run_app`` configuration is deterministic, so its :class:`RunResult`
can be cached across processes and across pytest/CLI invocations.  Entries
live under ``.repro_cache/`` at the repository root (override with
``REPRO_CACHE_DIR``), keyed by

* a **canonical hash** of the full run configuration (stable across dict
  ordering and nested override values), and
* a **source fingerprint** of every ``.py`` file in ``src/repro/`` — any
  simulator change invalidates all prior results automatically.

``REPRO_CACHE=off`` (or ``0``/``no``/``false``) bypasses the cache entirely;
``python -m repro.harness clear`` wipes it.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import shutil
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

logger = logging.getLogger(__name__)

from ..stats.report import RunResult

__all__ = [
    "canonical_json", "canonical_key", "source_fingerprint",
    "cache_enabled", "cache_root", "DiskCache", "default_cache",
]

from . import envopts


def _jsonable(value: Any) -> Any:
    """Fallback encoder for canonical hashing of non-JSON config values."""
    if isinstance(value, tuple):
        return list(value)
    if isinstance(value, (set, frozenset)):
        return sorted(value, key=repr)
    if hasattr(value, "__dict__"):
        return {"__type__": type(value).__qualname__, **vars(value)}
    return {"__repr__": repr(value)}


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text for ``obj``: sorted keys, compact separators,
    tuples/sets normalized.  Equal configurations (however their dicts were
    built) produce identical text."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=_jsonable)


def canonical_key(obj: Any) -> str:
    """Stable hex digest of an arbitrary (possibly nested, possibly
    unhashable) configuration object.  Shared by the in-process memo table
    and the on-disk cache."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def _result_checksum(result_dict: Any) -> str:
    """Integrity digest stored alongside each cache entry's result."""
    return hashlib.sha256(
        canonical_json(result_dict).encode("utf-8")).hexdigest()


# -- source fingerprint ----------------------------------------------------------------

_fingerprint: Optional[str] = None


def source_fingerprint(refresh: bool = False) -> str:
    """Content hash over every ``.py`` file of the ``repro`` package.

    Computed once per process; any edit to the simulator produces a new
    fingerprint, so stale cached results can never be served.
    """
    global _fingerprint
    if _fingerprint is None or refresh:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint = digest.hexdigest()
    return _fingerprint


# -- cache location and policy ---------------------------------------------------------


def cache_enabled() -> bool:
    return envopts.cache_enabled()


def cache_root() -> Path:
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    # src/repro/harness/diskcache.py -> repository root is three levels up
    # from the package directory; fall back to the CWD for installed trees.
    repo_root = Path(__file__).resolve().parents[3]
    if not (repo_root / "src").is_dir():
        repo_root = Path.cwd()
    return repo_root / ".repro_cache"


class DiskCache:
    """Filesystem-backed map from run configuration to :class:`RunResult`."""

    def __init__(self, root: Optional[Path] = None):
        self._root = Path(root) if root is not None else None

    @property
    def root(self) -> Path:
        return self._root if self._root is not None else cache_root()

    def entry_path(self, spec: Dict[str, Any]) -> Path:
        return (self.root / source_fingerprint()[:16]
                / f"{canonical_key(spec)}.json")

    def load(self, spec: Dict[str, Any]) -> Optional[RunResult]:
        """Return the cached result for ``spec``, or None on miss/disabled.

        A present-but-unusable entry (truncated write, bit rot detected by
        the checksum, schema drift) is *evicted* — logged and unlinked — so
        the slot is rewritten by the live run that follows instead of
        producing the same parse failure on every load."""
        if not cache_enabled():
            return None
        path = self.entry_path(spec)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None   # plain miss
        except OSError:
            return None   # unreadable (permissions, I/O error): miss, keep it
        try:
            payload = json.loads(text)
            result_dict = payload["result"]
            checksum = payload.get("checksum")
            if checksum is not None and checksum != _result_checksum(result_dict):
                raise ValueError("checksum mismatch (corrupt or tampered entry)")
            result = RunResult.from_dict(result_dict)
            # Diagnostic extras ride alongside the canonical result (never
            # inside it — the result's canonical JSON, and with it the
            # golden-hash matrix, must not change).  Older entries without
            # the key fall back to the class default (None).
            extras = payload.get("extras")
            if isinstance(extras, dict):
                result.cache_totals = extras.get("cache_totals")
            return result
        except (ValueError, KeyError, TypeError) as error:
            self._evict(path, error)
            return None

    @staticmethod
    def _evict(path: Path, error: Exception) -> None:
        logger.warning("evicting corrupt cache entry %s: %s", path, error)
        try:
            path.unlink()
        except OSError:
            pass   # a concurrent reader may have evicted it first

    def store(self, spec: Dict[str, Any], result: RunResult) -> Optional[Path]:
        """Persist ``result`` for ``spec``; atomic against concurrent writers."""
        if not cache_enabled():
            return None
        path = self.entry_path(spec)
        result_dict = result.to_dict()
        payload = canonical_json({
            "fingerprint": source_fingerprint(),
            "spec": spec,
            "result": result_dict,
            # Integrity check over the result alone: a torn or bit-rotted
            # entry is detected (and evicted) on load rather than served.
            "checksum": _result_checksum(result_dict),
            # Machine-wide cache counters (diagnostic; PR 2 left them
            # unserialized, so warm-cache ``profile`` runs lost them).
            "extras": {"cache_totals": result.cache_totals},
        })
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(path.parent), prefix=path.stem, suffix=".tmp"
            )
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp_name, path)  # atomic: farm workers may race here
        except OSError:
            return None
        return path

    def clear(self) -> int:
        """Delete the cache directory; returns how many entries were dropped."""
        root = self.root
        count = sum(1 for _ in root.rglob("*.json")) if root.is_dir() else 0
        shutil.rmtree(root, ignore_errors=True)
        return count

    def size(self) -> int:
        root = self.root
        return sum(1 for _ in root.rglob("*.json")) if root.is_dir() else 0


#: Process-wide cache instance used by ``experiments.run_app``.
default_cache = DiskCache()
