"""Experiment definitions: one entry per paper table/figure.

The paper's three cache regimes (1 MB / 64 KB / 4 KB, with 16 KB for Ocean at
the small size) are mapped onto cache sizes scaled to our default problem
sizes, preserving the working-set relationships: at ``large`` every working
set fits (only cold/communication misses, as the paper observes at 1 MB); at
``medium`` it mostly does not; at ``small`` capacity misses dominate.  Set
``REPRO_SCALE=paper`` to run the paper's literal sizes (slow in pure Python).

Results are memoized per configuration so benchmark modules can share runs.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from ..apps import (
    BarnesWorkload, FFTWorkload, LUWorkload, MP3DWorkload, OceanWorkload,
    OpenLoopWorkload, OSWorkload, RadixWorkload,
)
from ..common.params import MachineConfig, flash_config, ideal_config
from ..common.units import KB, MB
from ..machine import Machine
from ..pp.costmodel import EmulatedCostModel
from ..stats.report import RunResult
from ..stats.trace import parse_trace_spec
from . import diskcache, envopts

__all__ = [
    "APP_ORDER", "REGIMES", "SMOKE_SIZES", "app_workload",
    "regime_cache_bytes", "normalize_spec", "run_app", "run_spec",
    "run_flash_ideal", "run_traced", "clear_cache", "memoize",
]

APP_ORDER = ["barnes", "fft", "lu", "mp3d", "ocean", "os", "radix"]

#: regime -> per-app cache size in bytes.  The paper's N/A cells (Section
#: 3.4: LU and OS not run at small sizes, Barnes not at 4 KB, Ocean at 16 KB
#: instead of 4 KB) are preserved as None.
REGIMES: Dict[str, Dict[str, Optional[int]]] = {
    "large": {app: 1 * MB for app in APP_ORDER},
    "medium": {
        "barnes": 8 * KB, "fft": 4 * KB, "lu": None, "mp3d": 8 * KB,
        "ocean": 8 * KB, "os": None, "radix": 8 * KB,
    },
    "small": {
        # FFT's 2 KB row must not fit entirely (the paper's 4 KB cache did
        # not hold a 64K-point row either), hence 1 KB here.
        "barnes": None, "fft": 1 * KB, "lu": None, "mp3d": 2 * KB,
        "ocean": 4 * KB,  # the paper's Ocean exception (16 KB vs 4 KB)
        "os": None, "radix": 2 * KB,
    },
}

#: regime label -> the paper's cache size, for table headers.
PAPER_REGIME_LABEL = {"large": "1 MB", "medium": "64 KB", "small": "4 KB"}

# The open-loop front end (repro.apps.openloop) is not a paper application:
# it stays out of APP_ORDER and the figure sweeps, but runs at every regime
# so the loadlat CLI can sweep offered load against any cache pressure.
REGIMES["large"]["openloop"] = 1 * MB
REGIMES["medium"]["openloop"] = 8 * KB
REGIMES["small"]["openloop"] = 2 * KB

#: Per-app workload overrides for seconds-scale smoke runs (CI trace smoke,
#: ``harness trace --fast``); same shapes the integration tests use.
SMOKE_SIZES: Dict[str, Dict[str, int]] = {
    "barnes": dict(bodies=128, iterations=1),
    "fft": dict(points=1024),
    "lu": dict(matrix=64, block=16),
    "mp3d": dict(particles=1024, steps=2),
    "ocean": dict(grid=18, n_grids=3, sweeps=1),
    "os": dict(tasks_per_proc=1, syscalls_per_task=20),
    "radix": dict(keys=4096, radix=64, key_bits=12),
    "openloop": dict(requests=48, lines=16),
}

_PAPER_SCALE = os.environ.get("REPRO_SCALE", "quick") == "paper"


def default_procs(app: str) -> int:
    return 8 if app == "os" else 16


def app_workload(app: str, paper_scale: Optional[bool] = None, **overrides):
    """Construct a workload with default (or paper-literal) problem size."""
    use_paper = _PAPER_SCALE if paper_scale is None else paper_scale
    if use_paper and app != "openloop":  # no paper-literal size exists
        paper_sizes = {
            "barnes": dict(bodies=8192, iterations=2),
            "fft": dict(points=65536),
            "lu": dict(matrix=512, block=16),
            "mp3d": dict(particles=50000, steps=4),
            "ocean": dict(grid=258, n_grids=25, sweeps=2),
            "os": dict(tasks_per_proc=8),
            "radix": dict(keys=262144, radix=256, key_bits=16),
        }
        merged = dict(paper_sizes[app])
        merged.update(overrides)
        overrides = merged
    factories = {
        "barnes": BarnesWorkload, "fft": FFTWorkload, "lu": LUWorkload,
        "mp3d": MP3DWorkload, "ocean": OceanWorkload, "os": OSWorkload,
        "radix": RadixWorkload, "openloop": OpenLoopWorkload,
    }
    return factories[app](**overrides)


def regime_cache_bytes(app: str, regime: str) -> Optional[int]:
    return REGIMES[regime][app]


# -- memoized runs -----------------------------------------------------------------------
#
# Two layers: an in-process memo table, and (through ``diskcache``) a
# persistent on-disk store shared across processes and invocations.  Both are
# keyed by a canonical hash of the *normalized* run spec, which is stable for
# nested/unhashable override values (plain tuple-of-sorted-items keys broke
# on dict- or list-valued config overrides).

_cache: Dict[str, RunResult] = {}


def clear_cache() -> None:
    """Drop the in-process memo table (the disk cache is unaffected; clear
    that with ``python -m repro.harness clear``)."""
    _cache.clear()


def normalize_spec(
    app: str,
    kind: str = "flash",
    regime: str = "large",
    n_procs: Optional[int] = None,
    workload_overrides: Optional[dict] = None,
    config_overrides: Optional[dict] = None,
    pp_backend: Optional[str] = None,
    faults=None,
    trace=None,
    metrics=None,
    loadlat=None,
) -> Dict:
    """The fully-defaulted description of one run — the unit of caching and
    of run-farm dispatch.  Includes everything that can change the result.

    ``faults`` is a :class:`~repro.faults.FaultPlan` (or its dict form);
    fault-injected runs are deterministic, so they cache and farm exactly
    like clean ones, under a distinct key.  ``trace`` is a
    ``parse_trace_spec`` dict (or True for defaults; None defers to the
    ``REPRO_TRACE`` environment variable); traced runs are deterministic
    too, and cache under a distinct key because their serialized result
    additionally carries the latency decomposition.  ``metrics`` (True, or
    None to defer to ``REPRO_METRICS``) attaches the metrics registry;
    metrics-on runs likewise cache under a distinct key because their
    serialized result carries the registry snapshot.  ``loadlat`` (True, a
    ``parse_loadlat_spec`` dict, or None to defer to ``REPRO_LOADLAT``)
    attaches the open-loop latency monitor; monitor-on runs cache under a
    distinct key because their serialized result carries the latency
    snapshot (the simulated timing itself is unaffected)."""
    cache_bytes = regime_cache_bytes(app, regime)
    if cache_bytes is None:
        raise ValueError(f"{app} is not run at the {regime} regime (paper N/A)")
    if faults is not None:
        faults = faults.to_dict() if hasattr(faults, "to_dict") else dict(faults)
    if trace is None:
        trace = envopts.trace_from_env()
    elif trace is True:
        trace = parse_trace_spec("on")
    if metrics is None:
        metrics = envopts.metrics_from_env()
    else:
        metrics = True if metrics else None
    if loadlat is None:
        loadlat = envopts.loadlat_from_env()
    elif loadlat is True:
        from ..stats.latency import parse_loadlat_spec
        loadlat = parse_loadlat_spec("on")
    return {
        "app": app,
        "kind": kind,
        "regime": regime,
        "n_procs": n_procs if n_procs is not None else default_procs(app),
        "cache_bytes": cache_bytes,
        "workload_overrides": dict(workload_overrides or {}),
        "config_overrides": dict(config_overrides or {}),
        "pp_backend": pp_backend,
        "paper_scale": _PAPER_SCALE,
        "faults": faults,
        "trace": trace,
        "metrics": metrics,
        "loadlat": loadlat,
    }


# Backwards-compatible aliases; the parsers live in ``harness/envopts.py``
# so every subcommand shares one interpretation of the knobs.
_watchdog_from_env = envopts.watchdog_from_env
_trace_from_env = envopts.trace_from_env


def build_machine(spec: Dict):
    """Construct the (un-run) machine and workload for a normalized spec.
    Returns ``(machine, ops, cost_model)``; callers that need the live
    machine afterwards (the trace CLI, tests) run ``machine.run(ops)``
    themselves."""
    envopts.verify_backend()
    make = flash_config if spec["kind"] == "flash" else ideal_config
    config = make(n_procs=spec["n_procs"], cache_size=spec["cache_bytes"])
    if spec["config_overrides"]:
        config = config.with_changes(**spec["config_overrides"])
    cost_model = None
    if spec["pp_backend"] == "emulator" and spec["kind"] == "flash":
        config = config.with_changes(pp_backend="emulator")
        cost_model = EmulatedCostModel(config)
    workload = app_workload(spec["app"], **spec["workload_overrides"])
    machine = Machine(config, cost_model=cost_model,
                      faults=spec.get("faults"),
                      watchdog=envopts.watchdog_from_env(),
                      trace=spec.get("trace"),
                      metrics=spec.get("metrics"),
                      loadlat=spec.get("loadlat"))
    return machine, workload.build(config), cost_model


def _execute(spec: Dict) -> RunResult:
    """Run the simulation described by a normalized spec (no caching)."""
    machine, ops, cost_model = build_machine(spec)
    result = machine.run(ops)
    # End-of-run leak detection (repro.check.invariants): a drained
    # schedule with pending directory state, an unretired MSHR, or a
    # link-store leak is a protocol bug even when timing looks right.
    machine.assert_quiesced()
    if cost_model is not None:
        result.pp_dynamic = cost_model.dynamic_totals()
    if machine.fault_injector is not None:
        result.fault_counters = machine.fault_injector.counters()
    return result


def run_traced(spec: Dict):
    """Uncached traced run returning ``(result, tracer)`` — the live tracer
    holds the span ring buffer and time series for export (only the
    decomposition travels on the serialized result)."""
    if not spec.get("trace"):
        spec = dict(spec, trace=parse_trace_spec("on"))
    machine, ops, cost_model = build_machine(spec)
    result = machine.run(ops)
    if cost_model is not None:
        result.pp_dynamic = cost_model.dynamic_totals()
    if machine.fault_injector is not None:
        result.fault_counters = machine.fault_injector.counters()
    return result, machine.tracer


def memoize(spec: Dict, result: RunResult) -> None:
    """Seed the in-process memo table (used by the run farm to hand results
    computed in worker processes back to the parent)."""
    _cache[diskcache.canonical_key(spec)] = result


def run_app(
    app: str,
    kind: str = "flash",
    regime: str = "large",
    n_procs: Optional[int] = None,
    workload_overrides: Optional[dict] = None,
    config_overrides: Optional[dict] = None,
    pp_backend: Optional[str] = None,
    faults=None,
    trace=None,
    metrics=None,
    loadlat=None,
) -> RunResult:
    """Run one application on one machine; memoized in-process and cached
    on disk (see ``harness/diskcache.py``; ``REPRO_CACHE=off`` disables)."""
    spec = normalize_spec(
        app, kind=kind, regime=regime, n_procs=n_procs,
        workload_overrides=workload_overrides,
        config_overrides=config_overrides, pp_backend=pp_backend,
        faults=faults, trace=trace, metrics=metrics, loadlat=loadlat,
    )
    key = diskcache.canonical_key(spec)
    if key in _cache:
        return _cache[key]
    result = diskcache.default_cache.load(spec)
    if result is None:
        result = _execute(spec)
        diskcache.default_cache.store(spec, result)
    _cache[key] = result
    return result


def run_spec(spec: Dict) -> RunResult:
    """``run_app`` for an already-normalized spec (the run farm's entry
    point inside worker processes)."""
    return run_app(
        spec["app"], kind=spec["kind"], regime=spec["regime"],
        n_procs=spec["n_procs"],
        workload_overrides=spec["workload_overrides"],
        config_overrides=spec["config_overrides"],
        pp_backend=spec["pp_backend"], faults=spec.get("faults"),
        trace=spec.get("trace"), metrics=spec.get("metrics"),
        loadlat=spec.get("loadlat"),
    )


def run_flash_ideal(app: str, regime: str = "large", **kwargs
                    ) -> Tuple[RunResult, RunResult]:
    """The core comparison: the same workload on FLASH and the ideal machine."""
    flash = run_app(app, kind="flash", regime=regime, **kwargs)
    ideal = run_app(app, kind="ideal", regime=regime, **kwargs)
    return flash, ideal


def slowdown(flash: RunResult, ideal: RunResult) -> float:
    """FLASH execution-time increase over the ideal machine (fractional)."""
    return flash.execution_time / ideal.execution_time - 1.0
